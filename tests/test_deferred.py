"""Tests for the deferred-rendering (TBDR) analysis."""

import pytest

from repro.api.commands import Clear, Draw, SetState
from repro.gpu import deferred
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def ut():
    return build_workload("UT2004/Primeval", sim=True)


class TestFrameRewrite:
    def test_prepass_inserted(self, ut):
        frame = next(iter(ut.trace(frames=1).frames()))
        rewritten = deferred.defer_frame(frame)
        draws_before = sum(1 for c in frame.calls if isinstance(c, Draw))
        draws_after = sum(1 for c in rewritten.calls if isinstance(c, Draw))
        # Every opaque draw appears twice (prepass + shading pass).
        assert draws_after > draws_before

    def test_single_clear_kept(self, ut):
        frame = next(iter(ut.trace(frames=1).frames()))
        rewritten = deferred.defer_frame(frame)
        clears = [c for c in rewritten.calls if isinstance(c, Clear)]
        assert len(clears) == 1

    def test_opaque_draws_run_at_equal(self, ut):
        frame = next(iter(ut.trace(frames=1).frames()))
        rewritten = deferred.defer_frame(frame)
        # After the prepass section, opaque draws are bracketed with EQUAL.
        saw_equal_draw = False
        func = "less"
        color_mask = True
        for call in rewritten.calls:
            if isinstance(call, SetState):
                if call.name == "depth_func":
                    func = call.value
                if call.name == "color_mask":
                    color_mask = call.value
            if isinstance(call, Draw) and color_mask and func == "equal":
                saw_equal_draw = True
        assert saw_equal_draw

    def test_frame_without_opaque_draws_untouched(self):
        frame_obj = deferred.defer_frame(
            deferred.Frame(0, [Clear(), SetState("blend", "add")])
        )
        assert len(frame_obj.calls) == 2


class TestAnalysis:
    def test_deferred_never_shades_more(self, ut):
        comparison = deferred.analyze(ut, frames=1)
        assert comparison.deferred_shaded <= comparison.immediate_shaded
        assert 0.0 <= comparison.shading_saved <= 1.0

    def test_stencil_engine_rejected(self):
        doom3 = build_workload("Doom3/trdemo2", sim=True)
        with pytest.raises(ValueError):
            deferred.analyze(doom3, frames=1)

    def test_savings_positive_for_multipass_engine(self, ut):
        # Frame 0 sits at the corridor start with little occlusion, so use
        # two frames; UT2004 draws each surface several times and deferring
        # must pay off.
        comparison = deferred.analyze(ut, frames=2)
        assert comparison.shading_saved > 0.2
