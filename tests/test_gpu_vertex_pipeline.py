"""Tests for the vertex stage and the full pipeline."""

import numpy as np
import pytest

import repro.util.mathutil as mu
from repro.api.commands import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    GraphicsApi,
    SetState,
    SetUniform,
)
from repro.api.state import StencilSide
from repro.api.trace import Frame, Trace, TraceMeta
from repro.geometry.generators import extrude_shadow_volume, grid_mesh
from repro.geometry.mesh import Mesh
from repro.geometry.primitives import PrimitiveType
from repro.gpu import perf
from repro.gpu.config import GpuConfig
from repro.gpu.memory import MemoryController
from repro.gpu.pipeline import GpuSimulator
from repro.gpu.stats import MemClient, QuadFate
from repro.gpu.texture import TextureResource
from repro.gpu.vertex import VertexStage
from repro.shader import library

W, H = 96, 64


def simple_scene(alpha=False, two_sided_quad=False):
    positions = np.array(
        [[-1, -1, 0], [1, -1, 0], [-1, 1, 0], [1, 1, 0]], dtype=float
    )
    uvs = np.array([[0, 0], [2, 0], [0, 2], [2, 2]], dtype=float)
    mesh = Mesh("quad", positions, [0, 1, 2, 2, 1, 3], uvs=uvs)
    vp = library.build_vertex_program("vp", 16)
    fp = library.build_fragment_program("fp", 1, 8, alpha_test=alpha)
    img = np.full((32, 32, 4), 0.8, np.float32)
    tex = TextureResource.from_image("tex", img)
    return mesh, vp, fp, tex


def mvp(eye=(0, 0, 3)):
    return mu.perspective(60, W / H, 0.1, 100) @ mu.look_at(eye, (0, 0, 0))


def frame_calls(mesh, extra_state=(), fp_name="fp"):
    calls = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", fp_name),
        BindTexture(0, "tex"),
        SetUniform.matrix("mvp", mvp()),
        SetUniform.matrix("model", np.eye(4)),
    ]
    calls.extend(extra_state)
    calls.append(Draw(mesh.name, mesh.primitive, mesh.index_count))
    return calls


def run(calls, mesh, vp, fp, tex, config=None):
    config = config or GpuConfig(width=W, height=H)
    sim = GpuSimulator(
        config, {mesh.name: mesh}, {"vp": vp, "fp": fp}, [tex]
    )
    meta = TraceMeta("t", GraphicsApi.OPENGL, 1, width=W, height=H)
    return sim, sim.run_trace(Trace(meta, [Frame(0, calls)]))


class TestVertexStage:
    def test_cache_and_fetch_accounting(self):
        config = GpuConfig()
        mem = MemoryController()
        stage = VertexStage(config, mem)
        mesh = grid_mesh("g", 8, 8, 4, 4)
        draw = Draw("g", PrimitiveType.TRIANGLE_LIST, mesh.index_count)
        vp = library.build_vertex_program("vp", 16)
        constants = {i: tuple(np.eye(4)[i]) for i in range(4)}
        constants.update({8 + i: tuple(np.eye(4)[i]) for i in range(3)})
        result = stage.process(mesh, draw, vp, constants)
        assert result.cache_references == mesh.index_count
        assert 0.6 < result.cache_hits / result.cache_references < 0.75
        assert result.vertices_shaded == result.cache_references - result.cache_hits
        assert result.instructions == result.vertices_shaded * 16
        assert mem.reads[MemClient.VERTEX] > mesh.index_count * 2

    def test_missing_program_rejected(self):
        stage = VertexStage(GpuConfig(), MemoryController())
        mesh = grid_mesh("g", 2, 2, 1, 1)
        with pytest.raises(ValueError):
            stage.process(
                mesh, Draw("g", PrimitiveType.TRIANGLE_LIST, 6), None, {}
            )


class TestPipelineBasics:
    def test_quad_renders(self):
        mesh, vp, fp, tex = simple_scene()
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        stats = result.stats
        assert stats.triangles_traversed == 2
        assert stats.fragments_blended > 100
        assert stats.fragments_rasterized == stats.fragments_blended
        image = sim.fb.color_image()
        covered = (image[:, :, :3].sum(axis=2) > 0.01).sum()
        assert covered == stats.fragments_blended

    def test_depth_order_independence_of_final_image(self):
        """Near-then-far and far-then-near must produce identical z."""
        mesh, vp, fp, tex = simple_scene()
        near = Mesh("near", mesh.positions * 0.5, mesh.indices, uvs=mesh.uvs)
        meshes = {"quad": mesh, "near": near}

        def render(order):
            sim = GpuSimulator(
                GpuConfig(width=W, height=H), meshes, {"vp": vp, "fp": fp}, [tex]
            )
            calls = [
                Clear(),
                BindProgram("vertex", "vp"),
                BindProgram("fragment", "fp"),
                BindTexture(0, "tex"),
                SetUniform.matrix("model", np.eye(4)),
            ]
            for name in order:
                m = mu.perspective(60, W / H, 0.1, 100) @ mu.look_at(
                    (0, 0, 3), (0, 0, 0)
                ) @ (mu.translate(0, 0, 1.0) if name == "near" else np.eye(4))
                calls.append(SetUniform.matrix("mvp", m))
                calls.append(Draw(name, PrimitiveType.TRIANGLE_LIST, 6))
            meta = TraceMeta("t", GraphicsApi.OPENGL, 1, width=W, height=H)
            sim.run_trace(Trace(meta, [Frame(0, calls)]))
            return sim.fb.z.copy()

        assert np.allclose(render(["quad", "near"]), render(["near", "quad"]))

    def test_occluded_draw_consumes_no_shading(self):
        mesh, vp, fp, tex = simple_scene()
        sim = GpuSimulator(
            GpuConfig(width=W, height=H), {"quad": mesh}, {"vp": vp, "fp": fp}, [tex]
        )
        near_mvp = mvp() @ mu.translate(0, 0, 1.5)
        far_mvp = mvp()
        calls = [
            Clear(),
            BindProgram("vertex", "vp"),
            BindProgram("fragment", "fp"),
            BindTexture(0, "tex"),
            SetUniform.matrix("model", np.eye(4)),
            SetUniform.matrix("mvp", near_mvp),
            Draw("quad", PrimitiveType.TRIANGLE_LIST, 6),
        ]
        meta = TraceMeta("t", GraphicsApi.OPENGL, 2, width=W, height=H)
        frame0 = Frame(0, calls)
        # Second draw fully behind the first (larger on screen so it covers).
        calls2 = list(calls) + [
            SetUniform.matrix("mvp", far_mvp),
            Draw("quad", PrimitiveType.TRIANGLE_LIST, 6),
        ]
        sim.run_trace(Trace(meta, [frame0, Frame(1, calls2)]))
        last = sim.frame_stats[-1]
        # The far quad region covered by the near quad is HZ/ZS killed.
        killed = last.quad_fates.get(QuadFate.HZ, 0) + last.quad_fates.get(
            QuadFate.ZSTENCIL, 0
        )
        assert killed > 0

    def test_alpha_test_path_late_z(self):
        mesh, vp, fp, tex = simple_scene(alpha=True)
        # Texture alpha 0.8 > 0.5 threshold: nothing killed, but path is late-Z.
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        assert result.stats.fragments_shaded >= result.stats.fragments_zstencil

    def test_alpha_kill_removes_quads(self):
        mesh, vp, fp, _ = simple_scene(alpha=True)
        img = np.full((32, 32, 4), 0.8, np.float32)
        img[:, :, 3] = 0.1  # below the threshold: everything killed
        tex = TextureResource.from_image("tex", img)
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        assert result.stats.quad_fates.get(QuadFate.ALPHA, 0) > 0
        assert result.stats.fragments_blended == 0

    def test_color_mask_bucket(self):
        mesh, vp, fp, tex = simple_scene()
        calls = frame_calls(mesh, extra_state=[SetState("color_mask", False)])
        sim, result = run(calls, mesh, vp, fp, tex)
        fates = result.stats.quad_fates
        assert fates.get(QuadFate.COLOR_MASK, 0) > 0
        assert fates.get(QuadFate.BLENDED, 0) == 0
        assert result.memory.reads[MemClient.COLOR] == 0

    def test_fate_buckets_partition_rasterized_quads(self):
        mesh, vp, fp, tex = simple_scene(alpha=True)
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        stats = result.stats
        assert sum(stats.quad_fates.values()) == stats.quads_rasterized

    def test_dac_and_cp_traffic(self):
        mesh, vp, fp, tex = simple_scene()
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        assert result.memory.reads[MemClient.DAC] == W * H * 4
        assert result.memory.reads[MemClient.CP] > 0


class TestStencilShadowIntegration:
    def test_shadowed_region_stays_dark(self):
        """Full Carmack z-fail flow on a floor + occluder + volume scene."""
        config = GpuConfig(width=W, height=H)
        floor = grid_mesh("floor", 4, 4, 8, 8)
        occluder = Mesh(
            "occluder",
            np.array(
                [
                    [-0.5, 0.5, -0.5], [0.5, 0.5, -0.5],
                    [-0.5, 1.5, -0.5], [0.5, 1.5, -0.5],
                ]
            ),
            [0, 1, 2, 2, 1, 3],
        )
        # Light from above/behind: shadow falls on the floor below.
        volume = extrude_shadow_volume(
            occluder, (0.0, -0.8, -2.0), 8.0, name="volume"
        )
        vp = library.build_vertex_program("vp", 12, lit=False)
        fp = library.build_fragment_program("fp", 0, 3)
        meshes = {m.name: m for m in (floor, occluder, volume)}
        sim = GpuSimulator(config, meshes, {"vp": vp, "fp": fp}, [])
        view = mu.perspective(60, W / H, 0.1, 100) @ mu.look_at(
            (3.0, 5.0, 2.0), (0, 0, -2)
        )
        def draw(name):
            return Draw(name, PrimitiveType.TRIANGLE_LIST,
                        meshes[name].index_count)
        calls = [
            Clear(),
            BindProgram("vertex", "vp"),
            SetUniform.matrix("mvp", view),
            SetUniform.matrix("model", np.eye(4)),
            # Depth prepass.
            BindProgram("fragment", None),
            SetState("color_mask", False),
            draw("floor"),
            draw("occluder"),
            # Shadow volume pass (z-fail, two-sided).
            SetState("depth_write", False),
            SetState("stencil_test", True),
            SetState("stencil_func", "always"),
            SetState("stencil_front", StencilSide(zfail="decr_wrap")),
            SetState("stencil_back", StencilSide(zfail="incr_wrap")),
            SetState("cull", "none"),
            SetState("hierarchical_z", False),
            draw("volume"),
            # Additive light pass gated on stencil == 0.
            SetState("stencil_func", "equal"),
            SetState("stencil_ref", 0),
            SetState("stencil_front", StencilSide()),
            SetState("stencil_back", StencilSide()),
            SetState("cull", "back"),
            SetState("depth_func", "equal"),
            SetState("color_mask", True),
            SetState("blend", "add"),
            SetState("hierarchical_z", True),
            BindProgram("fragment", "fp"),
            draw("floor"),
            draw("occluder"),
        ]
        meta = TraceMeta("t", GraphicsApi.OPENGL, 1, width=W, height=H)
        sim.run_trace(Trace(meta, [Frame(0, calls)]))
        shadowed = int((sim.fb.stencil[:H, :W] != 0).sum())
        assert shadowed > 50  # the occluder casts a real shadow
        image = sim.fb.color_image()
        lit_mask = image[:, :, :3].sum(axis=2) > 0.01
        # No shadowed pixel got lit.
        stencil = sim.fb.stencil[:H, :W]
        assert not (lit_mask & (stencil != 0)).any()
        # But plenty of unshadowed floor did.
        assert lit_mask.sum() > 100


class TestPerfModel:
    def test_estimate_bottleneck(self):
        mesh, vp, fp, tex = simple_scene()
        sim, result = run(frame_calls(mesh), mesh, vp, fp, tex)
        estimate = perf.estimate(result.stats, result.memory, result.config)
        assert estimate.cycles_per_frame > 0
        assert estimate.bottleneck in (
            "vertex", "setup", "zstencil", "shader", "texture", "color", "memory",
        )
        assert estimate.fps_at_clock(625e6) > 0
