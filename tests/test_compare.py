"""Tests for repro.compare: the cross-run regression explorer.

Covers the subsystem's load-bearing guarantees:

* two loads of the same run diff to *empty* — no manufactured deltas;
* a seeded metric perturbation is detected with the exact delta value and
  rendered in both the ASCII and HTML reports;
* the HTML report is self-contained (parses, no external resources);
* two live probes of the same spec at different ``--jobs`` widths report
  **zero non-timing deltas** (the farm's bit-identity guarantee, seen
  through the explorer);
* tolerance classes, gating modes, the meta/history round-trip, and the
  deterministic ``top_spans`` ordering.
"""

from __future__ import annotations

import html.parser
import json
import pathlib
import re

import pytest

from repro import compare
from repro.compare.diff import classify, direction
from repro.observe.export import top_spans

FIXTURE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
SERVE_FIXTURE = FIXTURE.parent / "BENCH_serve.json"


def _bench_doc() -> dict:
    return json.loads(FIXTURE.read_text())


# -- meta / history ---------------------------------------------------------
class TestMetaAndHistory:
    def test_run_meta_fields(self):
        meta = compare.run_meta()
        for field in ("git_rev", "timestamp_utc", "python", "cpu_count",
                      "platform", "machine", "no_native"):
            assert field in meta
        assert compare.machine_fingerprint(meta) is not None

    def test_fingerprint_none_for_missing_meta(self):
        assert compare.machine_fingerprint(None) is None
        assert compare.machine_fingerprint({}) is None
        assert compare.machine_fingerprint({"platform": "linux"}) is None

    def test_flatten_excludes_meta_and_handles_lists(self):
        flat = compare.flatten(
            {"meta": {"x": 1}, "a": {"b": 2}, "c": [1, {"d": 3}]}
        )
        assert flat == {"a.b": 2, "c[0]": 1, "c[1].d": 3}

    def test_history_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        doc = {"meta": compare.run_meta(), "value": 7, "nested": {"x": 1.5}}
        compare.append_history("pipeline", doc, path)
        compare.append_history("serve", {"value": 8}, path)
        entries = compare.load_history(path)
        assert len(entries) == 2
        only = compare.load_history(path, bench="pipeline")
        assert len(only) == 1
        assert only[0]["metrics"] == {"nested.x": 1.5, "value": 7}
        assert only[0]["meta"]["git_rev"] == doc["meta"]["git_rev"]

    def test_history_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "history.jsonl"
        compare.append_history("pipeline", {"value": 1}, path)
        with open(path, "a") as handle:
            handle.write('{"bench": "pipeline", "metr')  # killed mid-append
        assert len(compare.load_history(path)) == 1

    def test_bench_writers_stamp_meta_and_history(self, tmp_path, monkeypatch):
        from repro.experiments.bench import write_bench

        monkeypatch.chdir(tmp_path)
        out = write_bench({"speedup": {"fragments_per_s": 2.0}},
                          tmp_path / "BENCH_pipeline.json")
        doc = json.loads(out.read_text())
        assert "meta" in doc and "git_rev" in doc["meta"]
        entries = compare.load_history(tmp_path / compare.HISTORY_PATH)
        assert len(entries) == 1
        assert entries[0]["metrics"]["speedup.fragments_per_s"] == 2.0


# -- tolerance classes ------------------------------------------------------
class TestClassification:
    def test_identity_and_cells_are_exact(self):
        assert classify("identity", "frame_stats[0].fragments") == "exact"
        assert classify("cells", "Table III|UT2004/Primeval|idx") == "exact"

    def test_timing_rules(self):
        for name in ("farm.phase.simulate", "per_triangle.seconds",
                     "quadstream.fragments_per_s", "speedup.fragments_per_s",
                     "waves.cold.latency_s.p99", "observer.overhead_pct",
                     "farm.parallel.4.phases.merge"):
            assert classify("metrics", name) == "timing", name

    def test_info_rules(self):
        for name in ("observe.sidecars_merged", "farm.cpu_count",
                     "cache.hit_rate", "server_stats.completed",
                     "backpressure_429s"):
            assert classify("metrics", name) == "info", name

    def test_gauges_are_info_counters_exact(self):
        assert classify("metrics", "gpu.memory_bytes", "gauge") == "info"
        assert classify("metrics", "sim.fragments", "counter") == "exact"

    def test_stage_classes(self):
        assert classify("stages", "gpu.frame.self_seconds") == "timing"
        assert classify("stages", "gpu.frame.count") == "exact"
        assert classify("stages", "farm.run.count") == "info"

    def test_direction(self):
        assert direction("quadstream.fragments_per_s") == 1
        assert direction("speedup.fragments_per_s") == 1
        assert direction("per_triangle.seconds") == -1
        assert direction("waves.cold.latency_s.p99") == -1
        assert direction("farm.phase.simulate") == -1


# -- diffing ----------------------------------------------------------------
class TestDiff:
    def test_identical_runs_empty_diff(self):
        a = compare.from_bench(FIXTURE, label="a")
        b = compare.from_bench(FIXTURE, label="b")
        diff = compare.diff_runs(a, b)
        assert diff.empty
        assert diff.non_timing_deltas == []
        assert diff.compared["metrics"] > 50

    def test_seeded_perturbation_exact_delta(self, tmp_path):
        doc = _bench_doc()
        doc["per_triangle"]["fragments"] += 1000
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        diff = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(mutated)
        )
        rows = diff.non_timing_deltas
        assert len(rows) == 1
        row = rows[0]
        assert row.name == "per_triangle.fragments"
        assert row.klass == "exact"
        assert row.status == "changed"
        assert row.delta == 1000

    def test_timing_band_and_direction(self, tmp_path):
        doc = _bench_doc()
        base = doc["per_triangle"]["seconds"]
        doc["per_triangle"]["seconds"] = round(base * 1.5, 6)  # 50% slower
        doc["quadstream"]["seconds"] = round(
            doc["quadstream"]["seconds"] * 0.98, 6
        )  # within band
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        diff = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(mutated),
            band_pct=10.0,
        )
        by_name = {row.name: row for row in diff.rows}
        slow = by_name["per_triangle.seconds"]
        assert slow.klass == "timing" and slow.status == "regression"
        # both sides carry the same committed meta -> like-for-like timing
        assert diff.fingerprint_match and not slow.advisory
        assert by_name["quadstream.seconds"].status == "noise"

    def test_added_removed_rows(self, tmp_path):
        doc = _bench_doc()
        doc.pop("incremental", None)
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        diff = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(mutated)
        )
        removed = [r for r in diff.rows if r.status == "removed"]
        assert removed and all(
            r.name.startswith("incremental.") for r in removed
        )

    def test_diff_is_order_stable(self, tmp_path):
        doc = _bench_doc()
        doc["per_triangle"]["fragments"] += 1
        doc["fused"]["seconds"] = round(doc["fused"]["seconds"] * 3, 6)
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        args = (compare.from_bench(FIXTURE), compare.from_bench(mutated))
        one = compare.render_ascii(compare.diff_runs(*args))
        two = compare.render_ascii(compare.diff_runs(*args))
        assert one == two

    def test_mismatched_sections_are_skipped(self):
        a = compare.from_bench(FIXTURE)
        b = compare.RunResults(
            "probe", "live", meta={}, metrics=dict(a.metrics),
            stages={"gpu.frame": {"count": 2, "self_seconds": 0.1}},
        )
        diff = compare.diff_runs(a, b)
        assert "stages" in diff.skipped
        assert diff.non_timing_deltas == []


# -- gating -----------------------------------------------------------------
class TestGate:
    def test_parse_fail_on(self):
        assert compare.parse_fail_on("exact") == ("exact", 10.0)
        assert compare.parse_fail_on("regression:5%") == ("regression", 5.0)
        assert compare.parse_fail_on("regression : 2.5") == ("regression", 2.5)
        assert compare.parse_fail_on("any") == ("any", 10.0)
        with pytest.raises(ValueError):
            compare.parse_fail_on("bogus")
        with pytest.raises(ValueError):
            compare.parse_fail_on("regression:-3")

    def test_gate_modes(self, tmp_path):
        doc = _bench_doc()
        doc["per_triangle"]["fragments"] += 5
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        diff = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(mutated)
        )
        assert compare.gate(diff, "exact")
        clean = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(FIXTURE)
        )
        assert compare.gate(clean, "exact") == []
        assert compare.gate(clean, "regression") == []
        assert compare.gate(clean, "any") == []

    def test_advisory_timing_does_not_gate_regression_mode(self, tmp_path):
        base = _bench_doc()
        base.pop("meta", None)  # pre-provenance document: unknown machine
        doc = json.loads(json.dumps(base))
        doc["per_triangle"]["seconds"] = round(
            doc["per_triangle"]["seconds"] * 2, 6
        )
        a_path = tmp_path / "a.json"
        b_path = tmp_path / "b.json"
        a_path.write_text(json.dumps(base))
        b_path.write_text(json.dumps(doc))
        diff = compare.diff_runs(
            compare.from_bench(a_path), compare.from_bench(b_path)
        )
        assert not diff.fingerprint_match
        rows = [r for r in diff.rows if r.status == "regression"]
        assert rows and all(r.advisory for r in rows)
        assert compare.gate(diff, "regression") == []


# -- reports ----------------------------------------------------------------
class _HtmlCheck(html.parser.HTMLParser):
    def __init__(self):
        super().__init__()
        self.tags: list[str] = []
        self.external: list[str] = []

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        for name, value in attrs:
            if name in ("src", "href") and value and "://" in value:
                self.external.append(value)


class TestReports:
    def _perturbed_diff(self, tmp_path) -> compare.RunDiff:
        doc = _bench_doc()
        doc["per_triangle"]["fragments"] += 1000
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        return compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(mutated)
        )

    def test_ascii_contains_delta(self, tmp_path):
        text = compare.render_ascii(self._perturbed_diff(tmp_path))
        assert "per_triangle.fragments" in text
        assert "1 non-timing delta(s)" in text

    def test_empty_diff_ascii(self):
        diff = compare.diff_runs(
            compare.from_bench(FIXTURE), compare.from_bench(FIXTURE)
        )
        assert "no differences" in compare.render_ascii(diff)

    def test_html_schema_and_self_containment(self, tmp_path):
        entries = [
            {"bench": "pipeline", "meta": {},
             "metrics": {"speedup.fragments_per_s": 3.9 + 0.01 * i}}
            for i in range(5)
        ]
        text = compare.render_html(
            self._perturbed_diff(tmp_path), history=entries
        )
        checker = _HtmlCheck()
        checker.feed(text)
        for tag in ("html", "head", "style", "body", "table", "svg",
                    "polyline"):
            assert tag in checker.tags, tag
        assert checker.external == []  # fully self-contained
        assert "per_triangle.fragments" in text
        perturbed = _bench_doc()["per_triangle"]["fragments"] + 1000
        assert f"{perturbed:,}" in text  # the perturbed value, rendered

    def test_render_json_round_trips(self, tmp_path):
        doc = json.loads(compare.render_json(self._perturbed_diff(tmp_path)))
        assert doc["counts"]["non_timing"] == 1
        assert doc["rows"][0]["name"] == "per_triangle.fragments"
        assert doc["rows"][0]["delta"] == 1000

    def test_sparklines(self):
        line = compare.ascii_sparkline([1.0, None, 2.0, 3.0])
        assert len(line) == 4 and line[1] == " "
        assert compare.ascii_sparkline([5.0, 5.0]) != ""
        svg = compare.sparkline_svg([1.0, 2.0, None, 4.0])
        assert svg.startswith("<svg") and "polyline" in svg

    def test_history_report(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for i in range(3):
            compare.append_history(
                "pipeline",
                {"speedup": {"fragments_per_s": 3.5 + 0.1 * i},
                 "meta": compare.run_meta()},
                path,
            )
        entries = compare.load_history(path)
        ascii_text = compare.render_history_ascii(entries)
        assert "speedup.fragments_per_s" in ascii_text
        html_text = compare.render_history_html(entries)
        assert "<svg" in html_text and "speedup.fragments_per_s" in html_text


# -- run loading ------------------------------------------------------------
class TestLoadRun:
    def test_bench_token(self):
        run = compare.load_run(str(FIXTURE))
        assert run.source == "bench"
        assert run.metrics["per_triangle.fragments"] > 0
        assert "meta" not in "".join(run.metrics)  # provenance not a metric

    def test_history_token(self, tmp_path):
        path = tmp_path / "history.jsonl"
        compare.append_history("pipeline", {"value": 1}, path)
        compare.append_history("pipeline", {"value": 2}, path)
        run = compare.load_run(str(path))
        assert run.source == "history"
        assert run.metrics == {"value": 2}  # last entry by default

    def test_spans_token(self, tmp_path):
        from repro.observe.spans import Tracer

        tracer = Tracer(track="main")
        outer = tracer.start("gpu.run", "gpu")
        inner = tracer.start("gpu.frame", "gpu")
        tracer.close(inner)
        tracer.close(outer)
        from repro.observe.export import to_jsonl

        path = tmp_path / "trace.spans.jsonl"
        path.write_text(to_jsonl(tracer.timeline()))
        run = compare.load_run(str(path))
        assert run.source == "spans"
        assert run.stages["gpu.frame"]["count"] == 1

    def test_unresolvable_token(self):
        with pytest.raises(ValueError):
            compare.load_run("no-such-thing-at-all")

    def test_spec_token_parses(self):
        from repro.compare.runset import _parse_spec_token

        probe = _parse_spec_token(
            "api:UT2004/Primeval@3", compare.ProbeSpec(jobs=2)
        )
        assert probe.kind == "api" and probe.frames == 3 and probe.jobs == 2
        assert _parse_spec_token("bad:token@x", compare.ProbeSpec()) is None

    def test_resolve_rev(self):
        root = FIXTURE.parent
        assert compare.resolve_rev("HEAD", root)
        assert compare.resolve_rev("definitely-not-a-ref", root) is None


# -- live probes: the farm's bit-identity, seen through the explorer --------
@pytest.mark.slow
class TestLiveProbe:
    def test_jobs_width_invariance(self):
        """Same spec at --jobs 1 vs --jobs 2: zero non-timing deltas."""
        probe = compare.ProbeSpec(frames=2, shard_frames=1)
        a = compare.from_live(
            compare.ProbeSpec(**{**probe.__dict__, "jobs": 1}), label="j1"
        )
        b = compare.from_live(
            compare.ProbeSpec(**{**probe.__dict__, "jobs": 2}), label="j2"
        )
        diff = compare.diff_runs(a, b)
        assert a.identity, "probe produced no identity section"
        assert diff.compared.get("identity", 0) > 20
        assert diff.non_timing_deltas == []

    def test_live_probe_sections(self):
        run = compare.from_live(compare.ProbeSpec(frames=1, jobs=1))
        assert run.stages, "probe produced no span timeline"
        assert any(n.startswith("gpu.") for n in run.stages)
        assert run.metrics, "probe produced no metrics"
        assert run.meta["git_rev"]


# -- top_spans determinism (observe satellite) ------------------------------
class TestTopSpans:
    @staticmethod
    def _track(spans):
        return {"track": "main", "pid": 1, "epoch_ns": 0, "anchor_ns": 0,
                "spans": spans}

    def test_tie_break_is_deterministic(self):
        def span(name, t0, t1, parent=-1):
            return {"name": name, "cat": "test", "t0": t0, "t1": t1,
                    "s0": t0, "s1": t1, "parent": parent, "attrs": {}}

        spans = [
            span("zeta", 0, 100),
            span("alpha", 100, 200),
            span("mid", 200, 350),
        ]
        ranked = top_spans([self._track(spans)], n=None)
        # mid wins on total; alpha/zeta tie on total+self -> name order
        assert [a["name"] for a in ranked] == ["mid", "alpha", "zeta"]

    def test_n_none_returns_all(self):
        def span(i):
            return {"name": f"s{i}", "cat": "t", "t0": i, "t1": i + 1,
                    "s0": i, "s1": i + 1, "parent": -1, "attrs": {}}

        tracks = [self._track([span(i) for i in range(25)])]
        assert len(top_spans(tracks, n=None)) == 25
        assert len(top_spans(tracks, n=10)) == 10


# -- CLI --------------------------------------------------------------------
class TestCli:
    def test_compare_command_empty_diff(self, capsys):
        from repro.cli import main

        code = main(["compare", str(FIXTURE), str(FIXTURE)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no differences" in out

    def test_compare_command_gate_failure(self, tmp_path, capsys):
        from repro.cli import main

        doc = _bench_doc()
        doc["per_triangle"]["fragments"] += 1000
        mutated = tmp_path / "mutated.json"
        mutated.write_text(json.dumps(doc))
        report = tmp_path / "report.html"
        code = main([
            "compare", str(FIXTURE), str(mutated),
            "--fail-on", "exact", "--format", "html", "--out", str(report),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "per_triangle.fragments" in captured.out  # ASCII summary
        assert "COMPARE GATE FAIL" in captured.err
        assert "per_triangle.fragments" in report.read_text()

    def test_compare_command_history(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        path = tmp_path / "history.jsonl"
        for i in range(2):
            compare.append_history(
                "pipeline", {"speedup": {"fragments_per_s": 3.0 + i}}, path
            )
        code = main(["compare", "--history", "--history-file", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 run(s)" in out

    def test_compare_command_usage_errors(self, capsys):
        from repro.cli import main

        assert main(["compare", str(FIXTURE)]) == 2
        assert main(["compare", str(FIXTURE), str(FIXTURE),
                     "--fail-on", "bogus"]) == 2
