"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.optimize import optimize_for_vertex_cache, simulate_vertex_cache
from repro.geometry.primitives import (
    PrimitiveType,
    assemble_triangles,
    indices_for_triangles,
    primitive_count,
)
from repro.gpu.caches import Cache
from repro.gpu.config import CacheConfig
from repro.gpu.rasterizer import rasterize_triangle
from repro.util.morton import demorton2d, morton2d

# ---------------------------------------------------------------------------
# Morton codes


@given(
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_morton_roundtrip(x, y):
    code = morton2d(x, y)
    rx, ry = demorton2d(code)
    assert int(rx) == x and int(ry) == y


@given(
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_morton_injective(x1, y1, x2, y2):
    if (x1, y1) != (x2, y2):
        assert int(morton2d(x1, y1)) != int(morton2d(x2, y2))


# ---------------------------------------------------------------------------
# Primitive assembly


@given(
    st.sampled_from(list(PrimitiveType)),
    st.integers(min_value=0, max_value=200),
)
def test_primitive_count_matches_assembly(prim, n):
    indices = np.arange(max(n, 1)) % 17
    indices = indices[:n]
    tris = assemble_triangles(indices, prim)
    assert tris.shape[0] == primitive_count(n, prim)


@given(
    st.sampled_from(list(PrimitiveType)),
    st.integers(min_value=1, max_value=500),
)
def test_indices_for_triangles_inverse(prim, tris):
    assert primitive_count(indices_for_triangles(tris, prim), prim) == tris


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=60))
def test_strip_triangles_use_consecutive_windows(indices):
    tris = assemble_triangles(np.array(indices), PrimitiveType.TRIANGLE_STRIP)
    for t, tri in enumerate(tris):
        window = set(indices[t : t + 3])
        assert set(int(v) for v in tri) == window


# ---------------------------------------------------------------------------
# Vertex cache


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=32),
)
def test_cache_hit_rate_bounded(indices, size):
    rate = simulate_vertex_cache(np.array(indices), cache_size=size)
    assert 0.0 <= rate <= 1.0
    unique = len(set(indices))
    # Hits can never exceed references minus compulsory misses.
    assert rate <= 1.0 - unique / len(indices) + 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(0, 40), st.integers(0, 40), st.integers(0, 40)
        ).filter(lambda t: len(set(t)) == 3),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=40)
def test_tipsify_is_permutation(tri_list):
    tris = np.array(tri_list)
    out = optimize_for_vertex_cache(tris)
    assert sorted(map(tuple, (sorted(t) for t in tris.tolist()))) == sorted(
        map(tuple, (sorted(t) for t in out.tolist()))
    )


# ---------------------------------------------------------------------------
# Cache model


@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)
)
@settings(max_examples=50)
def test_cache_counters_partition_references(lines):
    cache = Cache(CacheConfig(512, 64, 4, "t"))
    result = cache.access_stream(np.array(lines))
    assert cache.hits + cache.misses == len(lines)
    assert result.misses == cache.misses
    assert len(result.miss_lines) == result.misses


@given(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200)
)
@settings(max_examples=50)
def test_small_working_set_only_compulsory_misses(lines):
    """A working set that fits in the cache misses once per distinct line."""
    cache = Cache(CacheConfig(16 * 64, 64, 16, "t"))  # 16 lines, fully assoc
    cache.access_stream(np.array(lines))
    assert cache.misses == len(set(lines))


# ---------------------------------------------------------------------------
# Rasterizer


@st.composite
def screen_triangle(draw):
    pts = [
        (
            draw(st.floats(2.0, 62.0, allow_nan=False)),
            draw(st.floats(2.0, 62.0, allow_nan=False)),
        )
        for _ in range(3)
    ]
    return pts


@given(screen_triangle())
@settings(max_examples=60)
def test_raster_fragments_within_area_bound(tri):
    area = 0.5 * abs(
        (tri[1][0] - tri[0][0]) * (tri[2][1] - tri[0][1])
        - (tri[2][0] - tri[0][0]) * (tri[1][1] - tri[0][1])
    )
    qb = rasterize_triangle(
        np.array(tri), np.zeros(3), np.ones(3), np.zeros((3, 2)),
        np.zeros((3, 4)), 64, 64,
    )
    count = qb.fragment_count if qb is not None else 0
    # Fragment count is bounded by area plus a perimeter band.
    perimeter = sum(
        np.hypot(tri[(i + 1) % 3][0] - tri[i][0], tri[(i + 1) % 3][1] - tri[i][1])
        for i in range(3)
    )
    assert count <= area + perimeter + 3


@given(screen_triangle())
@settings(max_examples=60)
def test_raster_winding_invariance(tri):
    def count(order):
        qb = rasterize_triangle(
            np.array([tri[i] for i in order]), np.zeros(3), np.ones(3),
            np.zeros((3, 2)), np.zeros((3, 4)), 64, 64,
        )
        return qb.fragment_count if qb is not None else 0

    assert count((0, 1, 2)) == count((0, 2, 1)) == count((1, 2, 0))


@given(screen_triangle())
@settings(max_examples=40)
def test_raster_depth_in_vertex_range(tri):
    z = np.array([0.2, 0.5, 0.9])
    qb = rasterize_triangle(
        np.array(tri), z, np.ones(3), np.zeros((3, 2)), np.zeros((3, 4)),
        64, 64,
    )
    if qb is None:
        return
    covered = qb.z[qb.cover]
    assert (covered >= z.min() - 1e-6).all()
    assert (covered <= z.max() + 1e-6).all()
