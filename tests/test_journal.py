"""The serve job journal: checksums, prefix salvage, reduce/compact.

The journal is the durability substrate of the characterization service:
these tests pin the properties recovery rests on — a torn or bit-flipped
tail never poisons the valid prefix, a journal copied from a different
store is never trusted, and the reduce/compact pair is a fixed point
(compacting a reduced state and replaying it yields the same state).
"""

import json
import shutil

from repro.farm import ArtifactStore
from repro.serve.journal import (
    JOURNAL_VERSION,
    JobJournal,
    seal,
    verify,
)


def _journal(root) -> JobJournal:
    return JobJournal(ArtifactStore(root))


def _submitted(key: str, ts: float = 1.0) -> dict:
    return {
        "rec": "submitted",
        "job": key,
        "client": "t",
        "submission": {"kind": "api", "workload": "W", "frames": 2},
        "deadline_s": None,
        "ts": ts,
    }


def _reasons(root) -> str:
    path = root / "quarantine" / "REASONS.log"
    return path.read_text() if path.exists() else ""


class TestChecksums:
    def test_seal_verify_roundtrip(self):
        record = seal({"rec": "done", "job": "k", "summary": {"n": 1}})
        assert verify(record)

    def test_tampered_record_fails(self):
        record = seal({"rec": "done", "job": "k"})
        assert not verify({**record, "job": "other"})
        assert not verify({**record, "sha256": "0" * 64})

    def test_malformed_records_fail(self):
        assert not verify("not a dict")
        assert not verify({"rec": "done", "job": "k"})  # unsealed
        assert not verify(seal({"rec": "martian", "job": "k"}))


class TestAppendReplay:
    def test_append_writes_header_then_records(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append(_submitted("k1"))
        journal.append({"rec": "started", "job": "k1", "lane": 0})
        journal.append({"rec": "done", "job": "k1", "summary": {}})
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["rec"] == "journal"
        assert header["journal_version"] == JOURNAL_VERSION
        assert header["store"] == journal.store_id()
        replayed = _journal(tmp_path).replay()
        assert [r["rec"] for r in replayed] == ["submitted", "started", "done"]
        assert all(verify(r) for r in replayed)

    def test_missing_file_replays_empty(self, tmp_path):
        assert _journal(tmp_path).replay() == []

    def test_torn_tail_salvages_prefix(self, tmp_path):
        """Power loss mid-append: the cut line is dropped, prefix kept."""
        journal = _journal(tmp_path)
        journal.append(_submitted("k1"))
        journal.append({"rec": "started", "job": "k1", "lane": 0})
        journal.append({"rec": "done", "job": "k1", "summary": {}})
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 7])

        fresh = _journal(tmp_path)
        replayed = fresh.replay()
        assert [r["rec"] for r in replayed] == ["submitted", "started"]
        assert fresh.salvaged == 2 and fresh.discarded == 1
        assert "serve journal" in _reasons(tmp_path)
        # The valid prefix was rewritten in place: the next boot replays
        # it cleanly, with no second quarantine.
        reasons_before = _reasons(tmp_path)
        again = _journal(tmp_path).replay()
        assert [r["rec"] for r in again] == ["submitted", "started"]
        assert _reasons(tmp_path) == reasons_before

    def test_bit_flip_ends_the_trusted_prefix(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append(_submitted("k1"))
        journal.append({"rec": "started", "job": "k1", "lane": 0})
        journal.append({"rec": "done", "job": "k1", "summary": {}})
        lines = journal.path.read_bytes().split(b"\n")
        flipped = bytearray(lines[2])  # the "started" record
        flipped[len(flipped) // 2] ^= 0x20
        lines[2] = bytes(flipped)
        journal.path.write_bytes(b"\n".join(lines))

        replayed = _journal(tmp_path).replay()
        # Everything from the damaged line on is untrusted, even the
        # well-formed "done" record after it: ordering past the damage is
        # unprovable.
        assert [r["rec"] for r in replayed] == ["submitted"]
        assert "serve journal" in _reasons(tmp_path)

    def test_foreign_journal_quarantined_whole(self, tmp_path):
        """A journal copied from another cache dir proves nothing here."""
        journal_a = _journal(tmp_path / "a")
        journal_a.append(_submitted("k1"))
        journal_a.append({"rec": "done", "job": "k1", "summary": {}})
        journal_b = _journal(tmp_path / "b")
        assert journal_b.store_id() != journal_a.store_id()
        journal_b.directory.mkdir(parents=True, exist_ok=True)
        shutil.copy(journal_a.path, journal_b.path)

        assert _journal(tmp_path / "b").replay() == []
        assert "another store" in _reasons(tmp_path / "b")
        assert not journal_b.path.exists()  # moved aside, not reused

    def test_headerless_file_is_not_trusted(self, tmp_path):
        journal = _journal(tmp_path)
        journal.directory.mkdir(parents=True, exist_ok=True)
        record = seal(_submitted("k1"))
        journal.path.write_text(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        assert _journal(tmp_path).replay() == []
        assert "missing journal header" in _reasons(tmp_path)


class TestReduceCompact:
    def test_reduce_follows_the_lifecycle(self):
        records = [
            _submitted("k1", ts=1.0),
            {"rec": "started", "job": "k1", "lane": 0, "ts": 2.0},
            {"rec": "done", "job": "k1", "summary": {"n": 2}, "ts": 3.0},
            _submitted("k2", ts=4.0),
            {"rec": "failed", "job": "k2", "error": "boom", "ts": 5.0},
        ]
        jobs = JobJournal.reduce(records)
        assert jobs["k1"]["state"] == "done"
        assert jobs["k1"]["summary"] == {"n": 2}
        assert jobs["k2"]["state"] == "failed"
        assert jobs["k2"]["error"] == "boom"

    def test_resubmission_reopens_a_failed_job(self):
        records = [
            _submitted("k1", ts=1.0),
            {"rec": "failed", "job": "k1", "error": "boom", "ts": 2.0},
            _submitted("k1", ts=3.0),
        ]
        jobs = JobJournal.reduce(records)
        assert jobs["k1"]["state"] == "queued"
        assert jobs["k1"]["error"] is None

    def test_orphan_transitions_are_skipped(self):
        """A done record whose submission fell past the salvage prefix."""
        records = [{"rec": "done", "job": "ghost", "summary": {}, "ts": 1.0}]
        assert JobJournal.reduce(records) == {}

    def test_submitted_never_demotes_active_state(self):
        records = [
            _submitted("k1", ts=1.0),
            {"rec": "started", "job": "k1", "lane": 0, "ts": 2.0},
            _submitted("k1", ts=3.0),  # duplicate client submission
        ]
        assert JobJournal.reduce(records)["k1"]["state"] == "running"

    def test_compact_is_a_reduce_fixed_point(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append(_submitted("k1", ts=1.0))
        journal.append({"rec": "started", "job": "k1", "lane": 0, "ts": 2.0})
        journal.append({"rec": "done", "job": "k1", "summary": {"n": 1},
                        "ts": 3.0})
        journal.append(_submitted("k2", ts=4.0))
        jobs = JobJournal.reduce(journal.replay())
        journal.compact(jobs)
        # Compacted: header + (submitted, done) for k1 + submitted for k2.
        assert len(journal.path.read_text().splitlines()) == 4
        assert JobJournal.reduce(_journal(tmp_path).replay()) == jobs
