"""Cross-module integration tests: determinism, serialization, D3D sims."""

import numpy as np
import pytest

from repro.api.tracer import ApiTracer
from repro.api.trace import load_trace, save_trace
from repro.gpu import perf
from repro.workloads import build_workload


class TestDeterminism:
    def test_simulation_bit_reproducible(self):
        a = build_workload("Quake4/demo4", sim=True).simulate(frames=2)
        b = build_workload("Quake4/demo4", sim=True).simulate(frames=2)
        assert a.stats.fragments_rasterized == b.stats.fragments_rasterized
        assert a.stats.fragments_blended == b.stats.fragments_blended
        assert a.memory.total_bytes == b.memory.total_bytes
        assert a.stats.quad_fates == b.stats.quad_fates

    def test_api_stats_reproducible(self):
        a = build_workload("FEAR/interval2").api_stats(frames=5)
        b = build_workload("FEAR/interval2").api_stats(frames=5)
        assert a.total_batches == b.total_batches
        assert a.total_indices == b.total_indices

    def test_different_seeds_differ(self):
        from dataclasses import replace

        from repro.workloads import workload
        from repro.workloads.generator import GameWorkload

        spec = workload("Doom3/trdemo2")
        a = GameWorkload(spec).api_stats(frames=3)
        b = GameWorkload(replace(spec, seed=spec.seed + 1)).api_stats(frames=3)
        assert a.total_indices != b.total_indices


class TestTraceSerializationEndToEnd:
    def test_saved_trace_preserves_api_stats(self, tmp_path):
        workload = build_workload("Riddick/PrisonArea", sim=True)
        trace = workload.trace(frames=3)
        path = tmp_path / "riddick.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        tracer = ApiTracer(workload.programs)
        original = tracer.trace_stats(workload.trace(frames=3))
        restored = tracer.trace_stats(loaded)
        assert original.total_batches == restored.total_batches
        assert original.total_indices == restored.total_indices
        assert original.avg_fragment_instructions == pytest.approx(
            restored.avg_fragment_instructions
        )

    def test_saved_trace_simulates_identically(self, tmp_path):
        workload = build_workload("UT2004/Primeval", sim=True)
        path = tmp_path / "ut.jsonl"
        save_trace(workload.trace(frames=2), path)
        loaded = load_trace(path)
        direct = workload.simulator().run_trace(workload.trace(frames=2))
        replayed = workload.simulator().run_trace(loaded)
        assert (
            direct.stats.fragments_blended == replayed.stats.fragments_blended
        )
        assert direct.memory.total_bytes == replayed.memory.total_bytes


class TestD3dWorkloadsSimulable:
    """The paper could not replay D3D games on ATTILA; our trace format is
    API-agnostic, so the D3D workloads simulate too (a capability the
    benches don't use, kept working as an extension)."""

    @pytest.mark.parametrize(
        "name", ["Half Life 2 LC/built-in", "Splinter Cell 3/first level"]
    )
    def test_simulates(self, name):
        workload = build_workload(name, sim=True)
        result = workload.simulate(frames=1)
        assert result.stats.fragments_blended > 0
        assert result.stats.triangles_traversed > 0

    def test_oblivion_strips_simulate(self):
        workload = build_workload("Oblivion/Anvil Castle", sim=True)
        result = workload.simulate(frames=1)
        assert result.stats.fragments_blended > 0


class TestPerfAcrossWorkloads:
    def test_bottlenecks_reported(self):
        workload = build_workload("Quake4/demo4", sim=True)
        result = workload.simulate(frames=1)
        estimate = perf.estimate(result.stats, result.memory, result.config)
        assert estimate.cycles_per_frame > 0
        # A stencil-shadow frame is dominated by fill or memory, not setup.
        assert estimate.bottleneck != "setup"

    def test_fps_scales_with_clock(self):
        workload = build_workload("UT2004/Primeval", sim=True)
        result = workload.simulate(frames=1)
        estimate = perf.estimate(result.stats, result.memory, result.config)
        assert estimate.fps_at_clock(1.25e9) == pytest.approx(
            2 * estimate.fps_at_clock(625e6)
        )


class TestImageOutput:
    def test_keep_images(self):
        workload = build_workload("UT2004/Primeval", sim=True)
        sim = workload.simulator()
        result = sim.run_trace(workload.trace(frames=2), keep_images=2)
        assert len(result.images) == 2
        for image in result.images:
            assert image.shape == (
                workload.spec.sim.height, workload.spec.sim.width, 4
            )
            assert image.max() <= 1.0 and image.min() >= 0.0
        # Frames differ (the camera moved).
        assert not np.allclose(result.images[0], result.images[1])
