"""Tests for the memory controller and framebuffer block machinery."""

import numpy as np
import pytest

from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient


class TestMemoryController:
    def test_accounting(self):
        mem = MemoryController()
        mem.read(MemClient.TEXTURE, 100)
        mem.write(MemClient.COLOR, 50)
        assert mem.total_read_bytes == 100
        assert mem.total_write_bytes == 50
        assert mem.total_bytes == 150
        assert mem.read_fraction == pytest.approx(100 / 150)

    def test_negative_rejected(self):
        mem = MemoryController()
        with pytest.raises(ValueError):
            mem.read(MemClient.CP, -1)

    def test_distribution_sums_to_100(self):
        mem = MemoryController()
        for i, client in enumerate(MemClient):
            mem.read(client, (i + 1) * 10)
        assert sum(mem.traffic_distribution.values()) == pytest.approx(100.0)

    def test_bandwidth_at_fps(self):
        mem = MemoryController()
        mem.read(MemClient.DAC, 1000)
        assert mem.bandwidth_at_fps(frames=2, fps=100.0) == pytest.approx(50000.0)

    def test_delta_since(self):
        mem = MemoryController()
        mem.read(MemClient.VERTEX, 10)
        snap = mem.snapshot()
        mem.read(MemClient.VERTEX, 7)
        delta = mem.delta_since(snap)
        assert delta.reads[MemClient.VERTEX] == 7

    def test_empty_distribution(self):
        mem = MemoryController()
        assert all(v == 0.0 for v in mem.traffic_distribution.values())


class TestFramebuffer:
    def test_padding_to_blocks(self):
        fb = Framebuffer(100, 50, block=8)
        assert fb.z.shape == (56, 104)
        assert fb.blocks_x == 13 and fb.blocks_y == 7

    def test_clear_depth_stencil(self):
        fb = Framebuffer(64, 64)
        fb.z[:] = 0.5
        fb.clear_depth_stencil(1.0, 3)
        assert (fb.z == 1.0).all()
        assert (fb.stencil == 3).all()
        assert (fb.z_block_state == BlockState.CLEARED).all()
        assert (fb.hz_max == 1.0).all()

    def test_stencil_only_clear_preserves_z(self):
        fb = Framebuffer(64, 64)
        fb.z[:] = 0.25
        fb.stencil[:] = 7
        fb.clear_stencil_only(0)
        assert (fb.stencil == 0).all()
        assert (fb.z == 0.25).all()

    def test_hz_cull_conservative_initially(self):
        fb = Framebuffer(64, 64)
        qx = np.array([0, 1])
        qy = np.array([0, 0])
        z_min = np.array([0.5, 0.999])
        assert not fb.hz_cull_mask(qx, qy, z_min).any()

    def test_hz_cull_after_update(self):
        fb = Framebuffer(64, 64)
        fb.z[0:8, 0:8] = 0.3  # whole first block written near
        fb.update_hz(np.array([0]), np.array([0]))
        assert fb.hz_max[0, 0] == pytest.approx(0.3)
        culled = fb.hz_cull_mask(np.array([0]), np.array([0]), np.array([0.31]))
        assert culled.all()
        passed = fb.hz_cull_mask(np.array([0]), np.array([0]), np.array([0.29]))
        assert not passed.any()

    def test_z_block_compressible_planar(self):
        fb = Framebuffer(64, 64)
        ys, xs = np.mgrid[0:8, 0:8]
        fb.z[0:8, 0:8] = 0.5 + 0.01 * xs + 0.002 * ys
        assert fb.z_block_compressible(0, 0)
        fb.z[3, 3] = 0.9  # break planarity
        assert not fb.z_block_compressible(0, 0)

    def test_color_block_uniform(self):
        fb = Framebuffer(64, 64)
        assert fb.color_block_uniform(0, 0)
        fb.color[2, 2] = [1, 0, 0, 1]
        assert not fb.color_block_uniform(0, 0)

    def test_color_image_cropped_and_clipped(self):
        fb = Framebuffer(100, 50)
        fb.color[:] = 2.0
        img = fb.color_image()
        assert img.shape == (50, 100, 4)
        assert img.max() == 1.0

    def test_ppm_output(self, tmp_path):
        fb = Framebuffer(16, 8)
        fb.color[:, :, 0] = 1.0
        path = tmp_path / "out.ppm"
        fb.to_ppm(path)
        data = path.read_bytes()
        assert data.startswith(b"P6 16 8 255\n")
        assert len(data) == len(b"P6 16 8 255\n") + 16 * 8 * 3

    def test_quad_block_coords(self):
        fb = Framebuffer(64, 64, block=8)
        bx, by = fb.quad_block_coords(np.array([0, 3, 4]), np.array([0, 3, 4]))
        assert bx.tolist() == [0, 0, 1]
        assert by.tolist() == [0, 0, 1]
