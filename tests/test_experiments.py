"""Tests for the experiment harness (runner, tables, figures, report)."""

import pytest

from repro.experiments import ExperimentConfig, Runner, paper, tables, figures
from repro.experiments.report import Comparison


@pytest.fixture(scope="module")
def tiny_runner():
    """A very small-budget runner: enough to exercise every code path."""
    return Runner(ExperimentConfig(api_frames=6, sim_frames=1, geometry_frames=4))


class TestReport:
    def test_comparison_renders_pairs(self):
        comparison = Comparison(
            "Table T", "demo", ["name", "value"], [["x", (1.23, 1.5)]]
        )
        text = comparison.as_text()
        assert "1.23 (1.50)" in text
        assert "Table T" in text

    def test_measured_accessor(self):
        comparison = Comparison("T", "d", ["a"], [[(3.0, 4.0)], ["plain"]])
        assert comparison.measured(0, 0) == 3.0
        assert comparison.measured(1, 0) == "plain"

    def test_notes_rendered(self):
        comparison = Comparison("T", "d", ["a"], [[1]], notes=["careful"])
        assert "note: careful" in comparison.as_text()


class TestRunnerCaching:
    def test_api_cached(self, tiny_runner):
        a = tiny_runner.api("UT2004/Primeval")
        b = tiny_runner.api("UT2004/Primeval")
        assert a is b

    def test_clear_resets(self):
        runner = Runner(ExperimentConfig(api_frames=2, sim_frames=1, geometry_frames=1))
        a = runner.api("UT2004/Primeval")
        runner.clear()
        assert runner.api("UT2004/Primeval") is not a

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_API_FRAMES", "7")
        assert ExperimentConfig().api_frames == 7


class TestStaticTables:
    def test_table1_rows(self):
        comparison = tables.table1()
        assert len(comparison.rows) == 12
        assert comparison.rows[0][0] == "UT2004/Primeval"

    def test_table2_configuration(self):
        comparison = tables.table2()
        assert len(comparison.rows) == 5

    def test_table6_bus_model_matches_paper(self):
        comparison = tables.table6()
        for row in comparison.rows:
            measured, published = row[3]
            assert measured == pytest.approx(published, rel=0.01)


class TestMeasuredTables:
    def test_table3_structure(self, tiny_runner):
        comparison = tables.table3(tiny_runner)
        assert len(comparison.rows) == 12
        for row in comparison.rows:
            assert row[1][0] > 0  # measured idx/batch

    def test_table9_partitions(self, tiny_runner):
        comparison = tables.table9(tiny_runner)
        for row in comparison.rows:
            total = sum(cell[0] for cell in row[1:6])
            assert total == pytest.approx(100.0, abs=0.5)

    def test_table14_has_sim_sizes(self, tiny_runner):
        comparison = tables.table14(tiny_runner)
        assert any("KB" in str(row[3]) for row in comparison.rows)

    def test_all_tables_registry(self):
        assert len(tables.ALL_TABLES) == 17


class TestFigures:
    def test_figure4_static(self):
        fig = figures.figure4()
        assert fig.series["TL"][0] == 3.0
        assert "Figure 4" in fig.as_text()

    def test_figure_csv_export(self):
        fig = figures.figure4()
        csv = fig.as_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("frame,")
        assert len(lines) == len(fig.series["TL"]) + 1

    def test_figure1_series(self, tiny_runner):
        fig = figures.figure1(tiny_runner, api="ogl")
        assert set(fig.series) == {
            "UT2004/Primeval",
            "Doom3/trdemo2",
            "Quake4/demo4",
            "Riddick/PrisonArea",
        }
        for series in fig.series.values():
            assert len(series) == 6

    def test_figure5_uses_geometry_run(self, tiny_runner):
        fig = figures.figure5(tiny_runner)
        for name, series in fig.series.items():
            assert len(series) == 4
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_all_figures_registry(self):
        assert len(figures.ALL_FIGURES) == 8


class TestPaperData:
    def test_workload_order_complete(self):
        assert len(paper.WORKLOAD_ORDER) == 12
        for name in paper.WORKLOAD_ORDER:
            assert name in paper.TABLE3
            assert name in paper.TABLE4
            assert name in paper.TABLE5
            assert name in paper.TABLE12

    def test_simulated_tables_cover_three_games(self):
        for table in (paper.TABLE7, paper.TABLE8, paper.TABLE9, paper.TABLE10,
                      paper.TABLE11, paper.TABLE13, paper.TABLE15,
                      paper.TABLE16, paper.TABLE17):
            assert set(table) == set(paper.SIMULATED)

    def test_table9_rows_sum_to_100(self):
        for name, row in paper.TABLE9.items():
            assert sum(row) == pytest.approx(100.0, abs=0.1)

    def test_table16_rows_sum_to_100(self):
        for name, row in paper.TABLE16.items():
            assert sum(row) == pytest.approx(100.0, abs=0.5)

    def test_table12_ratio_consistency(self):
        # ALU:TEX = (total - tex) / tex, as printed in the paper.
        for name, (total, tex, ratio) in paper.TABLE12.items():
            assert (total - tex) / tex == pytest.approx(ratio, abs=0.03)
