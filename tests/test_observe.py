"""repro.observe: spans, metrics, exports, and cross-process collection.

The subsystem's contract, each clause tested here:

* spans nest correctly and the logical (event-sequence) clock makes
  exports **bit-stable** — identical across reruns and across farm
  ``--jobs`` widths for the same workload/seed;
* the disabled path is free: ``span()`` hands back a shared no-op
  singleton and allocates nothing, so instrumentation can live in the
  pipeline's hot loops permanently;
* attaching the observer never changes simulation results — statistics
  are bit-identical traced vs. untraced;
* worker span buffers round-trip through artifact sidecars (corruption is
  quarantined, not fatal) and merge into one timeline at harvest;
* exports round-trip (JSONL) and satisfy the Chrome-trace schema check;
* ``FarmTelemetry`` phase accounting reads from the metrics registry, so
  the farm summary line and a metrics dump can never disagree.
"""

from __future__ import annotations

import json
import pickle
import tracemalloc

import pytest

from repro.farm import ArtifactStore, Farm, sim_job
from repro.farm.checkpoint import clear_trace_cache
from repro.farm.telemetry import FarmTelemetry
from repro.gpu.profiler import DrawProfiler, records_from_spans
from repro.observe import (
    absorb_job,
    ascii_timeline,
    from_jsonl,
    metrics,
    spans,
    to_chrome,
    to_jsonl,
    top_spans,
    validate_chrome,
)
from repro.workloads import build_workload

WORKLOAD = "UT2004/Primeval"


@pytest.fixture(autouse=True)
def _clean_observe():
    spans.disable()
    metrics.reset()
    clear_trace_cache()
    yield
    spans.disable()
    metrics.reset()
    clear_trace_cache()


# -- span mechanics --------------------------------------------------------
def test_span_nesting_parent_indices_and_sequence():
    tracer = spans.enable(env=False)
    with spans.span("outer", "t"):
        with spans.span("inner", "t") as s:
            s.set("k", 1)
        with spans.span("inner2", "t"):
            pass
    spans.disable()
    docs = [s.as_dict() for s in tracer.spans]
    assert [d["name"] for d in docs] == ["outer", "inner", "inner2"]
    assert [d["parent"] for d in docs] == [-1, 0, 0]
    outer, inner, inner2 = docs
    # sequence clock: every start and end ticks, children nest strictly
    assert outer["s0"] < inner["s0"] < inner["s1"] < inner2["s0"]
    assert inner2["s1"] < outer["s1"]
    assert inner["attrs"] == {"k": 1}
    assert outer["t1"] >= outer["t0"] >= 0


def test_payload_closes_open_spans_in_copy_only():
    tracer = spans.enable(env=False)
    open_span = spans.span("open", "t")
    payload = tracer.payload()
    assert payload["spans"][0]["s1"] is not None
    assert open_span.s1 is None  # the live span is untouched
    spans.disable()


def test_disabled_span_is_shared_noop_singleton():
    assert not spans.enabled()
    s = spans.span("anything", "t")
    assert s is spans.NOOP
    assert s is spans.span("other")
    assert not s  # falsy → attr blocks are skipped
    s.set("k", 1)  # and set() is a no-op
    with s:
        pass


def _hot_loop(iterations):
    for _ in iterations:
        s = spans.span("hot", "gpu")
        if s:
            s.set("k", 1)


def test_disabled_path_allocates_nothing():
    iterations = tuple(range(512))
    _hot_loop(iterations)  # warm up: bytecode, caches
    tracemalloc.start()
    _hot_loop(iterations)
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert current == 0


def test_enable_sets_env_flag_for_workers():
    spans.enable(env=True)
    assert spans.env_enabled()
    spans.disable()
    assert not spans.env_enabled()
    spans.enable(env=False)
    assert not spans.env_enabled()
    spans.disable()


def test_unit_scope_fresh_in_worker_like_process(monkeypatch):
    monkeypatch.setenv(spans.ENV_FLAG, "1")
    assert spans.current() is None
    scope = spans.UnitScope("unit-a")
    assert scope.fresh
    with spans.span("work", "t"):
        pass
    payload = scope.finish(metrics={"m": {"type": "counter", "value": 1}})
    assert spans.current() is None  # uninstalled after the unit
    assert payload["track"] == "unit-a"
    assert [s["name"] for s in payload["spans"]] == ["job:unit-a", "work"]
    assert payload["metrics"]["m"]["value"] == 1


def test_unit_scope_is_plain_span_under_parent_tracer():
    tracer = spans.enable(env=True)
    scope = spans.UnitScope("unit-b")
    assert not scope.fresh
    assert scope.finish() is None  # no sidecar: spans went to the parent
    spans.disable()
    assert [s.name for s in tracer.spans] == ["job:unit-b"]


# -- metrics registry ------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = metrics.MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2)
    reg.gauge("g").set(7)
    hist = reg.histogram("h", buckets=(10, 100))
    for value in (5, 50, 5000):
        hist.observe(value)
    assert reg.counter("c").value == 3
    assert reg.gauge("g").value == 7
    assert hist.counts == [1, 1, 1]  # <=10, <=100, overflow
    assert hist.count == 3 and hist.total == 5055
    with pytest.raises(TypeError):
        reg.gauge("c")  # kind mismatch is loud


def test_metrics_merge_is_order_independent():
    a = metrics.MetricsRegistry()
    a.counter("jobs").inc(2)
    a.gauge("mem").set(10)
    a.histogram("h").observe(5)
    b = metrics.MetricsRegistry()
    b.counter("jobs").inc(3)
    b.gauge("mem").set(25)
    b.histogram("h").observe(500)

    ab = metrics.MetricsRegistry()
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba = metrics.MetricsRegistry()
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert ab.snapshot() == ba.snapshot()
    assert ab.counter("jobs").value == 5  # counters add
    assert ab.gauge("mem").value == 25  # gauges take the max


def test_metrics_merge_rejects_malformed():
    reg = metrics.MetricsRegistry()
    with pytest.raises(TypeError):
        reg.merge({"x": {"type": "exotic", "value": 1}})
    reg.histogram("h", buckets=(1, 2))
    with pytest.raises(ValueError):
        reg.merge(
            {
                "h": {
                    "type": "histogram",
                    "buckets": [9],
                    "counts": [0, 0],
                    "total": 0,
                    "count": 0,
                }
            }
        )


# -- exports ---------------------------------------------------------------
def _sample_timeline():
    tracer = spans.enable(env=False)
    with spans.span("run", "t"):
        with spans.span("frame", "t") as s:
            s.set("frame", 0)
    timeline = tracer.timeline({"c": {"type": "counter", "value": 1}})
    spans.disable()
    return timeline


def test_jsonl_roundtrip_and_chrome_schema():
    timeline = _sample_timeline()
    parsed = from_jsonl(to_jsonl(timeline))
    assert parsed == timeline
    for clock in ("logical", "wall"):
        doc = to_chrome(parsed, clock=clock)
        assert validate_chrome(doc) == []
        assert doc == to_chrome(timeline, clock=clock)
    names = [e["name"] for e in to_chrome(timeline)["traceEvents"]]
    assert names == ["process_name", "run", "frame"]


def test_validate_chrome_flags_violations():
    assert validate_chrome({}) != []
    assert validate_chrome({"traceEvents": []}) == ["traceEvents is empty"]
    bad_ph = {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 0}]}
    assert any("ph" in e for e in validate_chrome(bad_ph))
    negative = {
        "traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0, "dur": -1}
        ]
    }
    assert any("dur" in e for e in validate_chrome(negative))
    overlap = {
        "traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 0, "ts": 5, "dur": 10},
        ]
    }
    assert any("overlaps" in e for e in validate_chrome(overlap))


def test_top_spans_and_ascii_timeline():
    timeline = _sample_timeline()
    ranked = top_spans(timeline, 10)
    assert [r["name"] for r in ranked] == ["run", "frame"]
    run = ranked[0]
    # self time excludes the child's wall time
    assert run["self_ns"] == run["total_ns"] - ranked[1]["total_ns"]
    art = ascii_timeline(timeline)
    assert "run" in art and "frame" in art and "track main" in art


# -- sidecar persistence ---------------------------------------------------
def _fake_payload():
    return {
        "track": "unit",
        "pid": 7,
        "epoch_ns": 100,
        "anchor_ns": 40,
        "metrics": {"gpu.frames": {"type": "counter", "value": 1}},
        "spans": [
            {
                "name": "job:unit", "cat": "farm", "parent": -1,
                "s0": 0, "s1": 3, "t0": 50, "t1": 90, "attrs": {},
            },
            {
                "name": "gpu.run", "cat": "gpu", "parent": 0,
                "s0": 1, "s1": 2, "t0": 55, "t1": 85, "attrs": {"frames": 1},
            },
        ],
    }


def test_span_sidecar_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    job = sim_job(WORKLOAD, 1)
    store.save_spans(job, _fake_payload())
    assert store.load_spans(job) == _fake_payload()


def test_corrupt_sidecar_is_quarantined(tmp_path):
    store = ArtifactStore(tmp_path)
    job = sim_job(WORKLOAD, 1)
    store.save_spans(job, _fake_payload())
    path = store.spans_path(job)
    path.write_text(path.read_text()[:-20])
    assert store.load_spans(job) is None
    assert store.quarantined_files()
    # absorb_job counts the miss instead of failing the harvest
    spans.enable(env=False)
    assert not absorb_job(store, job)
    spans.disable()
    assert metrics.registry().counter("observe.sidecars_missing").value == 1


def test_absorb_job_merges_track_and_metrics(tmp_path):
    store = ArtifactStore(tmp_path)
    job = sim_job(WORKLOAD, 1)
    store.save_spans(job, _fake_payload())
    tracer = spans.enable(env=False)
    assert absorb_job(store, job)
    spans.disable()
    assert list(tracer.foreign) == ["unit"]
    assert metrics.registry().counter("gpu.frames").value == 1


# -- telemetry on the registry ---------------------------------------------
def test_farm_telemetry_phases_backed_by_registry():
    telemetry = FarmTelemetry()
    telemetry.add_phase("trace", 0.5)
    telemetry.add_phase("trace", 0.25)
    telemetry.add_phase("merge", 1.0)
    assert telemetry.phases == {"merge": 1.0, "trace": 0.75}
    assert telemetry.registry.counter("farm.phase.trace").value == 0.75
    line = telemetry.summary_line()
    assert "[merge 1.00s trace 0.75s]" in line


def test_farm_telemetry_shares_process_registry_when_asked():
    telemetry = FarmTelemetry(registry=metrics.registry())
    telemetry.add_phase("simulate", 2.0)
    assert metrics.registry().counter("farm.phase.simulate").value == 2.0
    # same counter object → the summary and a metrics dump cannot disagree
    assert telemetry.phases["simulate"] == 2.0


def test_private_telemetry_mirrors_to_shared_registry_while_tracing():
    telemetry = FarmTelemetry()
    telemetry.add_phase("spawn", 1.0)  # not tracing: private only
    assert len(metrics.registry()) == 0
    spans.enable(env=False)
    telemetry.add_phase("spawn", 2.0)
    spans.disable()
    assert telemetry.phases["spawn"] == 3.0
    assert metrics.registry().counter("farm.phase.spawn").value == 2.0


# -- simulation integration ------------------------------------------------
@pytest.fixture(scope="module")
def ut_one_frame():
    workload = build_workload(WORKLOAD, sim=True)
    trace = workload.trace(frames=1).materialize()
    return workload, trace


def _run_sim(workload, trace):
    return workload.simulator().run_trace(trace, max_frames=1)


def test_observer_never_changes_simulation_statistics(ut_one_frame):
    workload, trace = ut_one_frame
    untraced = _run_sim(workload, trace)
    tracer = spans.enable(env=False)
    traced = _run_sim(workload, trace)
    spans.disable()
    assert pickle.dumps(traced.stats) == pickle.dumps(untraced.stats)
    assert pickle.dumps(traced.frame_stats) == pickle.dumps(
        untraced.frame_stats
    )
    names = {s.name for s in tracer.spans}
    assert {"gpu.run", "gpu.frame", "gpu.draw", "gpu.stage.vertex"} <= names


def test_traced_rerun_exports_identically(ut_one_frame):
    workload, trace = ut_one_frame
    exports = []
    for _ in range(2):
        metrics.reset()
        tracer = spans.enable(env=False)
        _run_sim(workload, trace)
        timeline = tracer.timeline()
        spans.disable()
        exports.append(json.dumps(to_chrome(timeline), sort_keys=True))
    assert exports[0] == exports[1]


def test_draw_spans_match_profiler_records(ut_one_frame):
    workload, trace = ut_one_frame
    sim = workload.simulator()
    tracer = spans.enable(env=False)
    with DrawProfiler(sim) as profiler:
        sim.run_trace(trace, max_frames=1)
    spans.disable()
    from_trace = records_from_spans(s.as_dict() for s in tracer.spans)
    from_profiler = [r for f in profiler.frames for r in f.draws]
    assert from_trace == from_profiler
    assert metrics.registry().counter("profiler.draws").value == len(
        from_profiler
    )


def _traced_farm_export(tmp, jobs):
    metrics.reset()
    tracer = spans.enable(track="main")
    try:
        with Farm(
            store=ArtifactStore(tmp), jobs=jobs, shard_frames=2
        ) as farm:
            farm.run_one(sim_job(WORKLOAD, 2))
        timeline = tracer.timeline(metrics.registry().snapshot())
    finally:
        spans.disable()
    return timeline, json.dumps(to_chrome(timeline), sort_keys=True)


def test_worker_sidecars_merge_bit_stably_across_jobs_widths(tmp_path):
    timeline2, export2 = _traced_farm_export(tmp_path / "a", jobs=2)
    timeline4, export4 = _traced_farm_export(tmp_path / "b", jobs=4)
    tracks = [t["track"] for t in timeline2]
    assert tracks[0] == "main" and len(tracks) == 3  # one per frame shard
    assert export2 == export4
    assert validate_chrome(json.loads(export2)) == []
    merged = metrics.registry().counter("observe.sidecars_merged").value
    assert merged == 2
