"""Tests for the paper's Section III.C HZ improvements (min/max, stencil)."""

import numpy as np
import pytest

from dataclasses import replace

from repro.gpu.framebuffer import Framebuffer
from repro.workloads import build_workload


class TestMinMaxHz:
    def test_minmax_tracked_on_update(self):
        fb = Framebuffer(64, 64)
        fb.z[0:8, 0:8] = np.linspace(0.3, 0.6, 64).reshape(8, 8)
        fb.update_hz(np.array([0]), np.array([0]))
        assert fb.hz_min[0, 0] == pytest.approx(0.3)
        assert fb.hz_max[0, 0] == pytest.approx(0.6)

    def test_equal_cull_outside_band(self):
        fb = Framebuffer(64, 64)
        fb.z[0:8, 0:8] = 0.5
        fb.update_hz(np.array([0]), np.array([0]))
        qx = np.array([0, 0, 0])
        qy = np.array([0, 0, 0])
        # Quad bands: entirely below, straddling, entirely above the block.
        z_min = np.array([0.1, 0.45, 0.7])
        z_max = np.array([0.2, 0.55, 0.9])
        culled = fb.hz_minmax_equal_cull_mask(qx, qy, z_min, z_max)
        assert culled.tolist() == [True, False, True]

    def test_cleared_band_collapses_to_clear_depth(self):
        fb = Framebuffer(64, 64)
        fb.clear_depth_stencil(1.0, 0)
        culled = fb.hz_minmax_equal_cull_mask(
            np.array([0]), np.array([0]), np.array([0.5]), np.array([0.6])
        )
        assert culled.all()  # nothing at depth 0.5-0.6 can be EQUAL to 1.0


class TestStencilHz:
    def test_band_tracks_stencil_writes(self):
        fb = Framebuffer(64, 64)
        fb.stencil[0:8, 0:8] = 2
        fb.note_stencil_write(np.array([0]), np.array([0]))
        assert fb.hz_stencil_min[0, 0] == 2
        assert fb.hz_stencil_max[0, 0] == 2

    def test_equal_zero_culls_fully_shadowed_block(self):
        fb = Framebuffer(64, 64)
        fb.stencil[0:8, 0:8] = 1  # fully shadowed block
        fb.note_stencil_write(np.array([0]), np.array([0]))
        culled = fb.hz_stencil_cull_mask(
            np.array([0, 4]), np.array([0, 0]), ref=0, func="equal"
        )
        assert culled.tolist() == [True, False]

    def test_partial_block_not_culled(self):
        fb = Framebuffer(64, 64)
        fb.stencil[0:4, 0:4] = 1  # half shadowed
        fb.note_stencil_write(np.array([0]), np.array([0]))
        culled = fb.hz_stencil_cull_mask(
            np.array([0]), np.array([0]), ref=0, func="equal"
        )
        assert not culled.any()

    def test_notequal_collapsed_band(self):
        fb = Framebuffer(64, 64)
        culled = fb.hz_stencil_cull_mask(
            np.array([0]), np.array([0]), ref=0, func="notequal"
        )
        assert culled.all()  # everything is 0: notequal-0 always fails

    def test_other_funcs_never_cull(self):
        fb = Framebuffer(64, 64)
        culled = fb.hz_stencil_cull_mask(
            np.array([0]), np.array([0]), ref=0, func="always"
        )
        assert not culled.any()


class TestEndToEnd:
    """The extensions must be conservative: identical final output."""

    @pytest.fixture(scope="class")
    def runs(self):
        workload = build_workload("Doom3/trdemo2", sim=True)
        base = workload.simulator().config
        baseline = workload.simulate(frames=2, config=base)
        improved = workload.simulate(
            frames=2, config=replace(base, hz_min_max=True, hz_stencil=True)
        )
        return baseline, improved

    def test_same_blended_output(self, runs):
        baseline, improved = runs
        for a, b in zip(baseline.frame_stats, improved.frame_stats):
            assert a.fragments_blended == b.fragments_blended

    def test_more_early_culling(self, runs):
        from repro.gpu.stats import QuadFate

        baseline, improved = runs
        hz_base = baseline.stats.quad_fates.get(QuadFate.HZ, 0)
        hz_improved = improved.stats.quad_fates.get(QuadFate.HZ, 0)
        assert hz_improved >= hz_base
        zs_base = baseline.stats.quad_fates.get(QuadFate.ZSTENCIL, 0)
        zs_improved = improved.stats.quad_fates.get(QuadFate.ZSTENCIL, 0)
        assert zs_improved <= zs_base
