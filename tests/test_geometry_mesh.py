"""Tests for the Mesh container and vertex layouts."""

import numpy as np
import pytest

from repro.geometry.mesh import Mesh, VertexLayout
from repro.geometry.primitives import PrimitiveType


def triangle_mesh(**kwargs):
    return Mesh(
        "t",
        positions=np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0]]),
        indices=[0, 1, 2],
        **kwargs,
    )


class TestValidation:
    def test_indices_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Mesh("bad", np.zeros((2, 3)), [0, 1, 2])

    def test_bad_index_size(self):
        with pytest.raises(ValueError):
            triangle_mesh(index_size_bytes=3)

    def test_attribute_count_mismatch(self):
        with pytest.raises(ValueError, match="uvs"):
            Mesh(
                "bad",
                np.zeros((3, 3)),
                [0, 1, 2],
                uvs=np.zeros((2, 2)),
            )


class TestDerived:
    def test_counts(self):
        mesh = triangle_mesh()
        assert mesh.vertex_count == 3
        assert mesh.index_count == 3
        assert mesh.triangle_count == 1

    def test_strip_triangle_count(self):
        mesh = Mesh(
            "s",
            np.zeros((5, 3)) + np.arange(5)[:, None],
            list(range(5)),
            primitive=PrimitiveType.TRIANGLE_STRIP,
        )
        assert mesh.triangle_count == 3

    def test_default_normals_point_up_for_flat(self):
        mesh = Mesh(
            "flat",
            np.array([[0.0, 0, 0], [0, 0, 1], [1, 0, 0]]),
            [0, 1, 2],
        )
        assert np.allclose(mesh.normals[:, 1], 1.0)

    def test_normals_unit_length(self):
        mesh = triangle_mesh()
        lengths = np.linalg.norm(mesh.normals, axis=1)
        assert np.allclose(lengths, 1.0)

    def test_default_uvs_generated(self):
        mesh = triangle_mesh()
        assert mesh.uvs.shape == (3, 2)

    def test_bounds_and_sphere(self):
        mesh = triangle_mesh()
        lo, hi = mesh.bounds()
        assert np.allclose(lo, [0, 0, 0]) and np.allclose(hi, [1, 1, 0])
        center, radius = mesh.bounding_sphere()
        assert np.allclose(center, [0.5, 0.5, 0.0])
        assert radius == pytest.approx(np.sqrt(0.5))

    def test_empty_mesh_bounds(self):
        mesh = Mesh("e", np.zeros((0, 3)), [])
        lo, hi = mesh.bounds()
        assert np.allclose(lo, 0) and np.allclose(hi, 0)


class TestLayout:
    def test_minimal_stride(self):
        layout = VertexLayout(has_normal=False, has_uv=False)
        assert layout.stride_bytes == 12

    def test_full_stride(self):
        layout = VertexLayout(
            has_normal=True, has_uv=True, has_color=True,
            has_tangent=True, has_uv1=True,
        )
        assert layout.stride_bytes == 12 + 12 + 8 + 4 + 12 + 8

    def test_mesh_vertex_size_reflects_attributes(self):
        plain = triangle_mesh()
        assert plain.vertex_size_bytes == 32  # pos + normal + uv
        fat = triangle_mesh(extra_attributes=2)
        assert fat.vertex_size_bytes == 32 + 12 + 8
