"""Tests for WorkloadSpec / SimProfile / EngineParams behaviour."""

import pytest

from repro.api.commands import GraphicsApi
from repro.gpu.texture import TextureFilter
from repro.workloads.spec import EngineParams, SimProfile, WorkloadSpec


def make_spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        name="Test/demo",
        game="Test",
        timedemo="demo",
        engine="TestEngine",
        api=GraphicsApi.OPENGL,
        frames=100,
        duration_s=3.3,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="2006",
        index_size_bytes=2,
        seed=1,
        params=EngineParams(render_path="forward"),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestSpec:
    def test_slug(self):
        spec = make_spec(name="Half Life 2 LC/built-in")
        assert spec.slug == "half_life_2_lc_built-in"

    def test_texture_filter_selection(self):
        assert make_spec(aniso_level=16).texture_filter is TextureFilter.ANISOTROPIC
        assert make_spec(aniso_level=None).texture_filter is TextureFilter.TRILINEAR

    def test_scaled_for_sim_applies_all_scales(self):
        spec = make_spec(
            params=EngineParams(
                render_path="stencil_shadow",
                object_tris=320,
                room_tris=1600,
                character_tris=640,
                objects_per_room=40,
                casters_per_room=20,
                characters_per_room=4,
            ),
            sim=SimProfile(
                geometry_scale=0.25,
                object_count_scale=0.5,
                object_size_scale=2.0,
                uv_scale=1.0,
            ),
        )
        scaled = spec.scaled_for_sim()
        assert scaled.params.object_tris == 80
        assert scaled.params.room_tris == 400
        assert scaled.params.objects_per_room == 20
        assert scaled.params.casters_per_room == 10
        assert scaled.params.prop_size == 2.0
        assert scaled.params.startup_calls == 200

    def test_scaled_for_sim_clamps_minimums(self):
        spec = make_spec(
            params=EngineParams(render_path="forward", object_tris=20),
            sim=SimProfile(geometry_scale=0.01),
        )
        scaled = spec.scaled_for_sim()
        assert scaled.params.object_tris >= 12
        assert scaled.params.objects_per_room >= 4

    def test_sim_profile_defaults(self):
        profile = SimProfile()
        assert profile.width == 256 and profile.height == 192
        assert 0 < profile.cache_scale <= 1
        assert 0 < profile.texture_l1_scale <= 1

    def test_specs_are_frozen(self):
        spec = make_spec()
        with pytest.raises(Exception):
            spec.frames = 5  # type: ignore[misc]
        with pytest.raises(Exception):
            spec.params.rooms = 3  # type: ignore[misc]
