"""Tests for the synthetic workload package."""

import numpy as np
import pytest

from repro.api.commands import Clear, Draw, GraphicsApi, UploadResource
from repro.geometry.primitives import PrimitiveType
from repro.gpu.texture import TextureFilter
from repro.workloads import (
    OPENGL_SIMULATED,
    WORKLOADS,
    all_workloads,
    build_workload,
    workload,
)
from repro.workloads.camera import CorridorPath, TerrainPath
from repro.workloads.scenes import build_corridor_scene, room_light_positions
from repro.workloads.spec import EngineParams
from repro.workloads.textures import build_texture_set


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(WORKLOADS) == 12
        assert len(all_workloads()) == 12

    def test_simulated_subset(self):
        assert set(OPENGL_SIMULATED) <= set(WORKLOADS)
        for name in OPENGL_SIMULATED:
            assert workload(name).api is GraphicsApi.OPENGL

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            workload("Crysis/benchmark")

    def test_table1_metadata(self):
        spec = workload("Doom3/trdemo2")
        assert spec.frames == 3990
        assert spec.index_size_bytes == 4
        assert spec.aniso_level == 16
        spec = workload("Riddick/MainFrame")
        assert spec.aniso_level is None
        assert spec.texture_filter is TextureFilter.TRILINEAR

    def test_slug_is_identifier_safe(self):
        for spec in all_workloads():
            assert "/" not in spec.slug and " " not in spec.slug

    def test_sim_scaling_shrinks_geometry(self):
        spec = workload("Doom3/trdemo2")
        scaled = spec.scaled_for_sim()
        assert scaled.params.object_tris < spec.params.object_tris
        assert scaled.params.objects_per_room < spec.params.objects_per_room
        assert scaled.params.prop_size > spec.params.prop_size


class TestCamera:
    def test_corridor_progression(self):
        path = CorridorPath(rooms=8, room_length=20, frames=80)
        assert path.room_at(0) == 0
        assert path.room_at(79) == 7
        shot = path.shot(40)
        assert shot.view.shape == (4, 4)
        assert shot.position[2] < 0  # walked into the corridor

    def test_corridor_deterministic(self):
        path = CorridorPath(rooms=4, room_length=10, frames=50)
        a, b = path.shot(13), path.shot(13)
        assert np.allclose(a.view, b.view)

    def test_terrain_regions(self):
        path = TerrainPath(extent=800, frames=100)
        assert path.region(0) == 0
        assert path.region(99) == 1


class TestScenes:
    def params(self, **kw):
        defaults = dict(
            render_path="stencil_shadow",
            rooms=2,
            objects_per_room=8,
            casters_per_room=3,
            lights=2,
            object_tris=40,
            room_tris=100,
            characters_per_room=1,
            arches_per_room=1,
            pillars_per_room=2,
        )
        defaults.update(kw)
        return EngineParams(**defaults)

    def test_corridor_scene_structure(self):
        scene = build_corridor_scene("t", self.params(), 1, 4, True)
        assert scene.rooms == 2
        rooms = {o.room for o in scene.objects}
        assert rooms == {0, 1}
        shells = [o for o in scene.objects if o.mesh == "t.room"]
        assert len(shells) == 2

    def test_casters_have_per_light_volumes(self):
        scene = build_corridor_scene("t", self.params(), 1, 4, True)
        casters = [o for o in scene.objects if o.caster]
        assert casters
        for obj in casters:
            assert len(obj.volume_meshes) == 2  # one per light
            for name in obj.volume_meshes:
                if name:
                    assert name in scene.meshes

    def test_no_volumes_for_forward_engines(self):
        scene = build_corridor_scene(
            "t", self.params(render_path="forward"), 1, 2, False
        )
        assert not any(o.caster for o in scene.objects)

    def test_aisle_kept_clear(self):
        scene = build_corridor_scene("t", self.params(), 1, 4, True)
        for obj in scene.objects:
            if "prop" in obj.mesh or "char" in obj.mesh:
                assert abs(obj.center[0]) > 1.0

    def test_light_positions_inside_room(self):
        params = self.params()
        for pos in room_light_positions(params, 0):
            assert 0 < pos[1] <= params.room_size[1]
            assert abs(pos[0]) <= params.room_size[0] / 2

    def test_deterministic(self):
        a = build_corridor_scene("t", self.params(), 9, 4, True)
        b = build_corridor_scene("t", self.params(), 9, 4, True)
        assert [o.mesh for o in a.objects] == [o.mesh for o in b.objects]


class TestTextures:
    def test_set_composition(self):
        textures = build_texture_set("w", 1, material_count=5, size=64)
        names = [t.name for t in textures]
        assert sum(".mat" in n for n in names) == 5
        assert sum(".cut" in n for n in names) == 2
        assert any("falloff" in n for n in names)

    def test_cutouts_have_transparency(self):
        textures = build_texture_set("w", 1, 2, size=64)
        cut = next(t for t in textures if ".cut" in t.name)
        alpha = cut.mips[0][..., 3]
        assert 0.2 < float((alpha < 0.5).mean()) < 0.8

    def test_deterministic(self):
        a = build_texture_set("w", 4, 3, size=64)
        b = build_texture_set("w", 4, 3, size=64)
        assert np.allclose(a[0].mips[0], b[0].mips[0])

    def test_unknown_palette(self):
        with pytest.raises(KeyError):
            build_texture_set("w", 1, 2, palette="vaporwave")


class TestEngineTraces:
    @pytest.fixture(scope="class")
    def doom3(self):
        return build_workload("Doom3/trdemo2", sim=True)

    def test_trace_deterministic(self, doom3):
        frames_a = [f.calls for f in doom3.trace(frames=3).frames()]
        frames_b = [f.calls for f in doom3.trace(frames=3).frames()]
        assert len(frames_a) == len(frames_b) == 3
        for fa, fb in zip(frames_a, frames_b):
            assert len(fa) == len(fb)
            draws_a = [c.mesh for c in fa if isinstance(c, Draw)]
            draws_b = [c.mesh for c in fb if isinstance(c, Draw)]
            assert draws_a == draws_b

    def test_first_frame_uploads(self, doom3):
        frame0 = next(iter(doom3.trace(frames=2).frames()))
        uploads = [c for c in frame0.calls if isinstance(c, UploadResource)]
        assert uploads
        kinds = {u.kind for u in uploads}
        assert kinds == {"vertex", "index", "texture"}

    def test_every_frame_starts_with_clear(self, doom3):
        for frame in doom3.trace(frames=3).frames():
            assert isinstance(frame.calls[0], Clear)

    def test_draw_meshes_all_exist(self, doom3):
        for frame in doom3.trace(frames=3).frames():
            for call in frame.calls:
                if isinstance(call, Draw):
                    assert call.mesh in doom3.meshes

    def test_stencil_path_has_all_three_passes(self, doom3):
        from repro.api.commands import SetState

        frame = list(doom3.trace(frames=3).frames())[2]
        stencil, func = False, "always"
        modes = set()
        for call in frame.calls:
            if isinstance(call, SetState):
                if call.name == "stencil_test":
                    stencil = call.value
                if call.name == "stencil_func":
                    func = call.value
            if isinstance(call, Draw):
                if not stencil:
                    modes.add("prepass")
                elif func == "always":
                    modes.add("volume")
                else:
                    modes.add("interaction")
        assert modes == {"prepass", "volume", "interaction"}

    def test_oblivion_region_switch(self):
        wl = build_workload("Oblivion/Anvil Castle")
        stats = wl.api_stats(frames=20)
        first = stats.frames[2].avg_vertex_instructions
        second = stats.frames[-2].avg_vertex_instructions
        assert second > first * 1.5

    def test_api_stats_shapes(self, doom3):
        stats = doom3.api_stats(frames=4)
        assert stats.frame_count == 4
        assert stats.avg_indices_per_batch > 0
        assert stats.primitive_share[PrimitiveType.TRIANGLE_LIST] == 1.0
