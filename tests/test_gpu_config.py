"""Tests for GpuConfig and cache scaling."""

import pytest

from repro.gpu.config import CacheConfig, GpuConfig, scaled_cache


class TestGpuConfig:
    def test_r520_defaults_match_table2(self):
        config = GpuConfig.r520()
        assert config.width == 1024 and config.height == 768
        assert config.zstencil_cache.size_bytes == 16 * 1024
        assert config.texture_l0.size_bytes == 4 * 1024
        assert config.texture_l1.describe() == "16w x 16s x 64B"

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            GpuConfig(width=0, height=10)

    def test_pixels_and_hz_block(self):
        config = GpuConfig(width=100, height=50)
        assert config.pixels == 5000
        assert config.hz_block == 8  # 256B line / 4B per pixel = 8x8

    def test_with_resolution(self):
        config = GpuConfig.r520().with_resolution(320, 240)
        assert config.pixels == 320 * 240
        assert config.zstencil_cache.size_bytes == 16 * 1024  # untouched

    def test_table2_rows_shape(self):
        rows = GpuConfig.r520().table2_rows()
        assert len(rows) == 5
        assert all(len(r) == 3 for r in rows)


class TestCacheScaling:
    def test_scaled_cache_valid_geometry(self):
        cache = CacheConfig(16 * 1024, 256, 64, "z")
        for factor in (0.1, 0.25, 0.5, 0.37, 2.0):
            scaled = scaled_cache(cache, factor)
            # Constructor validates divisibility; also check bounds.
            assert scaled.size_bytes >= 2 * cache.line_bytes
            assert scaled.line_bytes == cache.line_bytes

    def test_scaling_screen_caches_only(self):
        config = GpuConfig.r520().with_scaled_caches(0.5)
        assert config.zstencil_cache.size_bytes == 8 * 1024
        assert config.color_cache.size_bytes == 8 * 1024
        assert config.texture_l0.size_bytes == 4 * 1024  # untouched
        assert config.texture_l1.size_bytes == 16 * 1024  # untouched

    def test_l1_factor(self):
        config = GpuConfig.r520().with_scaled_caches(0.5, l1_factor=0.25)
        assert config.texture_l1.size_bytes == 4 * 1024
        assert config.texture_l0.size_bytes == 4 * 1024

    def test_include_texture(self):
        config = GpuConfig.r520().with_scaled_caches(0.5, include_texture=True)
        assert config.texture_l0.size_bytes == 2 * 1024
        assert config.texture_l1.size_bytes == 8 * 1024

    def test_minimum_two_lines(self):
        cache = CacheConfig(1024, 256, 4, "t")
        scaled = scaled_cache(cache, 0.01)
        assert scaled.size_bytes == 2 * 256

    def test_hz_flags_default_off(self):
        config = GpuConfig.r520()
        assert not config.hz_min_max and not config.hz_stencil
