"""Cross-process store locking: FileLock semantics, shared backoff, TOCTOU.

The farm and serve layers share one artifact store across processes (CLI
runs, serve lanes, chaos subprocesses); these tests pin the locking
primitives that make that safe — mutual exclusion in and across
processes, the deterministic backoff both executor retry and lock spin
use, and the quota enforcer's re-check-under-lock that closes its
check-then-unlink race.
"""

import hashlib
import os
import pathlib
import subprocess
import sys
import time

import pytest

import repro
from repro.farm import ArtifactStore, JobSpec
from repro.farm.locks import FileLock, LockTimeout, backoff_delay

WORKLOAD = "UT2004/Primeval"
SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parents[1])


def _save(store: ArtifactStore, seed: int, mtime: float) -> JobSpec:
    job = JobSpec("api", WORKLOAD, 2, seed=seed)
    store.save(job, f"payload-{seed}" * 64)
    os.utime(store.meta_path(job), (mtime, mtime))
    return job


class TestBackoffDelay:
    def test_deterministic_for_a_seed(self):
        assert backoff_delay(3, 0.05, 2.0, "job-a#3") == backoff_delay(
            3, 0.05, 2.0, "job-a#3"
        )
        assert backoff_delay(3, 0.05, 2.0, "job-a#3") != backoff_delay(
            3, 0.05, 2.0, "job-b#3"
        )

    def test_matches_the_documented_formula(self):
        for attempt, seed in ((1, "x"), (4, "retry#4"), (9, "")):
            jitter = 0.5 + (
                int(hashlib.sha256(seed.encode()).hexdigest()[:8], 16) % 1000
            ) / 1000.0
            expected = min(2.0, 0.05 * 2 ** (attempt - 1)) * jitter
            assert backoff_delay(attempt, 0.05, 2.0, seed) == pytest.approx(
                expected
            )

    def test_grows_then_caps(self):
        delays = [backoff_delay(n, 0.05, 2.0, "s") for n in range(1, 16)]
        assert all(d <= 2.0 * 1.5 for d in delays)
        assert delays[-1] == delays[-2]  # hit the cap

    def test_zero_base_disables_backoff(self):
        assert backoff_delay(5, 0.0, 2.0, "s") == 0.0


class TestFileLock:
    def test_mutual_exclusion_between_instances(self, tmp_path):
        path = tmp_path / "locks" / "t.lock"
        first = FileLock(path)
        first.acquire()
        second = FileLock(path, timeout=0.2)
        with pytest.raises(LockTimeout):
            second.acquire()
        first.release()
        with second:
            assert second.held
        assert not second.held

    def test_lock_timeout_is_an_oserror(self):
        # Callers' existing ``except OSError`` degradation paths must
        # swallow lock contention the same way they swallow disk errors.
        assert issubclass(LockTimeout, OSError)

    def test_exclusion_across_processes(self, tmp_path):
        path = tmp_path / "locks" / "x.lock"
        holder = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys, time\n"
                "sys.path.insert(0, sys.argv[1])\n"
                "from repro.farm.locks import FileLock\n"
                "FileLock(sys.argv[2], timeout=5).acquire()\n"
                "print('held', flush=True)\n"
                "time.sleep(1.5)\n",
                SRC_ROOT, str(path),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "held"
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2).acquire()
            # The holder exits (releasing the flock with its fd); the
            # lock then becomes acquirable well within the spin timeout.
            lock = FileLock(path, timeout=10.0)
            lock.acquire()
            lock.release()
        finally:
            holder.kill()
            holder.wait(timeout=10)


class TestQuotaRaces:
    def test_eviction_skips_families_touched_after_snapshot(
        self, tmp_path, monkeypatch
    ):
        """The TOCTOU re-check: a concurrent cache hit saves its family.

        ``enforce_quota`` snapshots recency, then deletes.  A family whose
        meta mtime advanced past the snapshot was used *after* it — the
        stale snapshot must not evict what is now the most recent entry.
        """
        store = ArtifactStore(tmp_path)
        touched = _save(store, 1, mtime=1_000)  # snapshot says LRU
        other = _save(store, 2, mtime=2_000)
        stale = store.families()
        os.utime(store.meta_path(touched), None)  # concurrent cache hit
        monkeypatch.setattr(store, "families", lambda: stale)

        evicted = store.enforce_quota(0)
        assert touched.key() not in evicted
        assert store.contains(touched)
        assert evicted == [other.key()]

    def test_eviction_yields_to_a_busy_store_lock(self, tmp_path, monkeypatch):
        """Another process mid-eviction: this one backs off empty-handed."""
        store = ArtifactStore(tmp_path)
        _save(store, 1, mtime=1_000)
        monkeypatch.setattr(
            store, "lock",
            lambda name="store", timeout=30.0: FileLock(
                store.root / "locks" / f"{name}.lock", timeout=0.1
            ),
        )
        holder = FileLock(tmp_path / "locks" / "store.lock")
        holder.acquire()
        try:
            assert store.enforce_quota(0) == []
            assert len(store.families()) == 1
        finally:
            holder.release()

    def test_concurrent_processes_never_evict_pinned(self, tmp_path):
        """Several processes churning one store: the pinned key survives."""
        store = ArtifactStore(tmp_path)
        pinned = JobSpec("api", WORKLOAD, 2, seed=0)
        store.save(pinned, "pinned" * 256)
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.farm import ArtifactStore, JobSpec\n"
            "store = ArtifactStore(sys.argv[2])\n"
            "base = int(sys.argv[3]) * 100\n"
            "pinned = JobSpec('api', 'UT2004/Primeval', 2, seed=0)\n"
            "for i in range(6):\n"
            "    job = JobSpec('api', 'UT2004/Primeval', 2, seed=base + i + 1)\n"
            "    store.save(job, 'x' * 2048)\n"
            "    store.enforce_quota(4096, {pinned.key()})\n"
            "    assert store.load(pinned) is not None\n"
            "print('ok')\n"
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, SRC_ROOT, str(tmp_path),
                 str(index)],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for index in range(3)
        ]
        for worker in workers:
            out, _ = worker.communicate(timeout=120)
            assert worker.returncode == 0, out
            assert out.strip().endswith("ok"), out
        assert store.contains(pinned)
        assert store.load(pinned) is not None
