"""Artifact-store quota: LRU eviction order, pinning, quarantine safety.

The serve layer runs the store as a bounded cache
(:meth:`ArtifactStore.enforce_quota`); these tests pin the properties
that make that safe: recency is updated on use (so eviction is真 LRU),
in-flight / published jobs can be pinned and are never evicted, and
quarantined files — evidence of corruption — are neither counted as
evictable families, deleted by quota churn, nor resurrected as cache
hits.
"""

import os

from repro.farm import ArtifactStore, JobSpec

WORKLOAD = "UT2004/Primeval"


def _job(seed: int) -> JobSpec:
    return JobSpec("api", WORKLOAD, 2, seed=seed)


def _save(store: ArtifactStore, seed: int, mtime: float) -> JobSpec:
    """One stored family with a controlled last-used time."""
    job = _job(seed)
    store.save(job, f"payload-{seed}" * 64)
    os.utime(store.meta_path(job), (mtime, mtime))
    return job


class TestFamilies:
    def test_families_sorted_lru_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        newest = _save(store, 1, mtime=3_000)
        oldest = _save(store, 2, mtime=1_000)
        middle = _save(store, 3, mtime=2_000)
        keys = [f["key"] for f in store.families()]
        assert keys == [oldest.key(), middle.key(), newest.key()]

    def test_family_bytes_cover_all_members(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _save(store, 1, mtime=1_000)
        store.save_spans(job, {"spans": [], "metrics": None, "track": "t",
                               "pid": 1})
        (family,) = store.families()
        expected = sum(
            p.stat().st_size
            for p in (
                store.artifact_path(job),
                store.meta_path(job),
                store.artifact_dir / f"{job.key()}.spans.jsonl",
            )
        )
        assert family["bytes"] == expected

    def test_load_refreshes_recency(self, tmp_path):
        """A cache hit moves the family to the MRU end — true LRU."""
        store = ArtifactStore(tmp_path)
        first = _save(store, 1, mtime=1_000)
        second = _save(store, 2, mtime=2_000)
        assert store.load(first) is not None  # touch: first is now MRU
        keys = [f["key"] for f in store.families()]
        assert keys == [second.key(), first.key()]


class TestEnforceQuota:
    def test_evicts_lru_first_until_under_quota(self, tmp_path):
        store = ArtifactStore(tmp_path)
        oldest = _save(store, 1, mtime=1_000)
        middle = _save(store, 2, mtime=2_000)
        newest = _save(store, 3, mtime=3_000)
        families = {f["key"]: f["bytes"] for f in store.families()}
        total = sum(families.values())
        # Quota that exactly one eviction (the LRU family) satisfies.
        evicted = store.enforce_quota(total - families[oldest.key()])
        assert evicted == [oldest.key()]
        assert not store.contains(oldest)
        assert store.contains(middle) and store.contains(newest)
        # Eviction removes the whole family, meta included.
        assert not store.meta_path(oldest).exists()

    def test_no_eviction_under_quota(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _save(store, 1, mtime=1_000)
        total = sum(f["bytes"] for f in store.families())
        assert store.enforce_quota(total) == []

    def test_pinned_families_survive(self, tmp_path):
        """In-flight jobs are pinned: quota walks past them, LRU or not."""
        store = ArtifactStore(tmp_path)
        pinned = _save(store, 1, mtime=1_000)  # oldest AND pinned
        victim = _save(store, 2, mtime=2_000)
        _keep = _save(store, 3, mtime=3_000)
        families = {f["key"]: f["bytes"] for f in store.families()}
        total = sum(families.values())
        evicted = store.enforce_quota(
            total - families[victim.key()], pinned={pinned.key()}
        )
        assert evicted == [victim.key()]
        assert store.contains(pinned)

    def test_quota_zero_clears_all_unpinned(self, tmp_path):
        store = ArtifactStore(tmp_path)
        jobs = [_save(store, seed, mtime=1_000 + seed) for seed in range(3)]
        evicted = store.enforce_quota(0)
        assert sorted(evicted) == sorted(j.key() for j in jobs)
        assert store.families() == []


class TestQuarantineSafety:
    def _quarantine(self, store: ArtifactStore, job: JobSpec) -> None:
        blob = bytearray(store.artifact_path(job).read_bytes())
        blob[len(blob) // 2] ^= 0x40
        store.artifact_path(job).write_bytes(bytes(blob))
        assert store.load(job) is None  # corruption detected → quarantined

    def test_quarantined_family_is_not_a_family(self, tmp_path):
        store = ArtifactStore(tmp_path)
        job = _save(store, 1, mtime=1_000)
        self._quarantine(store, job)
        assert store.families() == []
        assert store.quarantined_files()

    def test_enforce_quota_never_touches_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bad = _save(store, 1, mtime=1_000)
        self._quarantine(store, bad)
        _save(store, 2, mtime=2_000)
        before = {p.name for p in store.quarantined_files()}
        store.enforce_quota(0)
        assert {p.name for p in store.quarantined_files()} == before

    def test_quarantined_family_never_resurrected(self, tmp_path):
        """After quarantine the key stays a miss; quota churn can't bring
        the corrupt bytes back."""
        store = ArtifactStore(tmp_path)
        job = _save(store, 1, mtime=1_000)
        self._quarantine(store, job)
        store.enforce_quota(0)
        assert not store.contains(job)
        assert store.load(job) is None
        # A fresh save of the same spec is a brand-new family, loadable
        # again — quarantine blocks the corrupt bytes, not the key.
        store.save(job, "clean payload")
        assert store.load(job) == "clean payload"
