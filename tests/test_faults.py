"""Tests for fault injection, artifact integrity, and graceful degradation.

Four layers, bottom-up:

* the injector itself — plan serialization, env installation, cross-process
  ``times`` accounting, deterministic corruption;
* store integrity — checksum/decode/invariant gauntlet, quarantine,
  legacy artifacts without checksums;
* the conservation invariants — clean results pass, tampered ones don't;
* end-to-end recovery — every satellite fault class (crash, hang, corrupt
  artifact, truncated checkpoint, unwritable cache, native-compile failure)
  recovers results bit-identical to a fault-free run, plus the
  ``strict=False`` degradation contract.

The end-to-end cases run the shared ``repro chaos`` scenarios (the same
code ``python -m repro chaos`` executes), against one module-scoped
fault-free reference batch.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.farm import (
    ArtifactStore,
    Farm,
    FarmError,
    FaultPlan,
    FaultSpec,
    api_job,
    run_job,
    sim_job,
    validate_result,
)
from repro.farm import chaos, faults

WORKLOAD = "UT2004/Primeval"
OTHER = "Doom3/trdemo2"


def _plan(tmp_path, *specs, seed=0):
    return FaultPlan(
        faults=tuple(specs), seed=seed, state_dir=str(tmp_path / "fault-state")
    )


# -- the injector -----------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("crash", match="sim", times=2, frame=3),
                FaultSpec("unwritable", error="EROFS"),
            ),
            seed=7,
            state_dir="/tmp/somewhere",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike")

    def test_injected_installs_and_restores_env(self, tmp_path):
        assert faults.active() is None
        plan = _plan(tmp_path, FaultSpec("exception"))
        with faults.injected(plan) as installed:
            assert faults.active() == installed
            assert os.environ[faults.ENV_VAR] == installed.to_json()
        assert faults.active() is None
        assert faults.ENV_VAR not in os.environ

    def test_times_claimed_across_calls(self, tmp_path):
        plan = _plan(tmp_path, FaultSpec("exception", times=2))
        with faults.injected(plan):
            assert faults.fire("exception") is not None
            assert faults.fire("exception") is not None
            assert faults.fire("exception") is None  # both slots claimed

    def test_times_zero_is_unlimited(self, tmp_path):
        plan = _plan(tmp_path, FaultSpec("exception", times=0))
        with faults.injected(plan):
            assert all(faults.fire("exception") for _ in range(5))

    def test_match_filters_by_label(self, tmp_path):
        plan = _plan(tmp_path, FaultSpec("exception", match="sim", times=0))
        with faults.injected(plan):
            assert faults.fire("exception", "api:UT2004/Primeval@2f") is None
            assert faults.fire("exception", "sim:UT2004/Primeval@2f")

    def test_frame_targeting(self, tmp_path):
        plan = _plan(tmp_path, FaultSpec("exception", times=0, frame=2))
        with faults.injected(plan):
            assert faults.fire("exception") is None  # job-entry site
            assert faults.fire("exception", frame=1) is None
            assert faults.fire("exception", frame=2)

    def test_bitflip_is_deterministic_and_single_bit(self, tmp_path):
        payload = bytes(range(256)) * 4
        damaged = []
        for attempt in ("a", "b"):
            target = tmp_path / attempt / "blob.bin"
            target.parent.mkdir()
            target.write_bytes(payload)
            plan = _plan(
                tmp_path / attempt,
                FaultSpec("corrupt_artifact", mode="bitflip"),
                seed=3,
            )
            with faults.injected(plan):
                assert faults.corrupt_file("corrupt_artifact", target)
            damaged.append(target.read_bytes())
        assert damaged[0] == damaged[1]  # same seed + name => same damage
        diff = [
            i for i, (a, b) in enumerate(zip(payload, damaged[0])) if a != b
        ]
        assert len(diff) == 1
        assert bin(payload[diff[0]] ^ damaged[0][diff[0]]).count("1") == 1

    def test_no_plan_is_a_no_op(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"payload")
        assert faults.fire("exception") is None
        assert not faults.corrupt_file("corrupt_artifact", target)
        faults.check_writable("anything")  # must not raise
        assert target.read_bytes() == b"payload"


# -- store integrity --------------------------------------------------------


class TestStoreIntegrity:
    def test_checksum_mismatch_quarantined(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save(job, "placeholder")
        blob = bytearray(store.artifact_path(job).read_bytes())
        blob[len(blob) // 2] ^= 0x40  # single flipped bit on disk
        store.artifact_path(job).write_bytes(bytes(blob))

        assert store.load(job) is None
        assert store.misses == 1
        assert store.quarantined == 1
        assert not store.artifact_path(job).exists()  # moved, not left behind
        names = {p.name for p in store.quarantined_files()}
        assert names == {f"{job.key()}.pkl", f"{job.key()}.json"}
        log = (store.quarantine_dir / "REASONS.log").read_text()
        assert "checksum mismatch" in log

    def test_undecodable_artifact_quarantined(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save(job, "placeholder")
        store.artifact_path(job).write_bytes(b"\x80\x05garbage")
        meta = json.loads(store.meta_path(job).read_text())
        del meta["sha256"]  # legacy sidecar: decode errors must still catch it
        store.meta_path(job).write_text(json.dumps(meta))

        assert store.load(job) is None
        assert store.quarantined == 1
        assert "undecodable" in (store.quarantine_dir / "REASONS.log").read_text()

    def test_legacy_meta_without_checksum_still_loads(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save(job, "placeholder")
        meta = json.loads(store.meta_path(job).read_text())
        del meta["sha256"]
        store.meta_path(job).write_text(json.dumps(meta))
        assert store.load(job) == "placeholder"
        assert store.hits == 1

    def test_semantic_violation_quarantined(self, tmp_path):
        # A well-formed pickle under the wrong key: the checksum and the
        # decode both pass, only the invariant pass can reject it.
        stats = run_job(api_job(WORKLOAD, 2)).result
        store = ArtifactStore(tmp_path)
        wrong = api_job(WORKLOAD, 3)
        store.save(wrong, stats)
        assert store.load(wrong) is None
        assert store.quarantined == 1
        assert "invariant violation" in (
            store.quarantine_dir / "REASONS.log"
        ).read_text()

    def test_truncated_checkpoint_quarantined(self, tmp_path):
        job = sim_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save_checkpoint(job, {"frame": 1, "state": list(range(1000))})
        path = store.checkpoint_path(job)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        assert store.load_checkpoint(job) is None
        assert store.quarantined == 1
        assert not path.exists()

    def test_clear_also_empties_quarantine(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save(job, "placeholder")
        store.artifact_path(job).write_bytes(b"junk")
        assert store.load(job) is None
        assert store.quarantined_files()
        store.clear()
        assert store.quarantined_files() == []


# -- conservation invariants ------------------------------------------------


class TestInvariants:
    def test_clean_api_result_passes(self):
        job = api_job(WORKLOAD, 2)
        assert validate_result(job, run_job(job).result) == []

    def test_frame_budget_mismatch_detected(self):
        stats = run_job(api_job(WORKLOAD, 2)).result
        assert validate_result(api_job(WORKLOAD, 3), stats)

    def test_clean_sim_result_passes(self):
        job = sim_job(WORKLOAD, 1)
        assert validate_result(job, run_job(job).result) == []

    def test_tampered_sim_counter_detected(self):
        job = sim_job(WORKLOAD, 1)
        result = run_job(job).result
        result.stats.fragments_rasterized += 1  # breaks frame-sum conservation
        assert validate_result(job, result)

    def test_unknown_result_shape_is_not_validated(self):
        assert validate_result(api_job(WORKLOAD, 2), "bare string") == []


# -- end-to-end recovery (the chaos scenarios) -------------------------------


@pytest.fixture(scope="module")
def chaos_ctx(tmp_path_factory):
    """Fault-free reference batch shared by every recovery test."""
    root = tmp_path_factory.mktemp("chaos")
    reference = Farm(store=ArtifactStore(root / "reference"), jobs=2).run(
        list(chaos.BASE_JOBS) + [chaos.CKPT_JOB]
    )

    def make(name: str) -> chaos._Context:
        return chaos._Context(reference, seed=0, jobs=2, root=root / name)

    return make


class TestChaosRecovery:
    """Each satellite fault class recovers bit-identical to the reference.

    ``ChaosFailure`` (an ``AssertionError``) propagating out of a scenario
    is the test failure; these are the exact scenarios ``repro chaos`` runs.
    """

    def test_worker_crash_mid_round(self, chaos_ctx):
        chaos._crash(chaos_ctx("crash"))

    def test_hung_job_killed_and_requeued(self, chaos_ctx):
        chaos._hang(chaos_ctx("hang"))

    def test_corrupt_artifact_quarantined_and_recomputed(self, chaos_ctx):
        chaos._artifact_corruption(chaos_ctx("corrupt"))

    def test_truncated_checkpoint_restarts_cleanly(self, chaos_ctx):
        chaos._checkpoint_truncation(chaos_ctx("ckpt"))

    def test_unwritable_cache_dir_still_produces_results(self, chaos_ctx):
        chaos._unwritable(chaos_ctx("readonly"), "EROFS")

    def test_native_compile_failure_falls_back_identically(self, chaos_ctx):
        chaos._native_compile(chaos_ctx("native"))


# -- graceful degradation and scheduling fixes -------------------------------


def _fails_for_doom(job, cache_dir, checkpoint_every):
    if "Doom3" in job.workload:
        raise ValueError("doom jobs always fail")
    return f"ok:{job.workload}"


def _sleeps_briefly(job, cache_dir, checkpoint_every):
    time.sleep(0.6)
    return f"slept:{job.key()}"


class TestFarmDegradation:
    JOBS = [api_job(WORKLOAD, 2), api_job(OTHER, 2)]

    def test_strict_false_returns_partial_results_and_report(self, tmp_path):
        farm = Farm(
            store=ArtifactStore(tmp_path), jobs=2, retries=2, strict=False
        )
        results = farm.run(self.JOBS, worker=_fails_for_doom)
        assert results == {self.JOBS[0]: f"ok:{WORKLOAD}"}
        report = farm.last_report
        assert not report.ok
        assert report.completed == 1
        assert report.failed_jobs() == [self.JOBS[1]]
        assert any("doom jobs always fail" in c for c in report.failures[0].causes)
        assert farm.telemetry.failed == 1

    def test_strict_error_carries_per_job_cause_chain(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=2, retries=2)
        with pytest.raises(FarmError, match="doom jobs always fail") as info:
            farm.run(self.JOBS, worker=_fails_for_doom)
        assert info.value.report is not None
        assert info.value.report.failed_jobs() == [self.JOBS[1]]
        # the survivor's work is not discarded by the sibling's failure
        assert info.value.report.completed == 1

    def test_run_one_raises_when_nonstrict_job_fails(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=1, strict=False)
        with pytest.raises(FarmError):
            farm.run_one(api_job(OTHER, 2), worker=_fails_for_doom)

    def test_queued_jobs_not_charged_for_wait_time(self, tmp_path):
        # Six 0.6s jobs through 2 workers: the last wave finishes ~1.8s in,
        # past a naive per-job clock started at collection time.  The
        # wave-scaled round deadline must not kill or retry anything.
        jobs = [api_job(WORKLOAD, frames) for frames in range(2, 8)]
        farm = Farm(
            store=ArtifactStore(tmp_path), jobs=2, retries=2, timeout=1.0
        )
        results = farm.run(jobs, worker=_sleeps_briefly)
        assert len(results) == len(jobs)
        assert farm.telemetry.retries == 0
        assert all(r.attempts == 1 for r in farm.telemetry.records)
