"""Tests for the reproduction scorecard."""

import json

import pytest

from repro.experiments import ExperimentConfig, Runner
from repro.experiments.report import Comparison
from repro.experiments.scorecard import (
    ExhibitScore,
    build_scorecard,
    experiments_markdown,
    score_comparison,
    scorecard_json,
)


def make_comparison(rows):
    return Comparison("Table T", "demo", ["a", "b"], rows)


class TestScoring:
    def test_pairs_extracted_and_scored(self):
        comparison = make_comparison([["x", (110.0, 100.0)], ["y", (90.0, 100.0)]])
        score = score_comparison("tableT", comparison)
        assert score.pairs == 2
        assert score.mean_rel_error == pytest.approx(0.1)
        assert score.worst_rel_error == pytest.approx(0.1)

    def test_plain_cells_ignored(self):
        comparison = make_comparison([["x", 5], ["y", "text"]])
        score = score_comparison("tableT", comparison)
        assert score.pairs == 0
        assert score.grade == "qualitative"

    def test_grades(self):
        exact = score_comparison("t", make_comparison([["x", (100.0, 100.0)]]))
        assert exact.grade.startswith("excellent")
        good = score_comparison("t", make_comparison([["x", (110.0, 100.0)]]))
        assert good.grade.startswith("good")
        fair = score_comparison("t", make_comparison([["x", (130.0, 100.0)]]))
        assert fair.grade.startswith("fair")
        config = score_comparison("table2", make_comparison([["x", (1.0, 9.0)]]))
        assert config.grade == "exact (configuration)"

    def test_scale_bound_label(self):
        bad = score_comparison("table8", make_comparison([["x", (10.0, 100.0)]]))
        assert bad.scale_bound
        assert bad.grade == "shape only"

    def test_json_roundtrip(self):
        scores = [
            ExhibitScore("Table X", "t", 3, 0.1234, 0.5),
        ]
        data = json.loads(scorecard_json(scores))
        assert data[0]["mean_rel_error"] == 0.1234
        assert data[0]["exhibit"] == "Table X"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def tiny_runner(self):
        return Runner(
            ExperimentConfig(api_frames=4, sim_frames=1, geometry_frames=3)
        )

    def test_build_scorecard_covers_all_tables(self, tiny_runner):
        scores = build_scorecard(tiny_runner)
        assert len(scores) == 17
        exhibits = {s.exhibit for s in scores}
        assert "Table III" in exhibits and "Table XVII" in exhibits

    def test_markdown_render(self, tiny_runner):
        markdown = experiments_markdown(tiny_runner, include_figures=False)
        assert markdown.startswith("# EXPERIMENTS")
        assert "## Scorecard" in markdown
        assert "Table XVI" in markdown
