"""Mega-batch equivalence: the fused frame-arena path (``fused=True``)
must match the per-triangle reference bit for bit — same per-frame
counters, quad fates, cache hit/miss/access triples, and framebuffer
contents — on every simulated engine, at any thread count, with and
without the compiled kernels.

The fingerprint uses :meth:`FrameGpuStats.as_dict`, which carries every
counter and fate but not memory *byte* totals: the fused path samples
z-block compressibility at chunk rather than draw granularity (see
:mod:`repro.gpu.fused`), which can flip a z writeback between compressed
and raw size without touching any other observable.
"""

import dataclasses
import functools
import hashlib

import pytest

from repro.gpu import _native
from repro.workloads import build_workload

# One representative workload per engine family (Table I).
ENGINES = [
    "UT2004/Primeval",          # Unreal 2.5
    "Doom3/trdemo2",            # Doom3
    "Riddick/MainFrame",        # Starbreeze
    "FEAR/built-in demo",       # Monolith
    "Half Life 2 LC/built-in",  # Valve Source
    "Oblivion/Anvil Castle",    # Gamebryo
]
FRAMES = 1


def _simulate(name: str, vectorized: bool, fused: bool, threads: int):
    workload = build_workload(name, sim=True)
    sim = workload.simulator()
    sim.config = dataclasses.replace(
        sim.config, vectorized=vectorized, fused=fused, threads=threads
    )
    result = sim.run_trace(workload.trace(frames=FRAMES), max_frames=FRAMES)
    h = hashlib.sha256()
    h.update(sim.fb.color.tobytes())
    h.update(sim.fb.z.tobytes())
    h.update(sim.fb.stencil.tobytes())
    return {
        "frame_stats": [fs.as_dict() for fs in result.frame_stats],
        "caches": {
            cname: (cache.hits, cache.misses, cache.accesses)
            for cname, cache in result.caches.items()
        },
        "fb": h.hexdigest(),
    }


@functools.lru_cache(maxsize=None)
def _run(name: str, vectorized: bool = True, fused: bool = False,
         threads: int = 1):
    """One simulation per configuration, shared across the test cases."""
    return _simulate(name, vectorized, fused, threads)


@pytest.mark.parametrize("name", ENGINES)
def test_fused_matches_per_triangle(name):
    reference = _run(name, vectorized=False)
    assert _run(name) == reference
    assert _run(name, fused=True) == reference


@pytest.mark.parametrize("name", ENGINES)
def test_fused_threads_bit_identical(name):
    """Tile-band threading may not perturb a single observable."""
    assert _run(name, fused=True, threads=4) == _run(name, fused=True)


@pytest.mark.parametrize(
    "name,threads", [(ENGINES[0], 1), (ENGINES[1], 4)]
)
def test_fused_pure_python_matches(monkeypatch, name, threads):
    """With the kernels disabled, the fallback (per-segment QuadStream
    stage code at flush) must still reproduce the native fused run."""
    reference = _run(name, fused=True)
    monkeypatch.setattr(_native, "available", lambda: False)
    assert _simulate(name, True, True, threads) == reference
