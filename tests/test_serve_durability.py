"""Durable serving: journal recovery, deadlines, watchdog, degraded mode.

Companion to ``test_serve.py`` (the happy-path service mechanics): these
tests break the server — crash-boot a second instance over the same
store, hang a lane, blow a deadline, trip the circuit breaker — and pin
the recovery contracts.  Stub workers throughout; the bit-identity of
recovered *artifacts* is pinned by the serve chaos suite
(``repro chaos --suite serve``), which runs the real pipeline.
"""

import socket
import threading
import time

import pytest

from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
)
from repro.serve.server import CircuitBreaker

@pytest.fixture(autouse=True)
def _restore_observe_env():
    """Server start arms REPRO_OBSERVE; don't leak it into later tests."""
    import os

    before = os.environ.get("REPRO_OBSERVE")
    yield
    if before is None:
        os.environ.pop("REPRO_OBSERVE", None)
    else:
        os.environ["REPRO_OBSERVE"] = before


def _spec_doc(seed=0, frames=2):
    return {"kind": "sim", "workload": "UT2004/Primeval", "frames": frames,
            "seed": seed}


def _server(tmp_path, worker, **config):
    config.setdefault("port", 0)
    config.setdefault("lanes", 1)
    config.setdefault("cache_dir", str(tmp_path / "cache"))
    thread = ServerThread(
        ReproServer(ServeConfig(**config), worker=worker)
    ).start()
    return thread, ServeClient(thread.host, thread.port, client_id="t")


class TestBootFailures:
    def test_server_thread_surfaces_boot_errors(self, tmp_path):
        """A dead port must raise from start(), not time out opaquely."""
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(RuntimeError, match="failed to start"):
                ServerThread(
                    ReproServer(
                        ServeConfig(port=port, cache_dir=str(tmp_path / "c"))
                    )
                ).start()
        finally:
            blocker.close()


class TestJournalRecovery:
    def test_restart_requeues_incomplete_jobs(self, tmp_path):
        """Jobs mid-flight at a crash are re-run by the next boot."""
        wedge = threading.Event()
        cache = str(tmp_path / "cache")

        def wedged_worker(job, cache_dir, checkpoint_every):
            wedge.wait(timeout=60)
            return {"ok": True}

        first, client1 = _server(tmp_path, wedged_worker, cache_dir=cache)
        try:
            key = client1.submit(**_spec_doc())["job"]
            deadline = time.monotonic() + 30
            while client1.status(key)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # Crash-boot a second server over the same store while the
            # first is wedged — exactly what a restart after kill -9
            # sees: a journal ending in submitted + started.
            second, client2 = _server(
                tmp_path, lambda *a: {"ok": True}, cache_dir=cache
            )
            try:
                stats = client2.stats()
                assert stats["recovered_requeued"] == 1
                assert stats["recovered_served"] == 0
                final = client2.wait(key, timeout=60)
                assert final["state"] == "done"
            finally:
                wedge.set()
                second.stop()
        finally:
            wedge.set()
            first.stop()

    def test_journal_can_be_disabled(self, tmp_path):
        thread, client = _server(
            tmp_path, lambda *a: {"ok": True}, journal=False
        )
        try:
            doc = client.submit(**_spec_doc())
            assert client.wait(doc["job"])["state"] == "done"
            assert client.stats()["journal_appends"] == 0
            assert not (tmp_path / "cache" / "journal").exists()
        finally:
            thread.stop()


class TestDeadlines:
    def test_rejects_invalid_deadlines(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            for bad in (-1, 0, 10**9):
                with pytest.raises(ServeError) as excinfo:
                    client.submit(**_spec_doc(), deadline_s=bad)
                assert excinfo.value.status == 400
                assert excinfo.value.doc["path"] == "deadline_s"
        finally:
            thread.stop()

    def test_deadline_expires_in_queue(self, tmp_path):
        """A job whose budget lapses while queued never burns a lane."""
        release = threading.Event()
        runs = []

        def worker(job, cache_dir, checkpoint_every):
            runs.append(job.seed)
            release.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(tmp_path, worker)
        try:
            blocker = client.submit(**_spec_doc(seed=1))
            time.sleep(0.1)  # the lane picks the blocker up
            doomed = client.submit(**_spec_doc(seed=2), deadline_s=0.2)
            assert doomed["deadline_s"] == 0.2
            time.sleep(0.4)  # budget lapses while the lane is busy
            release.set()
            final = client.wait(doomed["job"], timeout=30)
            assert final["state"] == "failed"
            assert any(
                "deadline exceeded in queue" in cause
                for cause in final["causes"]
            )
            assert client.wait(blocker["job"])["state"] == "done"
            assert client.stats()["deadline_failures"] == 1
            assert runs == [1]  # the doomed job never started
        finally:
            release.set()
            thread.stop()

    def test_deadline_enforced_while_running(self, tmp_path):
        release = threading.Event()

        def worker(job, cache_dir, checkpoint_every):
            release.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(
            tmp_path, worker, watchdog_interval_s=0.1
        )
        try:
            doc = client.submit(**_spec_doc(), deadline_s=0.3)
            final = client.wait(doc["job"], timeout=30)
            assert final["state"] == "failed"
            assert any(
                "deadline exceeded while running" in cause
                for cause in final["causes"]
            )
            stats = client.stats()
            assert stats["deadline_failures"] == 1
            assert stats["lane_restarts"] == 1
        finally:
            release.set()
            thread.stop()


class TestWatchdog:
    def test_hung_lane_detected_and_restarted(self, tmp_path):
        hang = threading.Event()

        def worker(job, cache_dir, checkpoint_every):
            if job.seed == 1:
                # No spans while blocked: the heartbeat goes stale.
                hang.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(
            tmp_path, worker, lane_hang_s=0.3, watchdog_interval_s=0.1
        )
        try:
            doc = client.submit(**_spec_doc(seed=1))
            final = client.wait(doc["job"], timeout=30)
            assert final["state"] == "failed"
            assert any("hung" in cause for cause in final["causes"])
            assert client.stats()["watchdog_restarts"] == 1
            # The lane survives its abandoned thread: the next job runs
            # on the restarted lane's fresh farm.
            ok = client.submit(**_spec_doc(seed=2))
            assert client.wait(ok["job"], timeout=30)["state"] == "done"
        finally:
            hang.set()
            thread.stop()


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(failures=3, window_s=10.0, cooldown_s=0.05)
        breaker.record_failure("boom")
        breaker.record_failure("boom")
        assert not breaker.open
        breaker.record_failure("boom")
        assert breaker.open and breaker.trips == 1
        assert breaker.retry_after() >= 0
        time.sleep(0.06)
        assert not breaker.open  # cooldown lapsed: half-open
        breaker.record_success()
        assert breaker.cause is None
        assert breaker.doc()["recent_failures"] == 0

    def test_store_volume_errors_trip_instantly(self):
        breaker = CircuitBreaker(failures=100, window_s=10.0, cooldown_s=5.0)
        breaker.record_failure("write failed: No space left on device")
        assert breaker.open
        assert "store volume failing" in breaker.cause

    def test_degraded_mode_rejects_new_work_serves_old(self, tmp_path):
        thread, client = _server(
            tmp_path, lambda *a: {"ok": True}, breaker_cooldown_s=30.0
        )
        try:
            done = client.submit(**_spec_doc(seed=1))
            assert client.wait(done["job"])["state"] == "done"
            server = thread.server
            server._loop.call_soon_threadsafe(
                server.breaker.record_failure, "ENOSPC: no space left"
            )
            deadline = time.monotonic() + 10
            while not client.healthz()["degraded"]:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit(**_spec_doc(seed=2))
            assert excinfo.value.status == 503
            assert excinfo.value.doc["degraded"] is True
            assert excinfo.value.doc["retry_after_s"] > 0
            # Finished work stays reachable while degraded: the dedupe
            # path answers before the breaker gate.
            again = client.submit(**_spec_doc(seed=1))
            assert again["state"] == "done"
            assert client.stats()["rejected_degraded"] == 1
        finally:
            thread.stop()


class TestClientRetry:
    def test_submit_retrying_gives_up_after_max_wait(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServeClient("127.0.0.1", port, client_id="t")
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            client.submit_retrying(**_spec_doc(), max_wait=0.3)
        assert time.monotonic() - start < 5

    def test_submit_retrying_rides_out_a_restart(self, tmp_path):
        """Connection refused is retried until the server comes back."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        booted = {}

        def late_boot():
            time.sleep(0.4)
            booted["thread"] = ServerThread(
                ReproServer(
                    ServeConfig(
                        port=port, lanes=1,
                        cache_dir=str(tmp_path / "cache"),
                    ),
                    worker=lambda *a: {"ok": True},
                )
            ).start()

        boot_thread = threading.Thread(target=late_boot)
        boot_thread.start()
        client = ServeClient("127.0.0.1", port, client_id="t")
        try:
            doc = client.submit_retrying(**_spec_doc(), max_wait=30)
            assert doc["state"] in ("queued", "running", "done")
            assert client.wait(doc["job"], timeout=30)["state"] == "done"
        finally:
            boot_thread.join(timeout=30)
            if "thread" in booted:
                booted["thread"].stop()

    def test_draining_503_without_hint_is_not_retried(self, tmp_path):
        release = threading.Event()

        def worker(job, cache_dir, checkpoint_every):
            release.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(tmp_path, worker)
        try:
            client.submit(**_spec_doc(seed=1))
            time.sleep(0.1)  # lane picks it up; drain will wait on it
            client.shutdown()
            time.sleep(0.2)  # the drain task sets the flag on the loop
            start = time.monotonic()
            with pytest.raises(ServeError) as excinfo:
                client.submit_retrying(**_spec_doc(seed=2), max_wait=30)
            assert excinfo.value.status == 503
            assert time.monotonic() - start < 5  # no retry loop
        finally:
            release.set()
            thread.stop()

    def test_wait_ready_blocks_until_boot(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            assert client.wait_ready(10)["ok"] is True
        finally:
            thread.stop()


class TestEventReplayCursor:
    def test_resume_after_disconnect_is_gap_free(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            doc = client.submit(**_spec_doc())
            client.wait(doc["job"])
            events = list(client.events(doc["job"], timeout=60))
            assert [e["event"] for e in events] == [
                "queued", "started", "done"
            ]
            cursor = events[0]["seq"]
            resumed = list(
                client.events(doc["job"], timeout=60, after_seq=cursor)
            )
            assert [e["seq"] for e in resumed] == [
                e["seq"] for e in events[1:]
            ]
            # A cursor at the end replays nothing — just a clean close.
            assert list(
                client.events(
                    doc["job"], timeout=60, after_seq=events[-1]["seq"]
                )
            ) == []
        finally:
            thread.stop()
