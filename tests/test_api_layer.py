"""Tests for the API layer: commands, state machine, trace I/O, tracer."""

import numpy as np
import pytest

from repro.api.commands import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    GraphicsApi,
    SetState,
    SetUniform,
    UploadResource,
    is_state_call,
)
from repro.api.state import RenderState, StateMachine, StencilSide
from repro.api.trace import Frame, Trace, TraceMeta, load_trace, save_trace
from repro.api.tracer import ApiTracer
from repro.geometry.primitives import PrimitiveType
from repro.shader.library import build_fragment_program, build_vertex_program


class TestCommands:
    def test_draw_validation(self):
        with pytest.raises(ValueError):
            Draw("m", PrimitiveType.TRIANGLE_LIST, 0)
        with pytest.raises(ValueError):
            Draw("m", PrimitiveType.TRIANGLE_LIST, 3, first_index=-1)

    def test_bind_program_stage_validation(self):
        with pytest.raises(ValueError):
            BindProgram("geometry", "p")

    def test_upload_validation(self):
        with pytest.raises(ValueError):
            UploadResource("r", "shader", 10)

    def test_is_state_call(self):
        assert is_state_call(SetState("blend", "add"))
        assert is_state_call(Clear())
        assert not is_state_call(Draw("m", PrimitiveType.TRIANGLE_LIST, 3))

    def test_uniform_matrix_flattens(self):
        u = SetUniform.matrix("mvp", np.eye(4))
        assert len(u.value) == 16
        assert u.value[0] == 1.0 and u.value[1] == 0.0


class TestStateMachine:
    def test_defaults(self):
        state = RenderState()
        assert state.depth_func == "less" and state.blend == "replace"
        assert state.color_mask and state.cull == "back"

    def test_invalid_enum_values(self):
        with pytest.raises(ValueError):
            RenderState(depth_func="sometimes")
        with pytest.raises(ValueError):
            RenderState(blend="multiply_sub")
        with pytest.raises(ValueError):
            StencilSide(zfail="explode")

    def test_apply_set_state(self):
        machine = StateMachine()
        machine.apply(SetState("blend", "add"))
        assert machine.state.blend == "add"

    def test_apply_unknown_state_rejected(self):
        machine = StateMachine()
        with pytest.raises(ValueError):
            machine.apply(SetState("wireframe", True))

    def test_stencil_side_from_tuple(self):
        machine = StateMachine()
        machine.apply(SetState("stencil_back", ("keep", "incr_wrap", "keep")))
        assert machine.state.stencil_back.zfail == "incr_wrap"

    def test_texture_bindings_tracked(self):
        machine = StateMachine()
        machine.apply(BindTexture(0, "a"))
        machine.apply(BindTexture(2, "b"))
        assert machine.state.texture(0) == "a"
        assert machine.state.texture(2) == "b"
        machine.apply(BindTexture(0, None))
        assert machine.state.texture(0) is None

    def test_uniform_matrix_roundtrip(self):
        machine = StateMachine()
        m = np.arange(16, dtype=float).reshape(4, 4)
        machine.apply(SetUniform.matrix("mvp", m))
        assert np.allclose(machine.uniform_matrix("mvp"), m)
        assert machine.uniform_matrix("missing") is None

    def test_draw_does_not_change_state(self):
        machine = StateMachine()
        before = machine.state
        machine.apply(Draw("m", PrimitiveType.TRIANGLE_LIST, 3))
        assert machine.state is before


def small_trace() -> Trace:
    calls = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        BindTexture(0, "tex"),
        SetState("blend", "add"),
        SetState("stencil_front", StencilSide(zfail="decr_wrap")),
        SetUniform("mvp", tuple(float(i) for i in range(16))),
        UploadResource("mesh", "vertex", 1024),
        Draw("mesh", PrimitiveType.TRIANGLE_LIST, 30),
        Draw("mesh", PrimitiveType.TRIANGLE_STRIP, 12, first_index=3),
    ]
    meta = TraceMeta("test", GraphicsApi.OPENGL, 1, index_size_bytes=2)
    return Trace(meta, [Frame(0, calls)])


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(small_trace(), path)
        loaded = load_trace(path)
        assert loaded.meta.name == "test"
        assert loaded.meta.api is GraphicsApi.OPENGL
        original = list(small_trace().frames())[0].calls
        restored = list(loaded.frames())[0].calls
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert type(a) is type(b)
        draw = restored[-1]
        assert draw.primitive is PrimitiveType.TRIANGLE_STRIP
        assert draw.first_index == 3

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"frame": 0, "calls": []}\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_materialize(self):
        counter = {"n": 0}

        def gen():
            counter["n"] += 1
            yield Frame(0, [])

        trace = Trace(TraceMeta("t", GraphicsApi.OPENGL, 1), gen)
        materialized = trace.materialize()
        list(materialized.frames())
        list(materialized.frames())
        assert counter["n"] == 1  # generator consumed exactly once


class TestTracer:
    def make_programs(self):
        return {
            "vp": build_vertex_program("vp", 20),
            "fp": build_fragment_program("fp", 2, 10),
        }

    def test_frame_stats(self):
        tracer = ApiTracer(self.make_programs())
        stats = tracer.trace_stats(small_trace())
        frame = stats.frames[0]
        assert frame.batches == 2
        assert frame.indices == 42
        assert frame.index_bytes == 84
        assert frame.state_calls == 8
        assert frame.upload_bytes == 1024
        assert frame.primitives[PrimitiveType.TRIANGLE_LIST] == 10
        assert frame.primitives[PrimitiveType.TRIANGLE_STRIP] == 10

    def test_vertex_weighting(self):
        tracer = ApiTracer(self.make_programs())
        stats = tracer.trace_stats(small_trace())
        assert stats.avg_vertex_instructions == pytest.approx(20.0)

    def test_fragment_per_batch(self):
        tracer = ApiTracer(self.make_programs())
        stats = tracer.trace_stats(small_trace())
        assert stats.avg_fragment_instructions == pytest.approx(10.0)
        assert stats.avg_texture_instructions == pytest.approx(2.0)
        assert stats.alu_to_texture_ratio == pytest.approx(4.0)

    def test_primitive_share_sums_to_one(self):
        tracer = ApiTracer(self.make_programs())
        share = tracer.trace_stats(small_trace()).primitive_share
        assert sum(share.values()) == pytest.approx(1.0)

    def test_series_and_unknown_metric(self):
        tracer = ApiTracer(self.make_programs())
        stats = tracer.trace_stats(small_trace())
        assert stats.series("batches") == [2.0]
        with pytest.raises(KeyError):
            stats.series("frobs")

    def test_index_bandwidth(self):
        tracer = ApiTracer(self.make_programs())
        stats = tracer.trace_stats(small_trace())
        assert stats.index_bandwidth_bytes_per_s(100.0) == pytest.approx(8400.0)

    def test_unknown_programs_ignored(self):
        tracer = ApiTracer({})  # no registry: shader stats fall to zero
        stats = tracer.trace_stats(small_trace())
        assert stats.avg_vertex_instructions == 0.0
        assert stats.avg_fragment_instructions == 0.0
