"""Tests for the quad rasterizer."""

import numpy as np
import pytest

from repro.gpu.rasterizer import rasterize_triangle

W, H = 64, 64


def rast(xy, z=None, inv_w=None, uv=None, color=None, front=True):
    xy = np.asarray(xy, dtype=float)
    z = np.zeros(3) if z is None else np.asarray(z, float)
    inv_w = np.ones(3) if inv_w is None else np.asarray(inv_w, float)
    uv = np.zeros((3, 2)) if uv is None else np.asarray(uv, float)
    color = np.zeros((3, 4)) if color is None else np.asarray(color, float)
    return rasterize_triangle(xy, z, inv_w, uv, color, W, H, front=front)


def coverage_image(batches):
    img = np.zeros((H, W), int)
    for qb in batches:
        if qb is None:
            continue
        xs, ys = qb.pixel_coords()
        mask = qb.cover
        np.add.at(img, (ys[mask], xs[mask]), 1)
    return img


class TestCoverage:
    def test_axis_aligned_rectangle_exact(self):
        t1 = rast([(8, 8), (24, 8), (8, 16)])
        t2 = rast([(24, 8), (24, 16), (8, 16)])
        img = coverage_image([t1, t2])
        assert img.sum() == 16 * 8
        assert img.max() == 1

    def test_shared_edges_never_double_covered(self):
        rng = np.random.default_rng(7)
        for _ in range(60):
            a, b, c, d = rng.uniform(2, 62, size=(4, 2))
            cross = lambda p, q, r: (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (
                r[0] - p[0]
            )
            if cross(a, b, c) * cross(a, b, d) >= 0:
                continue
            img = coverage_image(
                [rast([a, b, c]), rast([b, a, d])]
            )
            assert img.max() <= 1

    def test_fragment_count_close_to_area(self):
        tri = [(5.0, 5.0), (45.0, 10.0), (12.0, 50.0)]
        qb = rast(tri)
        area = 0.5 * abs(
            (45 - 5) * (50 - 5) - (12 - 5) * (10 - 5)
        )
        assert qb.fragment_count == pytest.approx(area, rel=0.05)

    def test_degenerate_returns_none(self):
        assert rast([(0, 0), (10, 10), (20, 20)]) is None

    def test_offscreen_returns_none(self):
        assert rast([(-30, -30), (-20, -30), (-30, -20)]) is None

    def test_subpixel_triangle_may_miss_all_centers(self):
        qb = rast([(10.1, 10.1), (10.3, 10.1), (10.1, 10.3)])
        assert qb is None  # covers no pixel center

    def test_winding_independent_coverage(self):
        a = rast([(8, 8), (30, 8), (8, 30)])
        b = rast([(8, 8), (8, 30), (30, 8)])
        assert a.fragment_count == b.fragment_count


class TestQuads:
    def test_quad_alignment(self):
        qb = rast([(9, 9), (25, 9), (9, 25)])
        xs, ys = qb.pixel_coords()
        assert (xs[:, 0] % 2 == 0).all()
        assert (ys[:, 0] % 2 == 0).all()

    def test_complete_quads_interior(self):
        qb = rast([(4, 4), (60, 4), (4, 60)])
        assert 0.7 < qb.complete_quads / qb.quad_count <= 1.0

    def test_quad_efficiency_drops_for_slivers(self):
        big = rast([(4, 4), (60, 4), (4, 60)])
        sliver = rast([(4, 4), (60, 6), (4, 6)])
        assert (
            sliver.complete_quads / sliver.quad_count
            < big.complete_quads / big.quad_count
        )

    def test_select_subsets(self):
        qb = rast([(4, 4), (40, 4), (4, 40)])
        mask = np.zeros(qb.quad_count, dtype=bool)
        mask[:3] = True
        sub = qb.select(mask)
        assert sub.quad_count == 3
        assert sub.front == qb.front


class TestInterpolation:
    def test_depth_interpolation_linear(self):
        qb = rast([(0, 0), (63, 0), (0, 63)], z=[0.0, 1.0, 1.0])
        xs, ys = qb.pixel_coords()
        mask = qb.cover
        # Depth grows with x + y along the gradient defined by the vertices.
        lane = np.argmax(xs[mask.any(axis=1)][0])
        del lane
        assert qb.z[mask].min() >= 0.0 and qb.z[mask].max() <= 1.0
        near_origin = (xs < 2) & (ys < 2) & mask
        if near_origin.any():
            assert qb.z[near_origin].max() < 0.1

    def test_affine_uv_interpolation(self):
        qb = rast(
            [(0, 0), (64, 0), (0, 64)],
            uv=[(0, 0), (1, 0), (0, 1)],
        )
        xs, ys = qb.pixel_coords()
        mask = qb.cover
        expected_u = (xs[mask] + 0.5) / 64.0
        assert np.allclose(qb.uv[mask][:, 0], expected_u, atol=0.02)

    def test_perspective_correct_uv(self):
        """With unequal 1/w the interpolation must bend towards the near end."""
        qb = rast(
            [(0, 20), (63, 20), (0, 40)],
            inv_w=[1.0, 0.1, 1.0],
            uv=[(0, 0), (1, 0), (0, 0)],
        )
        xs, ys = qb.pixel_coords()
        mid = qb.cover & (np.abs(xs - 31) < 2) & (ys == 22)
        assert mid.any()
        # Affine would give ~0.5 at the horizontal midpoint;
        # perspective-correct is much smaller because the right vertex is
        # far away (small 1/w).
        assert qb.uv[mid][:, 0].mean() < 0.25

    def test_color_interpolation_range(self):
        colors = [(1, 0, 0, 1), (0, 1, 0, 1), (0, 0, 1, 1)]
        qb = rast([(4, 4), (40, 4), (4, 40)], color=colors)
        mask = qb.cover
        assert qb.color[mask].min() >= -1e-9
        assert qb.color[mask].max() <= 1.0 + 1e-9
        sums = qb.color[mask][:, :3].sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-6)  # barycentric partition
