"""Tests for clipping and face culling."""

import numpy as np
import pytest

from repro.gpu.clipper import clip_and_cull
from repro.util import mathutil as mu

W, H = 128, 96


def run_clip(points, tris, cull="back", mvp=None):
    points = np.asarray(points, dtype=np.float64)
    if mvp is None:
        mvp = mu.perspective(60, W / H, 0.1, 100) @ mu.look_at((0, 0, 5), (0, 0, 0))
    clip = mu.transform_points(mvp, points)
    uv = np.zeros((points.shape[0], 2))
    color = np.ones((points.shape[0], 4))
    return clip_and_cull(clip, np.asarray(tris), uv, color, W, H, cull=cull)


class TestTrivialReject:
    def test_visible_triangle_traversed(self):
        result = run_clip([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]])
        assert result.assembled == 1
        assert result.traversed == 1
        assert result.clipped == 0 and result.culled == 0

    def test_fully_behind_camera_clipped(self):
        result = run_clip([[0, 0, 10], [1, 0, 10], [0, 1, 10]], [[0, 1, 2]])
        assert result.clipped == 1 and result.traversed == 0

    def test_fully_offscreen_left_clipped(self):
        result = run_clip([[-50, 0, 0], [-49, 0, 0], [-50, 1, 0]], [[0, 1, 2]])
        assert result.clipped == 1

    def test_beyond_far_plane_clipped(self):
        result = run_clip([[0, 0, -200], [1, 0, -200], [0, 1, -200]], [[0, 1, 2]])
        assert result.clipped == 1


class TestCulling:
    def test_backface_culled(self):
        # Clockwise when viewed from +Z (the camera side).
        result = run_clip([[0, 0, 0], [0, 1, 0], [1, 0, 0]], [[0, 1, 2]])
        assert result.culled == 1 and result.traversed == 0

    def test_cull_front_mode(self):
        result = run_clip(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]], cull="front"
        )
        assert result.culled == 1

    def test_cull_none_keeps_both(self):
        points = [[0, 0, 0], [1, 0, 0], [0, 1, 0]]
        tris = [[0, 1, 2], [0, 2, 1]]
        result = run_clip(points, tris, cull="none")
        assert result.traversed == 2

    def test_degenerate_culled_even_with_cull_none(self):
        result = run_clip(
            [[0, 0, 0], [0, 0, 0], [1, 1, 0]], [[0, 1, 2]], cull="none"
        )
        assert result.culled == 1

    def test_unknown_cull_mode(self):
        with pytest.raises(ValueError):
            run_clip([[0, 0, 0], [1, 0, 0], [0, 1, 0]], [[0, 1, 2]], cull="diag")


class TestNearClip:
    def test_crossing_near_plane_splits_but_counts_once(self):
        # Two vertices behind the camera: geometric clip, still 1 traversed
        # (cull disabled so facing does not interfere with the count).
        result = run_clip(
            [[0, -1, -3], [2, -1, 20], [-2, -1, 20]], [[0, 1, 2]], cull="none"
        )
        assert result.assembled == 1
        assert result.traversed == 1
        assert result.triangles.count >= 1
        # All emitted geometry is in front of the near plane.
        assert (result.triangles.z >= 0).all()

    def test_near_clip_preserves_screen_positions_finite(self):
        result = run_clip([[0, 0, 4.95], [1, 0, -10], [-1, 0, -10]], [[0, 1, 2]])
        assert np.isfinite(result.triangles.xy).all()


class TestAccounting:
    def test_percentages_partition(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(-30, 30, size=(60, 3))
        tris = rng.integers(0, 60, size=(80, 3))
        result = run_clip(points, tris, cull="back")
        assert (
            result.clipped + result.culled + result.traversed == result.assembled
        )

    def test_empty_input(self):
        result = run_clip(np.zeros((3, 3)), np.empty((0, 3), dtype=int))
        assert result.assembled == 0
        assert result.triangles.count == 0
