"""Tests for the set-associative cache model."""

import numpy as np
import pytest

from repro.gpu.caches import Cache
from repro.gpu.config import CacheConfig


def make_cache(size=1024, line=64, ways=4):
    return Cache(CacheConfig(size, line, ways, "test"))


class TestBasics:
    def test_config_geometry(self):
        config = CacheConfig(16 * 1024, 256, 64, "z")
        assert config.sets == 1
        assert config.describe() == "64w x 256B"
        config = CacheConfig(16 * 1024, 64, 16, "l1")
        assert config.sets == 16
        assert config.describe() == "16w x 16s x 64B"

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 4)

    def test_cold_miss_then_hit(self):
        cache = make_cache()
        hit, _ = cache.access(0)
        assert not hit
        hit, _ = cache.access(32)  # same 64B line
        assert hit
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = make_cache(size=256, line=64, ways=4)  # 4 lines, 1 set
        for addr in (0, 64, 128, 192):
            cache.access(addr)
        cache.access(0)  # touch 0: now 64 is LRU
        cache.access(256)  # evicts line 1 (addr 64)
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_dirty_eviction_reported(self):
        cache = make_cache(size=128, line=64, ways=2)
        cache.access(0, write=True)
        cache.access(64)
        _, evicted = cache.access(128)
        assert evicted == 0  # dirty line 0 written back

    def test_clean_eviction_silent(self):
        cache = make_cache(size=128, line=64, ways=2)
        cache.access(0)
        cache.access(64)
        _, evicted = cache.access(128)
        assert evicted is None

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=128, line=64, ways=2)
        cache.access(0)
        cache.access(0, write=True)
        cache.access(64)
        _, evicted = cache.access(128)
        assert evicted == 0

    def test_sets_isolate_addresses(self):
        cache = make_cache(size=256, line=64, ways=1)  # 4 sets, direct mapped
        cache.access(0)
        cache.access(64)  # different set: no conflict
        assert cache.contains(0) and cache.contains(64)
        cache.access(256)  # same set as 0: evicts it
        assert not cache.contains(0)

    def test_flush_returns_dirty_only(self):
        cache = make_cache(size=256, line=64, ways=4)
        cache.access(0, write=True)
        cache.access(64)
        dirty = cache.flush()
        assert dirty == [0]
        assert not cache.contains(0)


class TestStreams:
    def test_stream_collapses_duplicates(self):
        cache = make_cache()
        lines = np.array([5, 5, 5, 6, 6, 5])
        result = cache.access_stream(lines)
        assert result.misses == 2
        assert cache.hits == 4  # three duplicate refs + final 5 hit

    def test_stream_reports_miss_lines(self):
        cache = make_cache()
        result = cache.access_stream(np.array([1, 1, 2, 3, 3]))
        assert result.miss_lines == [1, 2, 3]

    def test_empty_stream(self):
        cache = make_cache()
        result = cache.access_stream(np.array([]))
        assert result.misses == 0 and not result.miss_lines

    def test_runs_or_write_flags(self):
        cache = make_cache(size=128, line=64, ways=2)
        lines = np.array([0, 0, 1])
        writes = np.array([False, True, False])
        cache.access_runs(lines, writes)
        # Line 0's run had a write: it must be dirty.
        result = cache.access_runs(np.array([2, 3]), np.array([False, False]))
        assert 0 in result.dirty_evictions

    def test_hit_rate_property(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == 0.5
        cache.reset_counters()
        assert cache.hit_rate == 0.0
