"""Tests for the per-draw profiler."""

import pytest

from repro.gpu.profiler import DrawProfiler, DrawRecord, profile_workload
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def profiles():
    workload = build_workload("Doom3/trdemo2", sim=True)
    return profile_workload(workload, frames=2), workload


class TestRecords:
    def test_one_profile_per_frame(self, profiles):
        frames, _ = profiles
        assert [p.frame for p in frames] == [0, 1]

    def test_draw_counts_match_trace(self, profiles):
        frames, workload = profiles
        from repro.api.commands import Draw

        trace_frames = list(workload.trace(frames=2).frames())
        for profile, frame in zip(frames, trace_frames):
            draws = sum(1 for c in frame.calls if isinstance(c, Draw))
            assert len(profile.draws) == draws

    def test_per_draw_totals_sum_to_frame_totals(self, profiles):
        frames, workload = profiles
        sim = workload.simulator()
        result = sim.run_trace(workload.trace(frames=2))
        profiled_frags = sum(p.totals("fragments_rasterized") for p in frames)
        assert profiled_frags == result.stats.fragments_rasterized
        profiled_tris = sum(p.totals("triangles_traversed") for p in frames)
        assert profiled_tris == result.stats.triangles_traversed

    def test_heaviest_sorted(self, profiles):
        frames, _ = profiles
        top = frames[1].heaviest(5, by="fragments_rasterized")
        values = [d.fragments_rasterized for d in top]
        assert values == sorted(values, reverse=True)

    def test_pass_kinds_present(self, profiles):
        frames, _ = profiles
        kinds = {d.pass_kind for d in frames[1].draws}
        assert kinds == {"depth prepass", "shadow volume", "shading"}

    def test_pass_kind_heuristic(self):
        volume = DrawRecord(0, 0, "x.vol.r0k1l2", "vp", None)
        assert volume.pass_kind == "shadow volume"
        prepass = DrawRecord(0, 0, "x.room", "vp", None)
        assert prepass.pass_kind == "depth prepass"
        shading = DrawRecord(0, 0, "x.room", "vp", "fp")
        assert shading.pass_kind == "shading"

    def test_detach_restores_simulator(self):
        workload = build_workload("UT2004/Primeval", sim=True)
        sim = workload.simulator()
        original = sim._process_draw
        with DrawProfiler(sim) as profiler:
            assert sim._process_draw != original
        assert sim._process_draw == original
        del profiler

    def test_memory_attribution_positive(self, profiles):
        frames, _ = profiles
        assert frames[1].totals("memory_bytes") > 0
        assert all(d.memory_bytes >= 0 for d in frames[1].draws)
