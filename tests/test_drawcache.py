"""Tests for draw-level incremental simulation (:mod:`repro.farm.drawcache`).

The contract under test:

* draw/frame keys are stable across processes and ``--jobs`` widths, and
  sensitive to everything that changes a frame's simulation (bound state,
  seed, GPU config) while ignoring demo position and frame budget;
* incremental replay — cold or warm — is bit-identical to full
  re-simulation, on every engine family;
* stale records (per-draw key mismatch) are invalidated, corrupt records
  and sidecars are quarantined, and the frame is re-simulated either way.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import subprocess
import sys

import pytest

from repro.farm import ArtifactStore, Farm, sim_job
from repro.farm.chaos import results_equal
from repro.farm.drawcache import (
    DrawCache,
    IncrementalReport,
    frame_keys,
    job_drawcache,
    opens_with_full_clear,
    run_trace_incremental,
)
from repro.observe import metrics as obs_metrics
from repro.workloads import build_workload

WORKLOAD = "UT2004/Primeval"

#: One representative workload per engine family (Table I).
ENGINES = (
    "UT2004/Primeval",        # Unreal 2.5
    "Doom3/trdemo2",          # Doom3
    "Riddick/MainFrame",      # Starbreeze
    "FEAR/built-in demo",     # Monolith
    "Half Life 2 LC/built-in",  # Valve Source
    "Oblivion/Anvil Castle",  # Gamebryo
)

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def _incremental_run(name: str, frames: int, store, keep_images: int = 0):
    """One incremental replay against ``store``; returns (result, cache)."""
    workload = build_workload(name, sim=True)
    sim = workload.simulator()
    cache = job_drawcache(sim_job(name, frames), store)
    result = run_trace_incremental(
        sim,
        workload.trace(frames=frames),
        cache,
        max_frames=frames,
        keep_images=keep_images,
    )
    return result, cache


def _full_run(name: str, frames: int, keep_images: int = 0):
    workload = build_workload(name, sim=True)
    sim = workload.simulator()
    return sim.run_trace(
        workload.trace(frames=frames),
        max_frames=frames,
        keep_images=keep_images,
    )


# -- key stability ----------------------------------------------------------


class TestKeys:
    def test_base_key_ignores_frame_budget_and_slice(self):
        assert (
            sim_job(WORKLOAD, 2).draw_base_key()
            == sim_job(WORKLOAD, 6).draw_base_key()
            == sim_job(WORKLOAD, 2).shard(2)[1].draw_base_key()
        )

    def test_base_key_changes_with_seed_and_config(self):
        from repro.gpu.config import GpuConfig

        base = sim_job(WORKLOAD, 2).draw_base_key()
        assert base != sim_job(WORKLOAD, 2, seed=123).draw_base_key()
        assert (
            base
            != sim_job(
                WORKLOAD, 2, config=GpuConfig(width=64, height=48)
            ).draw_base_key()
        )

    def test_frame_key_sensitive_to_bound_state(self):
        """Mutated bound state at frame entry must change every key."""
        workload = build_workload(WORKLOAD, sim=True)
        sim = workload.simulator()
        frame = next(iter(workload.trace(frames=1).frames()))
        base = sim_job(WORKLOAD, 1).draw_base_key()
        key_a, draws_a = frame_keys(base, sim.machine, frame)
        sim.machine.uniforms["__mutated"] = (1.0, 2.0, 3.0, 4.0)
        key_b, draws_b = frame_keys(base, sim.machine, frame)
        assert key_a != key_b
        assert draws_a != draws_b
        assert len(draws_a) == len(draws_b) > 0

    def test_keys_stable_across_processes(self, tmp_path):
        """A child interpreter derives the same base key and the same
        per-frame record set (file names are frame keys)."""
        code = (
            "import json, sys\n"
            "from repro.farm import ArtifactStore, sim_job\n"
            "from repro.farm.drawcache import job_drawcache, "
            "run_trace_incremental\n"
            "from repro.workloads import build_workload\n"
            f"store = ArtifactStore({str(tmp_path / 'child')!r})\n"
            f"job = sim_job({WORKLOAD!r}, 2)\n"
            f"wl = build_workload({WORKLOAD!r}, sim=True)\n"
            "sim = wl.simulator()\n"
            "run_trace_incremental(sim, wl.trace(frames=2), "
            "job_drawcache(job, store), max_frames=2)\n"
            "print(json.dumps({'base': job.draw_base_key(), 'records': "
            "sorted(p.stem for p in store.drawcache_dir.glob('*.pkl'))}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        child = json.loads(proc.stdout.strip().splitlines()[-1])

        store = ArtifactStore(tmp_path / "parent")
        _incremental_run(WORKLOAD, 2, store)
        assert child["base"] == sim_job(WORKLOAD, 2).draw_base_key()
        assert child["records"] == sorted(
            p.stem for p in store.drawcache_dir.glob("*.pkl")
        )
        assert len(child["records"]) == 2

    def test_keys_stable_across_jobs_widths(self, tmp_path):
        """Serial and frame-sharded farms chain identical frame keys and
        produce bit-identical results."""
        job = sim_job(WORKLOAD, 2)
        with Farm(
            store=ArtifactStore(tmp_path / "serial"),
            jobs=1,
            shard_frames=0,
            incremental=True,
        ) as farm:
            serial = farm.run_one(job)
        with Farm(
            store=ArtifactStore(tmp_path / "sharded"),
            jobs=2,
            shard_frames=2,
            incremental=True,
        ) as farm:
            sharded = farm.run_one(job)
        assert results_equal(serial, sharded)
        stems = lambda sub: sorted(  # noqa: E731
            p.stem
            for p in ArtifactStore(tmp_path / sub).drawcache_dir.glob("*.pkl")
        )
        assert stems("serial") == stems("sharded")
        assert len(stems("serial")) == 2


# -- reuse bit-identity -----------------------------------------------------


class TestReuseBitIdentity:
    @pytest.mark.parametrize("name", ENGINES)
    def test_cold_and_warm_match_full(self, name, tmp_path):
        store = ArtifactStore(tmp_path)
        full = _full_run(name, 2)
        cold, cold_cache = _incremental_run(name, 2, store)
        warm, warm_cache = _incremental_run(name, 2, store)
        assert results_equal(full, cold)
        assert results_equal(full, warm)
        assert (cold_cache.hits, cold_cache.misses) == (0, 2)
        assert (warm_cache.hits, warm_cache.misses) == (2, 0)
        assert warm_cache.hit_rate == 1.0

    def test_reuse_preserves_images(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = _full_run(WORKLOAD, 2, keep_images=2)
        cold, _ = _incremental_run(WORKLOAD, 2, store, keep_images=2)
        warm, warm_cache = _incremental_run(WORKLOAD, 2, store, keep_images=2)
        assert results_equal(full, cold)
        assert results_equal(full, warm)
        assert warm_cache.hits == 2

    def test_record_without_image_is_resimulated_when_needed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _incremental_run(WORKLOAD, 1, store, keep_images=0)
        full = _full_run(WORKLOAD, 1, keep_images=1)
        warm, warm_cache = _incremental_run(WORKLOAD, 1, store, keep_images=1)
        assert results_equal(full, warm)
        assert warm_cache.hits == 0  # image missing -> cannot reuse

    def test_report_and_metrics(self, tmp_path):
        obs_metrics.reset()
        store = ArtifactStore(tmp_path)
        _incremental_run(WORKLOAD, 2, store)
        workload = build_workload(WORKLOAD, sim=True)
        report = IncrementalReport()
        run_trace_incremental(
            workload.simulator(),
            workload.trace(frames=2),
            job_drawcache(sim_job(WORKLOAD, 2), store),
            max_frames=2,
            report=report,
        )
        assert report.frames_reused == 2
        assert report.frames_simulated == 0
        assert report.draws_reused > 0
        registry = obs_metrics.registry()
        assert registry.counter("drawcache.hits").value >= 2
        assert registry.counter("drawcache.misses").value >= 2


# -- invalidation and quarantine --------------------------------------------


class TestInvalidation:
    def _tamper_draw_keys(self, store) -> pathlib.Path:
        """Make one record stale-but-checksum-valid (mutated bound state)."""
        import hashlib

        target = sorted(store.drawcache_dir.glob("*.pkl"))[0]
        record = pickle.loads(target.read_bytes())
        record.draw_keys = tuple("0" * 24 for _ in record.draw_keys)
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        target.write_bytes(blob)
        meta_path = target.with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["sha256"] = hashlib.sha256(blob).hexdigest()
        meta_path.write_text(json.dumps(meta))
        return target

    def test_stale_record_invalidated_and_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = _full_run(WORKLOAD, 1)
        _incremental_run(WORKLOAD, 1, store)
        target = self._tamper_draw_keys(store)
        warm, cache = _incremental_run(WORKLOAD, 1, store)
        assert results_equal(full, warm)
        assert cache.invalidations == 1
        assert (cache.hits, cache.misses) == (0, 1)
        assert any(
            p.name == target.name for p in store.quarantined_files()
        )

    def test_truncated_record_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        full = _full_run(WORKLOAD, 1)
        _incremental_run(WORKLOAD, 1, store)
        target = sorted(store.drawcache_dir.glob("*.pkl"))[0]
        target.write_bytes(target.read_bytes()[:32])
        warm, cache = _incremental_run(WORKLOAD, 1, store)
        assert results_equal(full, warm)
        assert cache.invalidations == 1
        assert any(
            p.name == target.name for p in store.quarantined_files()
        )

    def test_truncated_sidecar_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _incremental_run(WORKLOAD, 1, store)
        sidecar = sorted(store.drawcache_dir.glob("*.json"))[0]
        sidecar.write_text(sidecar.read_text()[:10])
        cache = job_drawcache(sim_job(WORKLOAD, 1), store)
        assert cache.load(sidecar.stem) is None
        assert cache.invalidations == 1
        assert store.quarantined >= 1

    def test_base_key_scopes_lookups(self, tmp_path):
        """A record saved under another base fingerprint never matches."""
        store = ArtifactStore(tmp_path)
        _, cold_cache = _incremental_run(WORKLOAD, 1, store)
        frame_key = sorted(store.drawcache_dir.glob("*.pkl"))[0].stem
        foreign = DrawCache(store, "f" * 24)
        assert foreign.load(frame_key) is None
        assert foreign.invalidations == 1

    def test_memory_only_cache_reuses_in_process(self):
        workload = build_workload(WORKLOAD, sim=True)
        cache = DrawCache(None, sim_job(WORKLOAD, 1).draw_base_key())
        full = _full_run(WORKLOAD, 1)
        first = run_trace_incremental(
            workload.simulator(),
            workload.trace(frames=1),
            cache,
            max_frames=1,
        )
        second = run_trace_incremental(
            workload.simulator(),
            workload.trace(frames=1),
            cache,
            max_frames=1,
        )
        assert results_equal(full, first)
        assert results_equal(full, second)
        assert (cache.hits, cache.misses) == (1, 1)


# -- structural helpers ------------------------------------------------------


class TestStructure:
    def test_generated_frames_open_with_full_clear(self):
        workload = build_workload(WORKLOAD, sim=True)
        for frame in workload.trace(frames=2).frames():
            assert opens_with_full_clear(frame)

    def test_client_and_server_protocol_versions_locked(self):
        from repro.serve.client import PROTOCOL_VERSION
        from repro.serve.protocol import VERSION

        assert PROTOCOL_VERSION == VERSION
