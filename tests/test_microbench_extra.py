"""Extra microbenchmark and perf-model behaviour tests."""

import pytest
from dataclasses import replace

from repro.gpu.config import GpuConfig
from repro.microbench import fill_rate, texture_rate, zstencil_rate


class TestMachineRateSensitivity:
    """The estimates must respond to the Table II machine parameters."""

    def test_texture_rate_scales_with_sampler_width(self):
        narrow = texture_rate(GpuConfig(width=128, height=96, bilinears_per_cycle=8))
        wide = texture_rate(GpuConfig(width=128, height=96, bilinears_per_cycle=32))
        assert narrow.cycles_per_frame > wide.cycles_per_frame

    def test_fill_rate_memory_bound_until_bus_widens(self):
        config = GpuConfig(width=128, height=96)
        slow_bus = fill_rate(replace(config, memory_bytes_per_cycle=16))
        fast_bus = fill_rate(replace(config, memory_bytes_per_cycle=512))
        assert slow_bus.bottleneck == "memory"
        assert fast_bus.cycles_per_frame < slow_bus.cycles_per_frame

    def test_layers_scale_events_linearly(self):
        config = GpuConfig(width=128, height=96)
        two = fill_rate(config, layers=2)
        four = fill_rate(config, layers=4)
        assert four.events == 2 * two.events

    def test_zstencil_hz_still_counts_near_layer(self):
        config = GpuConfig(width=64, height=64)
        result = zstencil_rate(config, layers=3)
        # The near full-screen layer always reaches the Z stage.
        assert result.events >= 64 * 64

    def test_events_per_cycle_zero_guard(self):
        from repro.microbench import MicrobenchResult

        r = MicrobenchResult("x", "m", 10, 0.0, "memory")
        assert r.events_per_cycle == 0.0
