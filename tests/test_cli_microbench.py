"""Tests for the CLI and the GPUBench-style microbenchmarks."""

import pathlib

import pytest

from repro.cli import main
from repro.gpu.config import GpuConfig
from repro.microbench import (
    ALL_MICROBENCHES,
    fill_rate,
    geometry_rate,
    run_all,
    texture_rate,
    zstencil_rate,
)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Doom3/trdemo2" in out
        assert "Oblivion/Anvil Castle" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "UT2004/Primeval", "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "indices/batch" in out
        assert "ALU:TEX" in out

    def test_simulate_with_ppm(self, tmp_path, capsys):
        ppm = tmp_path / "frame.ppm"
        assert (
            main(["simulate", "UT2004/Primeval", "--frames", "1",
                  "--ppm", str(ppm)])
            == 0
        )
        assert ppm.exists()
        out = capsys.readouterr().out
        assert "overdraw (raster)" in out

    def test_trace_replay_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert (
            main(["trace", "Quake4/demo4", str(trace_path), "--frames", "1",
                  "--sim-profile"])
            == 0
        )
        assert trace_path.exists()
        assert main(["replay", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 frames" in out

    def test_tables_subset(self, tmp_path, capsys):
        assert (
            main(["tables", "--out-dir", str(tmp_path), "--only", "table2",
                  "table6"])
            == 0
        )
        assert (tmp_path / "table2.txt").exists()
        assert (tmp_path / "table6.txt").exists()

    def test_tables_unknown_name(self, tmp_path):
        assert (
            main(["tables", "--out-dir", str(tmp_path), "--only", "table99"])
            == 2
        )

    def test_figures_subset(self, tmp_path):
        assert (
            main(["figures", "--out-dir", str(tmp_path), "--only", "figure4"])
            == 0
        )
        assert (tmp_path / "figure4.txt").exists()
        assert (tmp_path / "figure4.csv").exists()


class TestMicrobench:
    def test_registry(self):
        assert set(ALL_MICROBENCHES) == {
            "fill_rate", "texture_rate", "geometry_rate", "zstencil_rate",
        }

    def test_fill_rate_counts_layers(self):
        config = GpuConfig(width=128, height=96)
        result = fill_rate(config, layers=5)
        assert result.events == 128 * 96 * 5
        assert result.cycles_per_frame > 0

    def test_texture_rate_saturates_sampler(self):
        config = GpuConfig(width=128, height=96)
        result = texture_rate(config, layers=2, textures=4)
        # Bilinear-filtered full-screen multitexture: the texture unit is
        # the bottleneck and runs at its Table II rate.
        assert result.bottleneck == "texture"
        assert result.events_per_cycle == pytest.approx(
            config.bilinears_per_cycle, rel=0.01
        )

    def test_geometry_rate_counts_triangles(self):
        config = GpuConfig(width=128, height=96)
        result = geometry_rate(config, cells=32)
        assert result.events == 32 * 32 * 2

    def test_zstencil_rate_rejects_layers(self):
        config = GpuConfig(width=128, height=96)
        result = zstencil_rate(config, layers=6)
        assert result.events >= 128 * 96  # at least the near layer

    def test_run_all(self):
        results = run_all(GpuConfig(width=64, height=64))
        assert len(results) == 4
        assert all(r.cycles_per_frame > 0 for r in results)
