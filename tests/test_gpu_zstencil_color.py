"""Tests for the Z/stencil and color stages."""

import numpy as np
import pytest

from repro.api.state import RenderState, StencilSide
from repro.gpu.color import ColorStage
from repro.gpu.config import GpuConfig
from repro.gpu.framebuffer import BlockState, Framebuffer
from repro.gpu.memory import MemoryController
from repro.gpu.rasterizer import QuadBatch
from repro.gpu.stats import MemClient
from repro.gpu.zstencil import ZStencilStage


def make_stage():
    config = GpuConfig(width=64, height=64)
    fb = Framebuffer(64, 64)
    mem = MemoryController()
    return ZStencilStage(config, fb, mem), fb, mem


def quad_batch(qx, qy, z, cover=None, front=True):
    n = len(qx)
    cover = np.ones((n, 4), bool) if cover is None else cover
    return QuadBatch(
        qx=np.asarray(qx),
        qy=np.asarray(qy),
        cover=cover,
        z=np.asarray(z, float),
        uv=np.zeros((n, 4, 2)),
        color=np.zeros((n, 4, 4)),
        front=front,
    )


class TestDepth:
    def test_less_pass_and_write(self):
        stage, fb, _ = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        result = stage.process(qb, RenderState(), qb.cover)
        assert result.pass_mask.all()
        assert (fb.z[0:2, 0:2] == 0.5).all()

    def test_less_fail_after_nearer_write(self):
        stage, fb, _ = make_stage()
        near = quad_batch([0], [0], [[0.3] * 4])
        far = quad_batch([0], [0], [[0.7] * 4])
        stage.process(near, RenderState(), near.cover)
        result = stage.process(far, RenderState(), far.cover)
        assert not result.pass_mask.any()
        assert (fb.z[0:2, 0:2] == 0.3).all()

    def test_equal_passes_rewrite(self):
        stage, fb, _ = make_stage()
        qb = quad_batch([0], [0], [[0.4] * 4])
        stage.process(qb, RenderState(), qb.cover)
        state = RenderState(depth_func="equal", depth_write=False)
        result = stage.process(qb, state, qb.cover)
        assert result.pass_mask.all()

    def test_depth_write_off_preserves_buffer(self):
        stage, fb, _ = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        stage.process(qb, RenderState(depth_write=False), qb.cover)
        assert (fb.z[0:2, 0:2] == 1.0).all()

    def test_depth_test_disabled_passes_everything(self):
        stage, fb, _ = make_stage()
        near = quad_batch([0], [0], [[0.3] * 4])
        stage.process(near, RenderState(), near.cover)
        far = quad_batch([0], [0], [[0.9] * 4])
        result = stage.process(far, RenderState(depth_test=False), far.cover)
        assert result.pass_mask.all()

    def test_never_and_always(self):
        stage, _, _ = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        assert not stage.process(
            qb, RenderState(depth_func="never"), qb.cover
        ).pass_mask.any()
        assert stage.process(
            qb, RenderState(depth_func="always"), qb.cover
        ).pass_mask.all()


class TestStencil:
    def zfail_state(self, front_op="keep", back_op="keep") -> RenderState:
        return RenderState(
            depth_write=False,
            stencil_test=True,
            stencil_func="always",
            stencil_front=StencilSide(zfail=front_op),
            stencil_back=StencilSide(zfail=back_op),
            cull="none",
        )

    def test_zfail_increments_back_faces(self):
        stage, fb, _ = make_stage()
        near = quad_batch([0], [0], [[0.3] * 4])
        stage.process(near, RenderState(), near.cover)
        # A back-facing volume quad behind the scene: z-fail -> incr.
        volume = quad_batch([0], [0], [[0.8] * 4], front=False)
        stage.process(volume, self.zfail_state(back_op="incr_wrap"), volume.cover)
        assert (fb.stencil[0:2, 0:2] == 1).all()

    def test_zfail_balanced_pair_cancels(self):
        """Front+back volume faces behind geometry leave stencil at zero."""
        stage, fb, _ = make_stage()
        near = quad_batch([0], [0], [[0.3] * 4])
        stage.process(near, RenderState(), near.cover)
        back = quad_batch([0], [0], [[0.8] * 4], front=False)
        front = quad_batch([0], [0], [[0.7] * 4], front=True)
        state = self.zfail_state(front_op="decr_wrap", back_op="incr_wrap")
        stage.process(back, state, back.cover)
        stage.process(front, state, front.cover)
        assert (fb.stencil[0:2, 0:2] == 0).all()

    def test_wrap_semantics(self):
        stage, fb, _ = make_stage()
        near = quad_batch([0], [0], [[0.3] * 4])
        stage.process(near, RenderState(), near.cover)
        volume = quad_batch([0], [0], [[0.9] * 4], front=True)
        stage.process(volume, self.zfail_state(front_op="decr_wrap"), volume.cover)
        assert (fb.stencil[0:2, 0:2] == 255).all()

    def test_stencil_equal_gate(self):
        stage, fb, _ = make_stage()
        fb.stencil[0:2, 0:2] = 1  # shadowed
        qb = quad_batch([0, 1], [0, 0], [[0.5] * 4, [0.5] * 4])
        state = RenderState(
            stencil_test=True, stencil_func="equal", stencil_ref=0
        )
        result = stage.process(qb, state, qb.cover)
        assert not result.pass_mask[0].any()  # shadowed quad blocked
        assert result.pass_mask[1].all()

    def test_replace_and_zero_ops(self):
        stage, fb, _ = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        state = RenderState(
            stencil_test=True,
            stencil_func="always",
            stencil_ref=7,
            stencil_front=StencilSide(zpass="replace"),
        )
        stage.process(qb, state, qb.cover)
        assert (fb.stencil[0:2, 0:2] == 7).all()


class TestZSCacheTraffic:
    def test_fast_clear_blocks_cost_nothing(self):
        stage, fb, mem = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        stage.process(qb, RenderState(), qb.cover)
        assert mem.reads[MemClient.ZSTENCIL] == 0  # cleared block, no fill

    def test_eviction_writes_back_compressed_planar(self):
        config = GpuConfig(width=64, height=64).with_scaled_caches(
            2 / 64, include_texture=False
        )  # tiny 2-line z cache to force evictions
        fb = Framebuffer(64, 64)
        mem = MemoryController()
        stage = ZStencilStage(config, fb, mem)
        # Write planar z into several blocks; evictions must be half-lines.
        for bx in range(4):
            qb = quad_batch(
                [bx * 4], [0], [[0.5] * 4]
            )
            stage.process(qb, RenderState(), qb.cover)
        assert mem.writes[MemClient.ZSTENCIL] > 0
        assert mem.writes[MemClient.ZSTENCIL] % 128 == 0

    def test_update_hz_tightens(self):
        stage, fb, _ = make_stage()
        qb = quad_batch([0], [0], [[0.5] * 4])
        result = stage.process(qb, RenderState(), qb.cover)
        stage.update_hz(qb, result.wrote)
        # Block still has z=1 pixels outside the quad.
        assert fb.hz_max[0, 0] == 1.0
        # Fill the whole block: HZ must drop to the new max.
        for qx in range(4):
            for qy in range(4):
                q = quad_batch([qx], [qy], [[0.5] * 4])
                r = stage.process(q, RenderState(), q.cover)
                stage.update_hz(q, r.wrote)
        assert fb.hz_max[0, 0] == pytest.approx(0.5)


class TestColorStage:
    def make_color(self):
        config = GpuConfig(width=64, height=64)
        fb = Framebuffer(64, 64)
        mem = MemoryController()
        return ColorStage(config, fb, mem), fb, mem

    def lanes(self, qx=0, qy=0):
        xs = np.array([[0, 1, 0, 1]]) + qx * 2
        ys = np.array([[0, 0, 1, 1]]) + qy * 2
        return xs, ys

    def test_replace_write(self):
        stage, fb, _ = self.make_color()
        xs, ys = self.lanes()
        colors = np.full((1, 4, 4), 0.25)
        stage.process(xs, ys, np.array([0]), np.array([0]), colors,
                      np.ones((1, 4), bool), "replace")
        assert (fb.color[0:2, 0:2] == 0.25).all()

    def test_add_saturates(self):
        stage, fb, _ = self.make_color()
        xs, ys = self.lanes()
        colors = np.full((1, 4, 4), 0.7)
        mask = np.ones((1, 4), bool)
        stage.process(xs, ys, np.array([0]), np.array([0]), colors, mask, "add")
        stage.process(xs, ys, np.array([0]), np.array([0]), colors, mask, "add")
        assert (fb.color[0:2, 0:2] == 1.0).all()

    def test_alpha_blend(self):
        stage, fb, _ = self.make_color()
        fb.color[:] = 0.0
        xs, ys = self.lanes()
        colors = np.zeros((1, 4, 4))
        colors[..., 0] = 1.0
        colors[..., 3] = 0.5
        stage.process(xs, ys, np.array([0]), np.array([0]), colors,
                      np.ones((1, 4), bool), "alpha")
        assert fb.color[0, 0, 0] == pytest.approx(0.5)

    def test_masked_lanes_untouched(self):
        stage, fb, _ = self.make_color()
        xs, ys = self.lanes()
        colors = np.full((1, 4, 4), 0.9)
        mask = np.array([[True, False, False, False]])
        stage.process(xs, ys, np.array([0]), np.array([0]), colors, mask, "replace")
        assert fb.color[0, 0, 0] == 0.9
        assert fb.color[0, 1, 0] == 0.0

    def test_flush_writes_back_uniform_compressed(self):
        stage, fb, mem = self.make_color()
        xs, ys = self.lanes()
        colors = np.full((1, 4, 4), 0.25)
        stage.process(xs, ys, np.array([0]), np.array([0]), colors,
                      np.ones((1, 4), bool), "replace")
        fb.color[0:8, 0:8] = 0.25  # make the whole block uniform
        stage.flush()
        assert mem.writes[MemClient.COLOR] == 128  # half a 256B line

    def test_flush_full_line_when_varied(self):
        stage, fb, mem = self.make_color()
        xs, ys = self.lanes()
        colors = np.random.default_rng(0).random((1, 4, 4))
        stage.process(xs, ys, np.array([0]), np.array([0]), colors,
                      np.ones((1, 4), bool), "replace")
        stage.flush()
        assert mem.writes[MemClient.COLOR] == 256
