"""Tests for texture resources, filtering, and the cache hierarchy."""

import numpy as np
import pytest

from repro.gpu.config import GpuConfig
from repro.gpu.memory import MemoryController
from repro.gpu.stats import MemClient
from repro.gpu.texture import (
    TextureFilter,
    TextureFormat,
    TextureResource,
    TextureUnit,
)


def checker(size=64):
    img = np.zeros((size, size, 4), np.float32)
    img[::2, ::2] = 1.0
    img[1::2, 1::2] = 1.0
    img[..., 3] = 1.0
    return img


def make_unit(filter=TextureFilter.BILINEAR, aniso=16, tex_size=64):
    mem = MemoryController()
    unit = TextureUnit(GpuConfig(), mem)
    unit.register(TextureResource.from_image("t", checker(tex_size)))
    unit.bind(0, "t")
    unit.set_filter(filter, aniso)
    return unit, mem


def quad_coords(u0, v0, du, dv):
    """One quad's worth of texture coordinates with the given derivatives."""
    return np.array(
        [
            [u0, v0, 0, 1],
            [u0 + du, v0, 0, 1],
            [u0, v0 + dv, 0, 1],
            [u0 + du, v0 + dv, 0, 1],
        ]
    )


class TestResource:
    def test_mip_chain_full(self):
        tex = TextureResource.from_image("t", checker(64))
        assert tex.levels == 7
        assert tex.mips[-1].shape == (1, 1, 4)

    def test_mip_chain_averages(self):
        tex = TextureResource.from_image("t", checker(64))
        assert tex.mips[-1][0, 0, 0] == pytest.approx(0.5, abs=0.01)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            TextureResource.from_image("t", np.zeros((60, 64, 4), np.float32))

    def test_format_sizes(self):
        assert TextureFormat.DXT1.bytes_per_texel == 0.5
        assert TextureFormat.DXT5.bytes_per_texel == 1.0
        assert TextureFormat.RGBA8.bytes_per_texel == 4.0

    def test_compressed_bytes_dxt1(self):
        tex = TextureResource.from_image("t", checker(64), TextureFormat.DXT1)
        base_blocks = (64 // 4) ** 2
        assert tex.compressed_bytes >= base_blocks * 8

    def test_registration_assigns_disjoint_ranges(self):
        mem = MemoryController()
        unit = TextureUnit(GpuConfig(), mem)
        a = unit.register(TextureResource.from_image("a", checker(64)))
        b = unit.register(TextureResource.from_image("b", checker(64)))
        assert b.base_address >= a.base_address + a.compressed_bytes


class TestSampling:
    def test_unbound_unit_returns_debug_color(self):
        mem = MemoryController()
        unit = TextureUnit(GpuConfig(), mem)
        out = unit(0, quad_coords(0.5, 0.5, 0.001, 0.001))
        assert np.allclose(out[0], [1, 0, 1, 1])

    def test_bilinear_magnified_exact_texel_center(self):
        unit, _ = make_unit()
        # Sample texel (0,0) center: u = 0.5/64.
        coords = quad_coords(0.5 / 64, 0.5 / 64, 0.001, 0.001)
        out = unit(0, coords)
        assert out[0, 0] == pytest.approx(1.0, abs=1e-5)

    def test_wrap_mode(self):
        unit, _ = make_unit()
        a = unit(0, quad_coords(0.25, 0.25, 0.001, 0.001))
        b = unit(0, quad_coords(1.25, 1.25, 0.001, 0.001))
        assert np.allclose(a, b, atol=1e-5)

    def test_quad_alignment_required(self):
        unit, _ = make_unit()
        with pytest.raises(ValueError):
            unit(0, np.zeros((3, 4)))

    def test_bilinear_count_one_per_request(self):
        unit, _ = make_unit(TextureFilter.BILINEAR)
        unit(0, quad_coords(0.3, 0.3, 0.001, 0.001))
        assert unit.stats.requests == 4
        assert unit.stats.bilinear_samples == 4

    def test_trilinear_doubles_when_minified(self):
        unit, _ = make_unit(TextureFilter.TRILINEAR)
        # Derivative of 4 texels/pixel -> lod 2: two mips touched.
        unit(0, quad_coords(0.1, 0.1, 4 / 64, 4 / 64))
        assert unit.stats.bilinear_samples == 8

    def test_aniso_scales_with_footprint_ratio(self):
        unit, _ = make_unit(TextureFilter.ANISOTROPIC, aniso=16)
        # 8:1 anisotropy: du/dx large, dv/dy small.
        unit(0, quad_coords(0.1, 0.1, 16 / 64, 2 / 64))
        per_request = unit.stats.bilinear_samples / unit.stats.requests
        assert 8 <= per_request <= 16 * 2

    def test_aniso_clamped_to_max(self):
        unit, _ = make_unit(TextureFilter.ANISOTROPIC, aniso=4)
        unit(0, quad_coords(0.1, 0.1, 32 / 64, 1 / 64))
        per_request = unit.stats.bilinear_samples / unit.stats.requests
        assert per_request <= 4 * 2

    def test_coverage_mask_limits_stats(self):
        unit, _ = make_unit()
        unit.set_coverage(np.array([True, False, False, False]))
        unit(0, quad_coords(0.3, 0.3, 0.001, 0.001))
        assert unit.stats.requests == 1

    def test_stats_reset(self):
        unit, _ = make_unit()
        unit(0, quad_coords(0.3, 0.3, 0.001, 0.001))
        snap = unit.stats.reset()
        assert snap.requests == 4
        assert unit.stats.requests == 0


class TestCaches:
    def test_memory_traffic_on_cold_sampling(self):
        unit, mem = make_unit()
        unit(0, quad_coords(0.2, 0.2, 0.01, 0.01))
        assert mem.reads[MemClient.TEXTURE] > 0

    def test_repeat_sampling_hits(self):
        unit, mem = make_unit()
        coords = quad_coords(0.2, 0.2, 0.01, 0.01)
        unit(0, coords)
        before = mem.reads[MemClient.TEXTURE]
        unit(0, coords)
        assert mem.reads[MemClient.TEXTURE] == before  # fully cached
        assert unit.l0.hit_rate > 0.4

    def test_spatial_locality_high_hit_rate(self):
        unit, mem = make_unit()
        # A row of adjacent quads, like a rasterized span.
        for qx in range(32):
            unit(0, quad_coords(qx / 64.0, 0.25, 1 / 64, 1 / 64))
        assert unit.l0.hit_rate > 0.8

    def test_dxt_reduces_memory_vs_rgba(self):
        def traffic(fmt):
            mem = MemoryController()
            unit = TextureUnit(GpuConfig(), mem)
            unit.register(TextureResource.from_image("t", checker(128), fmt))
            unit.bind(0, "t")
            unit.set_filter(TextureFilter.BILINEAR)
            rng = np.random.default_rng(0)
            for _ in range(200):
                u, v = rng.random(2)
                unit(0, quad_coords(u, v, 1 / 128, 1 / 128))
            return mem.reads[MemClient.TEXTURE]

        assert traffic(TextureFormat.RGBA8) > 2 * traffic(TextureFormat.DXT1)

    def test_unknown_binding_rejected(self):
        mem = MemoryController()
        unit = TextureUnit(GpuConfig(), mem)
        with pytest.raises(KeyError):
            unit.bind(0, "nope")
