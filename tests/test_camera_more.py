"""Additional camera-path tests."""

import numpy as np
import pytest

from repro.workloads.camera import CameraShot, CorridorPath, TerrainPath


class TestCorridorPath:
    def test_loops_wrap(self):
        path = CorridorPath(rooms=4, room_length=10, frames=40, loops=2)
        # With two loops, frame 20 is back at the start room.
        assert path.room_at(0) == path.room_at(20)

    def test_view_projection_composes(self):
        path = CorridorPath(rooms=4, room_length=10, frames=40)
        shot = path.shot(7)
        assert np.allclose(
            shot.view_projection, shot.projection @ shot.view
        )

    def test_forward_progress_monotone_within_loop(self):
        path = CorridorPath(rooms=6, room_length=12, frames=60)
        zs = [path.shot(f).position[2] for f in range(0, 59, 7)]
        assert all(b <= a for a, b in zip(zs, zs[1:]))

    def test_eye_height_respected(self):
        path = CorridorPath(rooms=4, room_length=10, frames=20, eye_height=2.5)
        heights = [path.shot(f).position[1] for f in range(20)]
        assert all(abs(h - 2.5) < 0.2 for h in heights)

    def test_single_frame_path(self):
        path = CorridorPath(rooms=4, room_length=10, frames=1)
        shot = path.shot(0)
        assert isinstance(shot, CameraShot)


class TestTerrainPath:
    def test_castle_orbit_stays_near_center(self):
        path = TerrainPath(extent=800, frames=100)
        for f in range(0, 49, 7):
            pos = path.shot(f).position
            assert np.hypot(pos[0], pos[2]) < 800 * 0.2

    def test_countryside_ranges_wider(self):
        path = TerrainPath(extent=800, frames=100)
        max_castle = max(
            float(np.hypot(*path.shot(f).position[[0, 2]])) for f in range(0, 50, 5)
        )
        max_country = max(
            float(np.hypot(*path.shot(f).position[[0, 2]])) for f in range(50, 100, 5)
        )
        assert max_country > max_castle

    def test_height_positive(self):
        path = TerrainPath(extent=800, frames=50, height=10.0)
        for f in range(0, 50, 10):
            assert path.shot(f).position[1] > 0
