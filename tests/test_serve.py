"""The characterization service: dedupe, streaming, fairness, shutdown.

Most tests inject stub farm workers (the farm runs them serially in the
server's lane threads, so plain closures over :class:`threading.Event`
work) — the service mechanics under test are independent of what the job
computes.  One test runs the real pipeline end to end to pin the
bit-identity contract: a served artifact is the same bytes a direct farm
run of the same spec produces.
"""

import hashlib
import threading
import time

import pytest

from repro.farm import ArtifactStore, Farm, JobSpec
from repro.observe import spans as obs_spans
from repro.serve import (
    Backpressure,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
)

@pytest.fixture(autouse=True)
def _restore_observe_env():
    """Server start arms REPRO_OBSERVE; don't leak it into later tests."""
    import os

    before = os.environ.get("REPRO_OBSERVE")
    yield
    if before is None:
        os.environ.pop("REPRO_OBSERVE", None)
    else:
        os.environ["REPRO_OBSERVE"] = before


def _spec_doc(seed=0, frames=2):
    return {"kind": "sim", "workload": "UT2004/Primeval", "frames": frames,
            "seed": seed}


def _server(tmp_path, worker, **config):
    config.setdefault("port", 0)
    config.setdefault("lanes", 1)
    config.setdefault("cache_dir", str(tmp_path / "cache"))
    thread = ServerThread(
        ReproServer(ServeConfig(**config), worker=worker)
    ).start()
    return thread, ServeClient(thread.host, thread.port, client_id="t")


class TestSubmitAndDedupe:
    def test_identical_submissions_run_once(self, tmp_path):
        runs = []
        lock = threading.Lock()

        def worker(job, cache_dir, checkpoint_every):
            with lock:
                runs.append(job.key())
            time.sleep(0.1)
            return {"ok": True}

        thread, client = _server(tmp_path, worker)
        try:
            first = client.submit(**_spec_doc())
            second = client.submit(**_spec_doc())
            assert second["job"] == first["job"]
            final = client.wait(first["job"])
            assert final["state"] == "done"
            # A spec that hashes to an existing entry attaches; it never
            # enqueues a second farm run.
            third = client.submit(**_spec_doc())
            assert third["state"] == "done"
            stats = client.stats()
            assert len(runs) == 1
            assert stats["dedup_hits"] == 2
            assert stats["submissions"] == 3
        finally:
            thread.stop()

    def test_distinct_specs_are_distinct_jobs(self, tmp_path):
        def worker(job, cache_dir, checkpoint_every):
            return {"seed": job.seed}

        thread, client = _server(tmp_path, worker)
        try:
            a = client.submit(**_spec_doc(seed=1))
            b = client.submit(**_spec_doc(seed=2))
            assert a["job"] != b["job"]
            assert client.wait(a["job"])["state"] == "done"
            assert client.wait(b["job"])["state"] == "done"
        finally:
            thread.stop()

    def test_validation_errors(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            with pytest.raises(ServeError) as excinfo:
                client.submit("sim", "NoSuchGame/demo", 1)
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                client.submit("sim", "UT2004/Primeval", 10_000)
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                client.submit(
                    "sim", "UT2004/Primeval", 1, config={"warp_factor": 9}
                )
            assert excinfo.value.status == 400
        finally:
            thread.stop()


class TestEventStream:
    def test_ws_events_match_span_sequence(self, tmp_path):
        """The WS stream replays the job's spans in publication order."""

        def worker(job, cache_dir, checkpoint_every):
            obs_spans.enable(track="stub", env=False)
            try:
                with obs_spans.span("alpha"):
                    with obs_spans.span("beta"):
                        pass
                with obs_spans.span("gamma"):
                    pass
            finally:
                obs_spans.disable()
            return {"ok": True}

        thread, client = _server(tmp_path, worker, verbose_events=True)
        try:
            doc = client.submit(**_spec_doc())
            events = list(client.events(doc["job"], timeout=60))
        finally:
            thread.stop()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "done"
        spans = [e for e in events if e["event"] == "span"]
        assert [(e["name"], e["phase"]) for e in spans] == [
            ("alpha", "start"),
            ("beta", "start"),
            ("beta", "end"),
            ("alpha", "end"),
            ("gamma", "start"),
            ("gamma", "end"),
        ]
        # Global event seq and per-span logical seq are both monotonic.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        span_seqs = [e["span_seq"] for e in spans]
        assert span_seqs == sorted(span_seqs)

    def test_late_subscriber_gets_full_replay(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            doc = client.submit(**_spec_doc())
            client.wait(doc["job"])
            events = list(client.events(doc["job"], timeout=60))
        finally:
            thread.stop()
        assert [e["event"] for e in events] == ["queued", "started", "done"]


class TestBackpressure:
    def test_429_when_client_queue_is_full(self, tmp_path):
        release = threading.Event()

        def worker(job, cache_dir, checkpoint_every):
            release.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(tmp_path, worker, queue_depth=1)
        try:
            running = client.submit(**_spec_doc(seed=0))
            queued = client.submit(**_spec_doc(seed=1))
            with pytest.raises(Backpressure) as excinfo:
                client.submit(**_spec_doc(seed=2))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after >= 1.0
            release.set()
            assert client.wait(running["job"])["state"] == "done"
            assert client.wait(queued["job"])["state"] == "done"
            assert client.stats()["rejected_backpressure"] == 1
        finally:
            release.set()
            thread.stop()


class TestFairScheduling:
    def test_round_robin_across_clients(self, tmp_path):
        """One hog with a deep queue can't starve light tenants."""
        release = threading.Event()
        order = []
        lock = threading.Lock()

        def worker(job, cache_dir, checkpoint_every):
            if job.seed == 99:
                release.wait(timeout=60)
            with lock:
                order.append(job.seed)
            return {"ok": True}

        thread, _ = _server(tmp_path, worker, queue_depth=8)
        host, port = thread.host, thread.port
        blocker = ServeClient(host, port, client_id="blocker")
        hog = ServeClient(host, port, client_id="hog")
        light1 = ServeClient(host, port, client_id="light1")
        light2 = ServeClient(host, port, client_id="light2")
        try:
            plug = blocker.submit(**_spec_doc(seed=99))
            time.sleep(0.2)  # let the lane pick the blocker up
            hogs = [hog.submit(**_spec_doc(seed=s)) for s in (10, 11, 12)]
            lights = [
                light1.submit(**_spec_doc(seed=20)),
                light2.submit(**_spec_doc(seed=30)),
            ]
            release.set()
            for doc in [plug] + hogs + lights:
                assert blocker.wait(doc["job"])["state"] == "done"
        finally:
            release.set()
            thread.stop()
        # Round-robin drain: each light client's single job runs between
        # the hog's, never after its whole backlog.
        assert order[0] == 99
        assert order[1:4] == [10, 20, 30]
        assert order[4:] == [11, 12]


class TestGracefulShutdown:
    def test_drain_finishes_running_and_cancels_queued(self, tmp_path):
        release = threading.Event()

        def worker(job, cache_dir, checkpoint_every):
            release.wait(timeout=60)
            return {"ok": True}

        thread, client = _server(tmp_path, worker, queue_depth=8)
        try:
            running = client.submit(**_spec_doc(seed=0))
            queued = client.submit(**_spec_doc(seed=1))
            time.sleep(0.2)  # lane picks up the first job
            assert client.shutdown()["draining"] is True
            with pytest.raises(ServeError) as excinfo:
                client.submit(**_spec_doc(seed=2))
            assert excinfo.value.status == 503
            release.set()
        finally:
            release.set()
            thread.stop()
        entries = thread.server.entries
        assert entries[running["job"]].state == "done"
        assert entries[queued["job"]].state == "cancelled"
        assert thread.server.stats["cancelled"] == 1


class TestServedBitIdentity:
    def test_served_artifact_identical_to_direct_run(self, tmp_path):
        """Same JobSpec key ⇒ same artifact bytes, served or direct."""
        spec = JobSpec("sim", "UT2004/Primeval", 1)
        thread, client = _server(tmp_path, None)  # real pipeline
        try:
            doc = client.submit(
                kind=spec.kind, workload=spec.workload, frames=spec.frames
            )
            assert client.wait(doc["job"], timeout=600)["state"] == "done"
            served, served_sha = client.artifact(doc["job"])
            result = client.result(doc["job"])

            # The same spec resubmitted after a registry reset (a server
            # restart over the persistent cache) is served from the store.
            thread.reset_registry()
            again = client.submit(
                kind=spec.kind, workload=spec.workload, frames=spec.frames
            )
            final = client.wait(again["job"], timeout=600)
            assert final["from_cache"] is True
            assert client.stats()["cache_hits"] == 1
        finally:
            thread.stop()

        direct_store = ArtifactStore(tmp_path / "direct")
        with Farm(store=direct_store, jobs=1, checkpoint_every=0) as farm:
            farm.run_one(spec)
        direct = direct_store.artifact_path(spec).read_bytes()

        assert hashlib.sha256(served).hexdigest() == served_sha
        assert served == direct
        assert result["summary"]["frames"] == 1
        assert result["artifact_sha256"] == served_sha


class TestHttpSurface:
    def test_health_workloads_stats_and_404s(self, tmp_path):
        thread, client = _server(tmp_path, lambda *a: {"ok": True})
        try:
            health = client.healthz()
            assert health["ok"] is True and health["draining"] is False
            assert "UT2004/Primeval" in client.workloads()
            assert client.stats()["jobs"] == 0
            with pytest.raises(ServeError) as excinfo:
                client.status("deadbeef")
            assert excinfo.value.status == 404
            doc = client.submit(**_spec_doc())
            client.wait(doc["job"])
            # result/artifact 409 only before the job is terminal; a stub
            # worker stores nothing, so artifact 404s even when done.
            with pytest.raises(ServeError) as excinfo:
                client.artifact(doc["job"])
            assert excinfo.value.status == 404
        finally:
            thread.stop()
