"""Tests for repro.util.mathutil."""

import math

import numpy as np
import pytest

from repro.util import mathutil as mu


class TestBasics:
    def test_identity(self):
        assert np.allclose(mu.identity(), np.eye(4))

    def test_normalize_unit_length(self):
        v = mu.normalize([3.0, 4.0, 0.0])
        assert np.allclose(v, [0.6, 0.8, 0.0])

    def test_normalize_zero_vector_passthrough(self):
        assert np.allclose(mu.normalize([0.0, 0.0, 0.0]), 0.0)

    def test_translate_moves_point(self):
        p = mu.transform_points(mu.translate(1, 2, 3), np.array([[0.0, 0, 0]]))
        assert np.allclose(p[0, :3], [1, 2, 3])
        assert p[0, 3] == 1.0

    def test_scale_matrix(self):
        m = mu.scale(2, 3, 4)
        p = mu.transform_points(m, np.array([[1.0, 1, 1]]))
        assert np.allclose(p[0, :3], [2, 3, 4])

    def test_rotate_y_quarter_turn(self):
        m = mu.rotate_y(math.pi / 2)
        p = mu.transform_points(m, np.array([[1.0, 0, 0]]))
        assert np.allclose(p[0, :3], [0, 0, -1], atol=1e-12)

    def test_rotate_x_quarter_turn(self):
        m = mu.rotate_x(math.pi / 2)
        p = mu.transform_points(m, np.array([[0.0, 1, 0]]))
        assert np.allclose(p[0, :3], [0, 0, 1], atol=1e-12)

    def test_rotations_preserve_length(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(10, 3))
        rotated = mu.transform_points(mu.rotate_y(0.7), pts)[:, :3]
        assert np.allclose(
            np.linalg.norm(rotated, axis=1), np.linalg.norm(pts, axis=1)
        )


class TestProjection:
    def test_perspective_maps_near_far_to_clip_bounds(self):
        m = mu.perspective(90, 1.0, 1.0, 100.0)
        near = m @ np.array([0, 0, -1.0, 1.0])
        far = m @ np.array([0, 0, -100.0, 1.0])
        assert near[2] / near[3] == pytest.approx(-1.0)
        assert far[2] / far[3] == pytest.approx(1.0)

    def test_perspective_rejects_bad_planes(self):
        with pytest.raises(ValueError):
            mu.perspective(60, 1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            mu.perspective(60, 1.0, 10.0, 5.0)

    def test_perspective_fov_edge(self):
        m = mu.perspective(90, 1.0, 1.0, 100.0)
        # At 90 degrees fov, x == z on the frustum edge.
        edge = m @ np.array([1.0, 0, -1.0, 1.0])
        assert edge[0] / edge[3] == pytest.approx(1.0)


class TestLookAt:
    def test_look_at_centers_target(self):
        view = mu.look_at((5, 3, 5), (0, 0, 0))
        p = mu.transform_points(view, np.array([[0.0, 0, 0]]))
        assert p[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert p[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert p[0, 2] == pytest.approx(-math.sqrt(59), rel=1e-12)

    def test_look_at_eye_maps_to_origin(self):
        view = mu.look_at((1, 2, 3), (4, 5, 6))
        p = mu.transform_points(view, np.array([[1.0, 2, 3]]))
        assert np.allclose(p[0, :3], 0.0, atol=1e-12)

    def test_look_at_rejects_degenerate(self):
        with pytest.raises(ValueError):
            mu.look_at((1, 1, 1), (1, 1, 1))

    def test_transform_directions_ignores_translation(self):
        m = mu.translate(10, 20, 30) @ mu.rotate_y(0.5)
        d = mu.transform_directions(m, np.array([[0.0, 1.0, 0.0]]))
        assert np.allclose(d[0], [0, 1, 0])
