"""Frame-sharded execution: merge algebra, bit-identity, and transport.

The farm's scaling story rests on three claims, each tested here:

* a run split into contiguous frame shards and folded back through
  :mod:`repro.farm.merge` is **bit-identical** to the serial run — on all
  three simulated engines, across statistics, quad fates, cache reference
  counters, memory traffic, and rendered images;
* the merge itself is a well-behaved fold: order-invariant, associative,
  and loud (``MergeError``) on gaps, overlaps, or mixed result types;
* the transport around it holds up — shared traces round-trip through the
  store exactly, image payloads survive the detach/memory-map cycle, a
  corrupted sidecar is quarantined instead of crashing the harvest, and
  the warm worker pool outlives both retry rounds and whole runs.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.api.tracer import ApiTracer
from repro.farm import (
    ArtifactStore,
    Farm,
    MergeError,
    api_job,
    merge_api_stats,
    merge_results,
    merge_simulations,
    run_job,
    sim_job,
)
from repro.farm import faults
from repro.farm.chaos import results_equal
from repro.farm.checkpoint import (
    build_job_workload,
    clear_trace_cache,
    job_trace,
    run_api_job,
)

WORKLOAD = "UT2004/Primeval"
OTHER = "Doom3/trdemo2"
ENGINES = ("UT2004/Primeval", "Doom3/trdemo1", "Quake4/demo4")


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _simulate_shards(job, trace, keep_images: bool = False):
    """Run every shard of ``job`` directly against the shared ``trace``."""
    parts = []
    for shard in job.shard(job.frames):
        sim = build_job_workload(shard).simulator(shard.config)
        parts.append(
            sim.run_trace(
                trace,
                max_frames=shard.frames,
                start_frame=shard.frame_offset,
                keep_images=shard.frames if keep_images else 0,
            )
        )
    return parts


@pytest.fixture(scope="module")
def ut_split():
    """Serial UT2004 3-frame sim plus its three single-frame shard runs."""
    job = sim_job(WORKLOAD, 3)
    workload = build_job_workload(job)
    trace = workload.trace(frames=3).materialize()
    serial = workload.simulator(job.config).run_trace(
        trace, max_frames=3, keep_images=3
    )
    parts = _simulate_shards(job, trace, keep_images=True)
    return serial, parts


@pytest.fixture(scope="module")
def api_split():
    """Serial UT2004 4-frame API pass plus its two 2-frame shard passes."""
    job = api_job(WORKLOAD, 4)
    trace = build_job_workload(job).trace(frames=4).materialize()
    serial = run_api_job(job, trace=trace)
    parts = [run_api_job(shard, trace=trace) for shard in job.shard(2)]
    return serial, parts


# -- bit-identity on every engine -------------------------------------------


@pytest.mark.parametrize("name", ENGINES)
def test_sharded_simulation_is_bit_identical(name):
    """Shard-and-merge equals serial: stats, quad fates, caches, images."""
    job = sim_job(name, 2)
    workload = build_job_workload(job)
    trace = workload.trace(frames=2).materialize()
    serial = workload.simulator(job.config).run_trace(
        trace, max_frames=2, keep_images=2
    )
    merged = merge_results(_simulate_shards(job, trace, keep_images=True))
    assert results_equal(serial, merged)
    assert merged.stats == serial.stats
    assert merged.stats.quad_fates == serial.stats.quad_fates
    for key, cache in serial.caches.items():
        other = merged.caches[key]
        assert (other.hits, other.misses, other.accesses) == (
            cache.hits,
            cache.misses,
            cache.accesses,
        )


def test_sharded_api_stats_are_bit_identical(api_split):
    serial, parts = api_split
    assert merge_api_stats(parts) == serial


# -- merge algebra -----------------------------------------------------------


def test_merge_matches_serial(ut_split):
    serial, parts = ut_split
    assert results_equal(serial, merge_results(parts))


def test_merge_is_order_invariant(ut_split):
    serial, parts = ut_split
    for perm in itertools.permutations(parts):
        assert results_equal(serial, merge_simulations(list(perm)))


def test_merge_is_associative(ut_split):
    serial, parts = ut_split
    left = merge_simulations([merge_simulations(parts[:2]), parts[2]])
    right = merge_simulations([parts[0], merge_simulations(parts[1:])])
    assert results_equal(serial, left)
    assert results_equal(serial, right)
    assert results_equal(left, right)


def test_api_merge_is_order_invariant(api_split):
    serial, parts = api_split
    assert merge_api_stats(list(reversed(parts))) == serial


def test_merge_single_part_is_passthrough(ut_split):
    _, parts = ut_split
    assert merge_results([parts[0]]) is parts[0]


def test_merge_rejects_frame_gap(ut_split):
    _, parts = ut_split
    with pytest.raises(MergeError):
        merge_simulations([parts[0], parts[2]])


def test_merge_rejects_overlap(ut_split):
    _, parts = ut_split
    with pytest.raises(MergeError):
        merge_simulations([parts[0], parts[0]])


def test_merge_rejects_mixed_types(ut_split, api_split):
    _, sim_parts = ut_split
    _, api_parts = api_split
    with pytest.raises(MergeError):
        merge_results([sim_parts[0], api_parts[0]])


def test_api_merge_rejects_frame_gap():
    job = api_job(WORKLOAD, 3)
    trace = build_job_workload(job).trace(frames=3).materialize()
    shards = job.shard(3)
    parts = [run_api_job(shard, trace=trace) for shard in shards]
    with pytest.raises(MergeError):
        merge_api_stats([parts[0], parts[2]])


# -- shard planning ----------------------------------------------------------


def test_shard_partitions_frames():
    job = sim_job(WORKLOAD, 5)
    shards = job.shard(3)
    assert [s.frames for s in shards] == [2, 2, 1]
    assert [s.frame_offset for s in shards] == [0, 2, 4]
    assert all(s.total_frames == 5 and s.is_shard for s in shards)
    assert len({s.key() for s in shards}) == 3  # distinct artifacts
    assert len({s.trace_key() for s in shards}) == 1  # one shared trace
    assert job.trace_key() == shards[0].trace_key()


def test_shard_degenerate_cases():
    job = sim_job(WORKLOAD, 2)
    assert job.shard(1) == (job,)
    assert len(job.shard(8)) == 2  # clamped to frame count
    shard = job.shard(2)[1]
    assert shard.shard(2) == (shard,)  # shards never re-split
    assert "+1/2" in shard.describe()


def test_plan_auto_shards_underloaded_batch(tmp_path):
    # oversubscribe=True tests the planning math independent of host cores
    farm = Farm(store=ArtifactStore(tmp_path), jobs=4, oversubscribe=True)
    job = sim_job(WORKLOAD, 4)
    plan = farm._plan_units([job], run_job)
    assert len(plan[job]) == 4


def test_plan_width_capped_by_cpu_count(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.farm.executor.os.cpu_count", lambda: 1)
    farm = Farm(store=ArtifactStore(tmp_path), jobs=4)
    assert farm.width == 1
    job = sim_job(WORKLOAD, 4)
    # A 1-core box never pays shard-merge overhead for parallelism it
    # cannot have; oversubscribe=True restores the requested width.
    assert farm._plan_units([job], run_job) == {job: (job,)}
    wide = Farm(store=ArtifactStore(tmp_path), jobs=4, oversubscribe=True)
    assert wide.width == 4


def test_plan_keeps_full_batches_whole(tmp_path):
    farm = Farm(store=ArtifactStore(tmp_path), jobs=2, oversubscribe=True)
    jobs = [sim_job(WORKLOAD, 4), sim_job(OTHER, 4)]
    plan = farm._plan_units(jobs, run_job)
    assert all(plan[job] == (job,) for job in jobs)


def test_plan_respects_shard_overrides(tmp_path):
    job = sim_job(WORKLOAD, 4)
    off = Farm(
        store=ArtifactStore(tmp_path / "off"),
        jobs=4,
        shard_frames=0,
        oversubscribe=True,
    )
    assert off._plan_units([job], run_job) == {job: (job,)}
    fixed = Farm(
        store=ArtifactStore(tmp_path / "k"),
        jobs=2,
        shard_frames=4,
        oversubscribe=True,
    )
    assert len(fixed._plan_units([job], run_job)[job]) == 4


def test_plan_never_shards_custom_workers(tmp_path):
    def custom(job, cache_dir, checkpoint_every):  # pragma: no cover
        raise NotImplementedError

    farm = Farm(store=ArtifactStore(tmp_path), jobs=4)
    job = sim_job(WORKLOAD, 4)
    assert farm._plan_units([job], custom) == {job: (job,)}


# -- the farm end-to-end -----------------------------------------------------


def test_farm_sharded_run_matches_serial(tmp_path):
    job = sim_job(WORKLOAD, 2)
    serial = Farm(store=ArtifactStore(tmp_path / "serial"), jobs=1).run_one(job)
    with Farm(
        store=ArtifactStore(tmp_path / "sharded"), jobs=2, shard_frames=2
    ) as farm:
        sharded = farm.run_one(job)
        assert results_equal(serial, sharded)
        assert any(r.source == "merge" for r in farm.telemetry.records)
        assert farm.store.contains(job)  # merged parent cached whole
        again = farm.run_one(job)
    assert results_equal(serial, again)
    assert farm.telemetry.cache_hits >= 1


def test_warm_pool_persists_across_runs(tmp_path):
    with Farm(
        store=ArtifactStore(tmp_path), jobs=2, shard_frames=0
    ) as farm:
        farm.run([api_job(WORKLOAD, 2), api_job(OTHER, 2)])
        pool = farm._pool
        assert pool is not None
        farm.run([api_job(WORKLOAD, 3), api_job(OTHER, 3)])
        assert farm._pool is pool  # no teardown between runs
    assert farm._pool is None  # close() releases it


def test_warm_pool_rebuilt_after_worker_death(tmp_path):
    plan = faults.FaultPlan(
        faults=(faults.FaultSpec("crash", match="Doom3", times=1),),
        seed=0,
        state_dir=str(tmp_path / "fault-state"),
    )
    batch = [api_job(OTHER, 2), api_job(OTHER, 3)]
    reference = Farm(store=ArtifactStore(tmp_path / "ref"), jobs=1).run(batch)
    with Farm(
        store=ArtifactStore(tmp_path / "cache"),
        jobs=2,
        retries=3,
        shard_frames=0,
    ) as farm:
        with faults.injected(plan):
            farm.run([api_job(WORKLOAD, 2), api_job(WORKLOAD, 3)])
            pool = farm._pool
            recovered = farm.run(batch)
        assert farm._pool is not None
        assert farm._pool is not pool  # broken pool was replaced
    assert farm.telemetry.retries >= 1
    for job in batch:
        assert results_equal(reference[job], recovered[job])


# -- zero-copy transport -----------------------------------------------------


@pytest.fixture(scope="module")
def imaged():
    """A 2-frame simulation that kept both rendered frames."""
    job = sim_job(WORKLOAD, 2)
    workload = build_job_workload(job)
    trace = workload.trace(frames=2).materialize()
    result = workload.simulator(job.config).run_trace(
        trace, max_frames=2, keep_images=2
    )
    return job, result


def test_images_round_trip_through_sidecar(tmp_path, imaged):
    job, result = imaged
    store = ArtifactStore(tmp_path)
    store.save(job, result)
    assert store.images_path(job).exists()
    loaded = store.load(job)
    assert loaded is not None
    assert results_equal(result, loaded)
    assert all(isinstance(image, np.memmap) for image in loaded.images)


def test_corrupt_image_sidecar_is_quarantined(tmp_path, imaged):
    job, result = imaged
    store = ArtifactStore(tmp_path)
    store.save(job, result)
    blob = bytearray(store.images_path(job).read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    store.images_path(job).write_bytes(bytes(blob))
    assert store.load(job) is None  # mismatch detected, no crash
    assert store.quarantined >= 1
    assert any(p.suffix == ".npy" for p in store.quarantined_files())
    assert not store.contains(job)  # whole family retired
    store.save(job, result)  # recompute path: a fresh save works
    assert results_equal(result, store.load(job))


def test_truncated_image_sidecar_is_quarantined(tmp_path, imaged):
    job, result = imaged
    store = ArtifactStore(tmp_path)
    store.save(job, result)
    store.images_path(job).write_bytes(b"\x93NUMPY")
    assert store.load(job) is None
    assert store.quarantined >= 1


# -- the shared trace store --------------------------------------------------


def _api_replay(job, trace):
    workload = build_job_workload(job)
    return ApiTracer(workload.programs).trace_stats(
        trace, max_frames=job.frames
    )


def test_trace_store_round_trip_is_exact(tmp_path):
    job = sim_job(WORKLOAD, 2)
    store = ArtifactStore(tmp_path)
    trace = job_trace(job, store)  # generates and publishes
    assert store.contains_trace(job)
    loaded = store.load_trace(job)
    assert loaded is not None
    assert _api_replay(job, loaded) == _api_replay(job, trace)


def test_corrupt_trace_is_quarantined_and_regenerated(tmp_path):
    job = sim_job(WORKLOAD, 2)
    store = ArtifactStore(tmp_path)
    original = job_trace(job, store)
    path = store.trace_path(job)
    path.write_text(path.read_text()[: path.stat().st_size // 2])
    clear_trace_cache()
    assert store.load_trace(job) is None
    assert store.quarantined >= 1
    regenerated = job_trace(job, store)  # falls back to regeneration
    assert store.contains_trace(job)  # and republishes
    assert _api_replay(job, regenerated) == _api_replay(job, original)


def test_shards_share_one_trace_file(tmp_path):
    job = sim_job(WORKLOAD, 2)
    store = ArtifactStore(tmp_path)
    job_trace(job, store)
    for shard in job.shard(2):
        assert store.trace_path(shard) == store.trace_path(job)
        assert store.contains_trace(shard)
