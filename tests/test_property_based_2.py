"""Second batch of hypothesis property tests: shaders, clipper, stencil."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.util.mathutil as mu
from repro.gpu.clipper import clip_and_cull
from repro.gpu.zstencil import _apply_stencil_op
from repro.shader.interpreter import ShaderInterpreter
from repro.shader.library import build_fragment_program, build_vertex_program
from repro.shader.program import assemble

finite = st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# Shader interpreter algebraic identities


@given(st.lists(finite, min_size=4, max_size=4), st.lists(finite, min_size=4, max_size=4))
def test_add_commutes(a, b):
    interp = ShaderInterpreter()
    prog = assemble("ADD o0, v0, v1")
    ab = interp.run(prog, {0: np.array([a]), 1: np.array([b])}).output(0)
    ba = interp.run(prog, {0: np.array([b]), 1: np.array([a])}).output(0)
    assert np.allclose(ab, ba)


@given(st.lists(finite, min_size=4, max_size=4))
def test_mov_identity(a):
    interp = ShaderInterpreter()
    prog = assemble("MOV o0, v0")
    out = interp.run(prog, {0: np.array([a])}).output(0)
    assert np.allclose(out, [a])


@given(st.lists(finite, min_size=4, max_size=4))
def test_double_negation(a):
    interp = ShaderInterpreter()
    prog = assemble("MOV r0, -v0\nMOV o0, -r0")
    out = interp.run(prog, {0: np.array([a])}).output(0)
    assert np.allclose(out, [a])


@given(st.lists(finite, min_size=4, max_size=4), st.lists(finite, min_size=4, max_size=4))
def test_min_max_bracket(a, b):
    interp = ShaderInterpreter()
    low = interp.run(
        assemble("MIN o0, v0, v1"), {0: np.array([a]), 1: np.array([b])}
    ).output(0)
    high = interp.run(
        assemble("MAX o0, v0, v1"), {0: np.array([a]), 1: np.array([b])}
    ).output(0)
    assert (low <= high).all()


@given(
    st.integers(min_value=12, max_value=48),
    st.booleans(),
)
def test_vertex_builder_lengths(length, lit):
    prog = build_vertex_program("p", length, lit=lit)
    assert prog.instruction_count == length


@given(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=30),
    st.booleans(),
)
@settings(max_examples=60)
def test_fragment_builder_lengths(tex, extra, alpha):
    # Compute a definitely-feasible total and confirm exactness.
    base = max(2 * tex + 1, 3) + (2 if alpha else 0) + 2
    total = base + extra
    prog = build_fragment_program("p", tex, total, alpha_test=alpha)
    assert prog.instruction_count == total
    assert prog.texture_instruction_count == tex
    assert prog.uses_kill == alpha


# ---------------------------------------------------------------------------
# Stencil ops


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
def test_stencil_incr_decr_inverse(value, ref):
    values = np.array([value], dtype=np.int16)
    up = _apply_stencil_op("incr_wrap", values, ref)
    down = _apply_stencil_op("decr_wrap", up, ref)
    assert down[0] == value
    assert 0 <= int(up[0]) <= 255


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_stencil_replace_and_zero(value, ref):
    values = np.array([value], dtype=np.int16)
    assert _apply_stencil_op("replace", values, ref)[0] == ref
    assert _apply_stencil_op("zero", values, ref)[0] == 0


# ---------------------------------------------------------------------------
# Clipper partition invariant


@st.composite
def triangle_soup(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    points = rng.uniform(-25, 25, size=(count * 3, 3))
    tris = np.arange(count * 3).reshape(count, 3)
    return points, tris


@given(triangle_soup(), st.sampled_from(["back", "front", "none"]))
@settings(max_examples=40, deadline=None)
def test_clip_cull_partition(soup, cull):
    points, tris = soup
    mvp = mu.perspective(70, 4 / 3, 0.5, 60) @ mu.look_at((0, 1, 8), (0, 0, 0))
    clip = mu.transform_points(mvp, points)
    uv = np.zeros((points.shape[0], 2))
    color = np.ones((points.shape[0], 4))
    result = clip_and_cull(clip, tris, uv, color, 128, 96, cull=cull)
    assert result.assembled == tris.shape[0]
    assert result.clipped + result.culled + result.traversed == result.assembled
    assert result.clipped >= 0 and result.culled >= 0 and result.traversed >= 0


@given(triangle_soup())
@settings(max_examples=25, deadline=None)
def test_cull_none_never_fewer_traversed(soup):
    points, tris = soup
    mvp = mu.perspective(70, 4 / 3, 0.5, 60) @ mu.look_at((0, 1, 8), (0, 0, 0))
    clip = mu.transform_points(mvp, points)
    uv = np.zeros((points.shape[0], 2))
    color = np.ones((points.shape[0], 4))
    with_cull = clip_and_cull(clip, tris, uv, color, 128, 96, cull="back")
    without = clip_and_cull(clip, tris, uv, color, 128, 96, cull="none")
    assert without.traversed >= with_cull.traversed
