"""QuadStream equivalence: the draw-level vectorized path and the optional
compiled kernels must match the per-triangle pure-Python reference bit for
bit — same per-frame stats, quad fates, cache counters, and framebuffer
contents on every simulated engine."""

import dataclasses
import functools
import hashlib

import numpy as np
import pytest

import repro
from repro.gpu import _native
from repro.gpu.clipper import ScreenTriangles
from repro.gpu.rasterizer import rasterize_draw
from repro.workloads import build_workload

ENGINES = ["UT2004/Primeval", "Doom3/trdemo2", "Quake4/demo4"]
FRAMES = 1


def _simulate(name: str, vectorized: bool):
    workload = build_workload(name, sim=True)
    sim = workload.simulator()
    sim.config = dataclasses.replace(sim.config, vectorized=vectorized)
    result = sim.run_trace(workload.trace(frames=FRAMES), max_frames=FRAMES)
    return sim, result


@functools.lru_cache(maxsize=None)
def _run(name: str, vectorized: bool):
    """One simulation per (engine, path), shared across the test cases."""
    sim, result = _simulate(name, vectorized)
    return {
        "frame_stats": [dataclasses.asdict(fs) for fs in result.frame_stats],
        "quad_fates": [dict(fs.quad_fates) for fs in result.frame_stats],
        "caches": {
            cname: (cache.hits, cache.misses)
            for cname, cache in result.caches.items()
        },
        "fb": _fb_hash(sim.fb),
    }


def _fb_hash(fb) -> str:
    h = hashlib.sha256()
    h.update(fb.color.tobytes())
    h.update(fb.z.tobytes())
    h.update(fb.stencil.tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("name", ENGINES)
def test_quadstream_matches_per_triangle(name):
    stream = _run(name, True)
    classic = _run(name, False)
    assert stream["frame_stats"] == classic["frame_stats"]
    assert stream["quad_fates"] == classic["quad_fates"]
    assert stream["caches"] == classic["caches"]
    assert stream["fb"] == classic["fb"]


def test_native_kernels_match_python(monkeypatch):
    """The compiled kernels are a pure accelerator: forcing the Python
    fallbacks must reproduce the identical simulation."""
    name = ENGINES[0]
    with_native = _run(name, True)
    monkeypatch.setattr(_native, "available", lambda: False)
    _, result = _simulate(name, True)
    assert [
        dataclasses.asdict(fs) for fs in result.frame_stats
    ] == with_native["frame_stats"]
    assert {
        cname: (cache.hits, cache.misses)
        for cname, cache in result.caches.items()
    } == with_native["caches"]


def _random_triangles(count: int, seed: int = 7) -> ScreenTriangles:
    rng = np.random.default_rng(seed)
    return ScreenTriangles(
        xy=rng.uniform(-8.0, 72.0, size=(count, 3, 2)),
        z=rng.uniform(0.0, 1.0, size=(count, 3)),
        inv_w=rng.uniform(0.5, 2.0, size=(count, 3)),
        uv=rng.uniform(0.0, 8.0, size=(count, 3, 2)),
        color=rng.uniform(0.0, 1.0, size=(count, 3, 4)),
        front=rng.random(count) > 0.3,
        parent=np.arange(count),
    )


def test_rasterize_draw_chunking_invariant():
    """Chunking only bounds peak memory — a tiny chunk budget must emit the
    identical stream, quad for quad and bit for bit."""
    tris = _random_triangles(40)
    whole = rasterize_draw(tris, 64, 64)
    chunked = rasterize_draw(tris, 64, 64, chunk_quads=64)
    assert whole is not None and chunked is not None
    for field in ("qx", "qy", "cover", "z", "uv", "color", "tri", "front"):
        np.testing.assert_array_equal(
            getattr(whole, field), getattr(chunked, field)
        )


def test_facade_exports():
    for attr in (
        "simulate",
        "api_stats",
        "characterize",
        "ExperimentConfig",
        "GpuConfig",
    ):
        assert attr in repro.__all__
        assert callable(getattr(repro, attr))


def test_runner_simulation_shim_removed():
    """The 1.x ``Runner.simulation`` deprecation shim is gone in 2.0."""
    from repro.experiments.runner import ExperimentConfig, Runner

    runner = Runner(ExperimentConfig(sim_frames=1))
    assert not hasattr(runner, "simulation")
    assert repro.__version__.split(".")[0] == "2"
