"""Tests for the execution farm: jobs, store, scheduler, checkpointing.

Covers the subsystem's five load-bearing guarantees:

* parallel N-worker runs are bit-identical to serial runs;
* artifacts round-trip through the store (store → load == fresh compute);
* cache keys invalidate on seed / config / frame-budget / kind changes;
* an interrupted simulation resumes from its last checkpointed frame and
  finishes with results identical to an uninterrupted run;
* a crashed or hung worker is retried and the batch still completes.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.experiments import ExperimentConfig, Runner, default_runner
from repro.farm import (
    ArtifactStore,
    Farm,
    FarmError,
    JobSpec,
    api_job,
    geometry_job,
    run_job,
    sim_job,
)
from repro.farm.checkpoint import run_checkpointed
from repro.gpu.config import GpuConfig

WORKLOAD = "UT2004/Primeval"
OTHER = "Doom3/trdemo2"


# -- job model / cache keys -------------------------------------------------


class TestJobKeys:
    def test_key_stable(self):
        assert api_job(WORKLOAD, 4).key() == api_job(WORKLOAD, 4).key()

    def test_key_changes_with_frame_budget(self):
        assert api_job(WORKLOAD, 4).key() != api_job(WORKLOAD, 5).key()

    def test_key_changes_with_seed(self):
        base = sim_job(WORKLOAD, 2)
        assert base.key() != sim_job(WORKLOAD, 2, seed=123).key()

    def test_key_changes_with_config(self):
        override = GpuConfig(width=64, height=48, hierarchical_z=False)
        assert sim_job(WORKLOAD, 2).key() != sim_job(
            WORKLOAD, 2, config=override
        ).key()

    def test_key_changes_with_kind_and_workload(self):
        keys = {
            api_job(WORKLOAD, 2).key(),
            sim_job(WORKLOAD, 2).key(),
            geometry_job(WORKLOAD, 2).key(),
            api_job(OTHER, 2).key(),
        }
        assert len(keys) == 4

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            JobSpec("nonsense", WORKLOAD, 2)
        with pytest.raises(ValueError):
            JobSpec("api", WORKLOAD, 0)


# -- artifact store ---------------------------------------------------------


class TestArtifactStore:
    def test_round_trip_equals_fresh_compute(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        outcome = run_job(job, cache_dir=str(tmp_path))
        assert not outcome.from_cache
        loaded = store.load(job)
        assert loaded == outcome.result
        fresh = run_job(job, cache_dir=None)
        assert loaded == fresh.result

    def test_sim_round_trip(self, tmp_path):
        job = sim_job(WORKLOAD, 1)
        run_job(job, cache_dir=str(tmp_path))
        loaded = ArtifactStore(tmp_path).load(job)
        fresh = run_job(job, cache_dir=None).result
        assert loaded.stats == fresh.stats
        assert loaded.frame_stats == fresh.frame_stats
        assert loaded.memory == fresh.memory
        assert loaded.config == fresh.config

    def test_corrupted_artifact_is_a_miss(self, tmp_path):
        job = api_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        store.save(job, "placeholder")
        store.artifact_path(job).write_bytes(b"not a pickle")
        assert store.load(job) is None
        assert store.misses == 1

    def test_entries_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(api_job(WORKLOAD, 2), "a", wall_s=1.5)
        store.save(api_job(WORKLOAD, 3), "b", wall_s=0.5)
        entries = store.entries()
        assert len(entries) == 2
        assert {m["workload"] for m in entries} == {WORKLOAD}
        assert store.total_bytes() > 0
        assert store.clear() == 4  # 2 pickles + 2 meta sidecars
        assert store.entries() == []

    def test_env_override_resolves_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ArtifactStore().root == tmp_path / "elsewhere"


# -- scheduler: determinism and caching -------------------------------------


class TestFarmExecution:
    JOBS = [api_job(WORKLOAD, 2), api_job(OTHER, 2), sim_job(WORKLOAD, 1)]

    def test_parallel_matches_serial(self, tmp_path):
        parallel = Farm(store=ArtifactStore(tmp_path / "p"), jobs=3).run(
            self.JOBS
        )
        serial = Farm(store=ArtifactStore(tmp_path / "s"), jobs=1).run(
            self.JOBS
        )
        for job in self.JOBS[:2]:
            assert parallel[job] == serial[job]
        psim, ssim = parallel[self.JOBS[2]], serial[self.JOBS[2]]
        assert psim.stats == ssim.stats
        assert psim.memory == ssim.memory

    def test_warm_cache_hits_without_execution(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = Farm(store=store, jobs=2)
        cold.run(self.JOBS[:2])
        assert cold.telemetry.cache_hits == 0
        warm = Farm(store=ArtifactStore(tmp_path), jobs=2)
        results = warm.run(self.JOBS[:2])
        assert warm.telemetry.cache_hits == 2
        assert len(results) == 2

    def test_no_cache_writes_nothing(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=1, use_cache=False)
        farm.run([api_job(WORKLOAD, 2)])
        assert ArtifactStore(tmp_path).entries() == []

    def test_duplicate_jobs_deduplicated(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=1)
        results = farm.run([api_job(WORKLOAD, 2), api_job(WORKLOAD, 2)])
        assert len(results) == 1
        assert len(farm.telemetry.records) == 1


# -- checkpoint / resume ----------------------------------------------------


class _InterruptAfter:
    """Raise KeyboardInterrupt once N frames have completed."""

    def __init__(self, frames: int):
        self.frames = frames
        self.seen: list[int] = []

    def __call__(self, sim, frames_done: int) -> None:
        self.seen.append(frames_done)
        if frames_done >= self.frames:
            raise KeyboardInterrupt


class TestCheckpointResume:
    def test_interrupted_sim_resumes_from_checkpoint(self, tmp_path):
        job = sim_job(WORKLOAD, 3)
        store = ArtifactStore(tmp_path)

        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(job, store, on_frame=_InterruptAfter(1))
        assert store.checkpoint_path(job).exists()

        tracker = _InterruptAfter(10**9)  # record, never fire
        resumed = run_checkpointed(job, store, on_frame=tracker)
        assert tracker.seen == [2, 3]  # frame 1 came from the checkpoint
        assert not store.checkpoint_path(job).exists()

        fresh = run_checkpointed(job, None)
        assert resumed.stats == fresh.stats
        assert resumed.frame_stats == fresh.frame_stats
        assert resumed.memory == fresh.memory

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        from repro.farm.checkpoint import build_job_workload

        job = sim_job(WORKLOAD, 2)
        store = ArtifactStore(tmp_path)
        workload = build_job_workload(job)
        sim = workload.simulator(job.config)
        full = sim.run_trace(workload.trace(frames=2), max_frames=2)
        store.save_checkpoint(job, sim)
        # All frames already done: finishing must not simulate anything.
        tracker = _InterruptAfter(10**9)
        result = run_checkpointed(job, store, on_frame=tracker)
        assert tracker.seen == []
        assert result.stats == full.stats

    def test_checkpoint_key_isolation(self, tmp_path):
        """A checkpoint for one budget is never resumed for another."""
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(sim_job(WORKLOAD, 3), store, on_frame=_InterruptAfter(1))
        tracker = _InterruptAfter(10**9)
        run_checkpointed(sim_job(WORKLOAD, 2), store, on_frame=tracker)
        assert tracker.seen == [1, 2]  # started from scratch


# -- worker crash / hang recovery -------------------------------------------


def _crash_once_worker(job, cache_dir, checkpoint_every):
    marker = pathlib.Path(cache_dir) / f"crashed-{job.key()}"
    if not marker.exists():
        marker.write_text("x")
        os._exit(13)  # simulate a hard worker crash (kills the pool)
    return f"recovered:{job.workload}"


def _hang_once_worker(job, cache_dir, checkpoint_every):
    marker = pathlib.Path(cache_dir) / f"hung-{job.key()}"
    if not marker.exists():
        marker.write_text("x")
        time.sleep(60)
    return f"recovered:{job.workload}"


def _always_raises_worker(job, cache_dir, checkpoint_every):
    raise ValueError("deterministic failure")


class TestCrashRecovery:
    JOBS = [api_job(WORKLOAD, 2), api_job(OTHER, 2)]

    def test_retry_after_worker_crash(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=2, retries=3)
        results = farm.run(self.JOBS, worker=_crash_once_worker)
        assert results == {
            job: f"recovered:{job.workload}" for job in self.JOBS
        }
        assert farm.telemetry.retries >= 1

    def test_timeout_kills_and_retries(self, tmp_path):
        farm = Farm(
            store=ArtifactStore(tmp_path), jobs=2, retries=3, timeout=5.0
        )
        start = time.perf_counter()
        results = farm.run([self.JOBS[0]] + [self.JOBS[1]], worker=_hang_once_worker)
        assert time.perf_counter() - start < 55  # did not wait out the hang
        assert len(results) == 2

    def test_deterministic_exception_surfaces_immediately(self, tmp_path):
        farm = Farm(store=ArtifactStore(tmp_path), jobs=2, retries=3)
        with pytest.raises(FarmError, match="deterministic failure"):
            farm.run(self.JOBS, worker=_always_raises_worker)

    def test_fallback_runs_serial_after_repeated_crashes(self, tmp_path):
        # retries=1: the first broken round sends jobs straight to the
        # in-parent serial fallback (markers exist by then, so it succeeds).
        farm = Farm(store=ArtifactStore(tmp_path), jobs=2, retries=1)
        results = farm.run(self.JOBS, worker=_crash_once_worker)
        assert len(results) == 2
        assert any(r.source == "fallback" for r in farm.telemetry.records)


# -- runner integration (stale-results hazard) -------------------------------


class TestRunnerFarmIntegration:
    def test_memo_keyed_by_frame_budget(self, tmp_path):
        """Two budgets through one farm/store never share results."""
        store = ArtifactStore(tmp_path)
        small = Runner(
            ExperimentConfig(api_frames=2, sim_frames=1, geometry_frames=1),
            farm=Farm(store=store, jobs=1),
        )
        large = Runner(
            ExperimentConfig(api_frames=3, sim_frames=1, geometry_frames=1),
            farm=Farm(store=store, jobs=1),
        )
        assert small.api(WORKLOAD).frame_count == 2
        assert large.api(WORKLOAD).frame_count == 3

    def test_default_runner_tracks_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_API_FRAMES", "3")
        first = default_runner()
        assert first.config.api_frames == 3
        monkeypatch.setenv("REPRO_API_FRAMES", "5")
        second = default_runner()
        assert second.config.api_frames == 5
        assert second is not first

    def test_runner_parallel_prefetch_matches_serial(self, tmp_path):
        config = ExperimentConfig(api_frames=2, sim_frames=1, geometry_frames=1)
        parallel = Runner(
            config, farm=Farm(store=ArtifactStore(tmp_path / "p"), jobs=2)
        )
        parallel.prefetch(
            api_names=[WORKLOAD, OTHER], sim_names=[], geometry_names=[]
        )
        serial = Runner(config, use_cache=False)
        assert parallel.api(WORKLOAD) == serial.api(WORKLOAD)
        assert parallel.api(OTHER) == serial.api(OTHER)
