"""Tests for primitive assembly rules."""

import numpy as np
import pytest

from repro.geometry.primitives import (
    PrimitiveType,
    assemble_triangles,
    indices_for_triangles,
    primitive_count,
    unique_vertex_fraction,
)


class TestPrimitiveCount:
    @pytest.mark.parametrize(
        "n,prim,expected",
        [
            (9, PrimitiveType.TRIANGLE_LIST, 3),
            (10, PrimitiveType.TRIANGLE_LIST, 3),
            (3, PrimitiveType.TRIANGLE_STRIP, 1),
            (9, PrimitiveType.TRIANGLE_STRIP, 7),
            (9, PrimitiveType.TRIANGLE_FAN, 7),
            (2, PrimitiveType.TRIANGLE_LIST, 0),
            (0, PrimitiveType.TRIANGLE_FAN, 0),
        ],
    )
    def test_counts(self, n, prim, expected):
        assert primitive_count(n, prim) == expected

    @pytest.mark.parametrize("prim", list(PrimitiveType))
    @pytest.mark.parametrize("tris", [1, 2, 7, 100])
    def test_inverse(self, prim, tris):
        n = indices_for_triangles(tris, prim)
        assert primitive_count(n, prim) == tris


class TestAssembly:
    def test_list(self):
        tris = assemble_triangles(np.arange(6), PrimitiveType.TRIANGLE_LIST)
        assert tris.tolist() == [[0, 1, 2], [3, 4, 5]]

    def test_strip_winding_alternates(self):
        tris = assemble_triangles(np.arange(5), PrimitiveType.TRIANGLE_STRIP)
        assert tris.tolist() == [[0, 1, 2], [2, 1, 3], [2, 3, 4]]

    def test_fan_pivots_on_first(self):
        tris = assemble_triangles(np.arange(5), PrimitiveType.TRIANGLE_FAN)
        assert tris.tolist() == [[0, 1, 2], [0, 2, 3], [0, 3, 4]]

    def test_too_few_indices(self):
        tris = assemble_triangles(np.array([0, 1]), PrimitiveType.TRIANGLE_STRIP)
        assert tris.shape == (0, 3)

    def test_strip_consistent_orientation(self):
        """Alternating winding preserves geometric orientation on a quad row."""
        # positions: a zig-zag strip in the plane
        positions = np.array(
            [[0, 0], [0, 1], [1, 0], [1, 1], [2, 0], [2, 1]], dtype=float
        )
        tris = assemble_triangles(np.arange(6), PrimitiveType.TRIANGLE_STRIP)
        signs = []
        for t in tris:
            a, b, c = positions[t]
            cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
            signs.append(np.sign(cross))
        assert len(set(signs)) == 1  # all the same facing


class TestUniqueFraction:
    def test_all_unique(self):
        assert unique_vertex_fraction(np.arange(9)) == 1.0

    def test_shared(self):
        assert unique_vertex_fraction(np.array([0, 1, 2, 0, 1, 2])) == 0.5

    def test_empty(self):
        assert unique_vertex_fraction(np.array([])) == 0.0
