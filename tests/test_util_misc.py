"""Tests for Morton codes, ASCII plotting and table formatting."""

import numpy as np
import pytest

from repro.util.asciiplot import ascii_series, sparkline
from repro.util.morton import demorton2d, morton2d
from repro.util.tables import format_table


class TestMorton:
    def test_known_values(self):
        assert int(morton2d(0, 0)) == 0
        assert int(morton2d(1, 0)) == 1
        assert int(morton2d(0, 1)) == 2
        assert int(morton2d(1, 1)) == 3
        assert int(morton2d(2, 0)) == 4

    def test_roundtrip_vector(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 1 << 16, size=500)
        ys = rng.integers(0, 1 << 16, size=500)
        code = morton2d(xs, ys)
        rx, ry = demorton2d(code)
        assert np.array_equal(rx, xs.astype(np.uint64))
        assert np.array_equal(ry, ys.astype(np.uint64))

    def test_locality(self):
        # Adjacent cells differ by small code deltas most of the time.
        a = int(morton2d(10, 10))
        b = int(morton2d(11, 10))
        assert abs(a - b) < 64


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0] * 10, width=10)
        assert len(line) == 10
        assert len(set(line)) == 1

    def test_ramp_monotone(self):
        line = sparkline(list(range(100)), width=20)
        assert line[0] == " " and line[-1] == "@"


class TestAsciiSeries:
    def test_contains_legend_and_title(self):
        chart = ascii_series({"a": [1, 2, 3], "b": [3, 2, 1]}, title="T")
        assert "T" in chart
        assert "o=a" in chart and "x=b" in chart

    def test_logy_handles_zero(self):
        chart = ascii_series({"a": [0, 10, 100]}, logy=True)
        assert "log10" in chart

    def test_empty_series(self):
        assert ascii_series({"a": []}, title="t") == "t"


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "n"], [["x", 1], ["longer", 23]])
        lines = text.splitlines()
        assert lines[1].startswith("-")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_numbers_right_aligned(self):
        text = format_table(["v"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")

    def test_floats_formatted(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.142" in text

    def test_thousands_separator(self):
        text = format_table(["v"], [[123456]])
        assert "123,456" in text
