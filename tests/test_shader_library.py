"""Tests for the shader program builders."""

import numpy as np
import pytest

from repro.shader import library
from repro.shader.interpreter import ShaderInterpreter
from repro.shader.program import ShaderStage
from repro.util import mathutil as mu


class TestVertexBuilder:
    @pytest.mark.parametrize("length", [12, 16, 20, 23, 28, 38])
    def test_exact_length(self, length):
        prog = library.build_vertex_program("p", length)
        assert prog.instruction_count == length
        assert prog.stage is ShaderStage.VERTEX

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            library.build_vertex_program("p", 5)

    def test_unlit_variant(self):
        prog = library.build_vertex_program("p", 12, lit=False)
        assert prog.instruction_count == 12

    def test_uv2_variant(self):
        prog = library.build_vertex_program("p", 14, uv_sets=2)
        assert prog.instruction_count == 14
        with pytest.raises(ValueError):
            library.build_vertex_program("p", 14, uv_sets=3)

    def test_transform_is_real(self):
        """The built program must compute a correct MVP transform."""
        prog = library.build_vertex_program("p", 20)
        mvp = mu.perspective(60, 1.0, 0.1, 100) @ mu.look_at((0, 0, 5), (0, 0, 0))
        constants = {i: tuple(mvp[i]) for i in range(4)}
        constants.update({8 + i: tuple(np.eye(4)[i]) for i in range(3)})
        interp = ShaderInterpreter()
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        res = interp.run(
            prog,
            {
                0: pos,
                1: np.zeros((2, 2)),
                2: np.tile([0.0, 1.0, 0.0], (2, 1)),
                3: np.ones((2, 4)),
                4: np.zeros((2, 3)),
                5: np.zeros((2, 2)),
            },
            constants=constants,
        )
        expected = mu.transform_points(mvp, pos)
        assert np.allclose(res.output(0), expected)

    def test_lighting_writes_color(self):
        prog = library.build_vertex_program("p", 20, lit=True)
        constants = {i: (1.0 if i == j else 0.0, *(0.0,) * 3) for j, i in enumerate(range(4))}
        # Simple identity-ish MVP plus model rows.
        ident = np.eye(4)
        constants = {i: tuple(ident[i]) for i in range(4)}
        constants.update({8 + i: tuple(ident[i]) for i in range(3)})
        interp = ShaderInterpreter()
        res = interp.run(
            prog,
            {
                0: np.array([[0.0, 0, 0]]),
                1: np.zeros((1, 2)),
                2: np.array([[0.35, 0.85, 0.40]]),
                3: np.ones((1, 4)),
                4: np.zeros((1, 3)),
                5: np.zeros((1, 2)),
            },
            constants=constants,
        )
        color = res.output(2)
        assert (color[0, :3] > 0.2).all()  # lit by default light direction


class TestFragmentBuilder:
    @pytest.mark.parametrize(
        "tex,length", [(0, 3), (1, 5), (2, 8), (4, 13), (4, 16), (5, 18)]
    )
    def test_exact_length_and_tex_count(self, tex, length):
        prog = library.build_fragment_program("p", tex, length)
        assert prog.instruction_count == length
        assert prog.texture_instruction_count == tex

    def test_lean_budget_drops_modulate(self):
        prog = library.build_fragment_program("p", 2, 4)
        assert prog.instruction_count == 4
        assert prog.texture_instruction_count == 2

    def test_alpha_test_has_kill(self):
        prog = library.build_fragment_program("p", 1, 8, alpha_test=True)
        assert prog.uses_kill

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            library.build_fragment_program("p", 3, 3)

    def test_executes_and_modulates(self):
        prog = library.build_fragment_program("p", 1, 6)

        def sampler(unit, coords):
            return np.full((coords.shape[0], 4), 0.5)

        interp = ShaderInterpreter(sampler=sampler)
        res = interp.run(
            prog,
            {1: np.zeros((4, 4)), 2: np.full((4, 4), 0.8)},
        )
        assert np.allclose(res.output(0), 0.4)  # tex * vertex color

    def test_kill_fires_below_threshold(self):
        prog = library.build_fragment_program("p", 1, 8, alpha_test=True)

        def sampler(unit, coords):
            out = np.ones((coords.shape[0], 4))
            out[0, 3] = 0.1  # below the 0.5 threshold
            return out

        interp = ShaderInterpreter(sampler=sampler)
        res = interp.run(prog, {1: np.zeros((2, 4)), 2: np.ones((2, 4))})
        assert list(res.kill_mask) == [True, False]


class TestCanned:
    def test_depth_only(self):
        prog = library.depth_only_fragment()
        assert prog.instruction_count == 1
        assert prog.texture_instruction_count == 0

    def test_fixed_function_translation(self):
        prog = library.fixed_function_vertex()
        assert prog.instruction_count == 23  # what Table IV reports for UT2004
