"""More API statistics edge cases and cross-checks against paper identities."""

import pytest

from repro.api.stats import FrameApiStats, WorkloadApiStats
from repro.experiments import paper
from repro.geometry.primitives import PrimitiveType
from repro.workloads import build_workload


class TestFrameApiStats:
    def test_zero_denominators(self):
        frame = FrameApiStats(frame=0)
        assert frame.avg_vertex_instructions == 0.0
        assert frame.avg_fragment_instructions == 0.0
        assert frame.avg_texture_instructions == 0.0
        assert frame.primitive_total == 0

    def test_workload_stats_empty(self):
        stats = WorkloadApiStats("w", 2)
        assert stats.avg_indices_per_batch == 0.0
        assert stats.avg_indices_per_frame == 0.0
        assert stats.avg_state_calls_per_frame == 0.0
        assert stats.primitive_share == {}
        assert stats.alu_to_texture_ratio == float("inf")

    def test_series_limit(self):
        stats = WorkloadApiStats("w", 2)
        for i in range(10):
            stats.add(FrameApiStats(frame=i, batches=i))
        assert stats.series("batches", limit=5) == [0, 1, 2, 3, 4]
        assert len(stats.series("batches", limit=None)) == 10


class TestPaperIdentities:
    """Identities the paper's own tables satisfy must hold for ours."""

    @pytest.mark.parametrize(
        "name",
        ["Doom3/trdemo2", "FEAR/built-in demo", "Half Life 2 LC/built-in"],
    )
    def test_triangle_list_assembly_identity(self, name):
        """For pure-TL workloads: primitives/frame == indices/frame / 3."""
        stats = build_workload(name).api_stats(frames=6)
        share = stats.primitive_share
        assert share.get(PrimitiveType.TRIANGLE_LIST, 0) == pytest.approx(1.0)
        assert stats.avg_primitives_per_frame == pytest.approx(
            stats.avg_indices_per_frame / 3.0, rel=1e-6
        )

    def test_index_bw_identity(self):
        """Table III: MB/s = indices/frame x bytes/index x fps."""
        stats = build_workload("Quake4/demo4").api_stats(frames=6)
        expected = stats.avg_indices_per_frame * 4 * 100
        assert stats.index_bandwidth_bytes_per_s(100) == pytest.approx(expected)

    def test_alu_tex_identity(self):
        """Table XII: ratio == (instructions - tex) / tex."""
        stats = build_workload("Oblivion/Anvil Castle").api_stats(frames=6)
        expected = (
            stats.avg_fragment_instructions - stats.avg_texture_instructions
        ) / stats.avg_texture_instructions
        assert stats.alu_to_texture_ratio == pytest.approx(expected)

    def test_paper_bytes_per_index_constant_per_engine(self):
        """idTech4 games use 32-bit indices, everyone else 16-bit."""
        for name in paper.WORKLOAD_ORDER:
            expected = paper.TABLE3[name][2]
            spec = build_workload(name).spec
            assert spec.index_size_bytes == expected, name
