"""Additional figure-level tests with a small-budget runner."""

import statistics

import pytest

from repro.experiments import ExperimentConfig, Runner, figures


@pytest.fixture(scope="module")
def runner():
    return Runner(ExperimentConfig(api_frames=8, sim_frames=2, geometry_frames=6))


class TestApiFigures:
    def test_figure2_units_are_megabytes(self, runner):
        fig = figures.figure2(runner)
        for name, series in fig.series.items():
            assert all(0.0 <= v < 16.0 for v in series), name

    def test_figure3_startup_spike(self, runner):
        fig = figures.figure3(runner)
        for name, series in fig.series.items():
            assert series[0] > series[2], name  # frame 0 includes uploads
        assert fig.logy

    def test_figure8_series_pairs(self, runner):
        fig = figures.figure8(runner)
        assert "Quake4/demo4 instr" in fig.series
        assert "FEAR/interval2 tex" in fig.series
        q4_instr = statistics.fmean(fig.series["Quake4/demo4 instr"][1:])
        q4_tex = statistics.fmean(fig.series["Quake4/demo4 tex"][1:])
        assert q4_instr > q4_tex > 0


class TestSimFigures:
    def test_figure6_funnel_monotone(self, runner):
        fig = figures.figure6(runner)
        for i in range(len(fig.series["indices"])):
            assert (
                fig.series["indices"][i]
                >= fig.series["assembled"][i]
                >= fig.series["traversed"][i]
            )

    def test_figure6_other_workload(self, runner):
        fig = figures.figure6(runner, workload="Quake4/demo4")
        assert "Quake4/demo4" in fig.title

    def test_figure7_stage_ordering(self, runner):
        fig = figures.figure7(runner)
        for i in range(len(fig.series["raster"])):
            assert fig.series["raster"][i] >= fig.series["zst"][i] >= 0

    def test_ascii_render_has_chart(self, runner):
        fig = figures.figure7(runner)
        text = fig.as_text(width=40, height=6)
        assert "o=raster" in text


class TestCsvExport:
    def test_ragged_series_padded(self):
        fig = figures.Figure("F", "t", {"a": [1.0, 2.0], "b": [3.0]})
        csv = fig.as_csv()
        lines = csv.splitlines()
        assert lines[1] == "0,1,3"
        assert lines[2] == "1,2,"
