"""Tests for the vectorized shader interpreter."""

import numpy as np
import pytest

from repro.shader.interpreter import ShaderExecutionError, ShaderInterpreter
from repro.shader.program import assemble


def run(src, inputs, constants=None, sampler=None, count=None):
    interp = ShaderInterpreter(sampler=sampler)
    return interp.run(assemble(src), inputs, constants=constants, count=count)


class TestAluOps:
    def test_mov_add_mul(self):
        res = run(
            "ADD r0, v0, v1\nMUL o0, r0, v1",
            {0: np.array([[1.0, 2, 3, 4]]), 1: np.array([[2.0, 2, 2, 2]])},
        )
        assert np.allclose(res.output(0), [[6, 8, 10, 12]])

    def test_mad(self):
        res = run(
            "MAD o0, v0, v1, v2",
            {
                0: np.array([[2.0, 2, 2, 2]]),
                1: np.array([[3.0, 3, 3, 3]]),
                2: np.array([[1.0, 1, 1, 1]]),
            },
        )
        assert np.allclose(res.output(0), 7.0)

    def test_dp3_dp4(self):
        a = np.array([[1.0, 2, 3, 4]])
        res3 = run("DP3 o0, v0, v0", {0: a})
        res4 = run("DP4 o0, v0, v0", {0: a})
        assert np.allclose(res3.output(0), 14.0)
        assert np.allclose(res4.output(0), 30.0)

    def test_rcp_rsq(self):
        res = run("RCP o0, v0", {0: np.array([[4.0, 9, 9, 9]])})
        assert np.allclose(res.output(0), 0.25)
        res = run("RSQ o0, v0", {0: np.array([[4.0, 9, 9, 9]])})
        assert np.allclose(res.output(0), 0.5)

    def test_rcp_zero_is_inf(self):
        res = run("RCP o0, v0", {0: np.array([[0.0, 1, 1, 1]])})
        assert np.isinf(res.output(0)).all()

    def test_min_max_slt_sge(self):
        a = {0: np.array([[1.0, 5, 1, 5]]), 1: np.array([[3.0, 3, 3, 3]])}
        assert np.allclose(run("MIN o0, v0, v1", a).output(0), [[1, 3, 1, 3]])
        assert np.allclose(run("MAX o0, v0, v1", a).output(0), [[3, 5, 3, 5]])
        assert np.allclose(run("SLT o0, v0, v1", a).output(0), [[1, 0, 1, 0]])
        assert np.allclose(run("SGE o0, v0, v1", a).output(0), [[0, 1, 0, 1]])

    def test_frc_lrp(self):
        res = run("FRC o0, v0", {0: np.array([[1.25, -0.25, 2.5, 0]])})
        assert np.allclose(res.output(0), [[0.25, 0.75, 0.5, 0]])
        res = run(
            "LRP o0, v0, v1, v2",
            {
                0: np.full((1, 4), 0.25),
                1: np.full((1, 4), 8.0),
                2: np.full((1, 4), 4.0),
            },
        )
        assert np.allclose(res.output(0), 5.0)

    def test_xpd(self):
        res = run(
            "XPD o0, v0, v1",
            {0: np.array([[1.0, 0, 0, 0]]), 1: np.array([[0.0, 1, 0, 0]])},
        )
        assert np.allclose(res.output(0)[0, :3], [0, 0, 1])

    def test_nrm(self):
        res = run("NRM o0, v0", {0: np.array([[3.0, 4, 0, 9]])})
        assert np.allclose(res.output(0)[0, :3], [0.6, 0.8, 0.0])

    def test_cmp(self):
        res = run(
            "CMP o0, v0, v1, v2",
            {
                0: np.array([[-1.0, 1, -1, 1]]),
                1: np.full((1, 4), 10.0),
                2: np.full((1, 4), 20.0),
            },
        )
        assert np.allclose(res.output(0), [[10, 20, 10, 20]])

    def test_lg2_ex2_roundtrip(self):
        res = run("LG2 r0, v0\nEX2 o0, r0", {0: np.full((1, 4), 8.0)})
        assert np.allclose(res.output(0), 8.0)


class TestSemantics:
    def test_swizzle_and_negate(self):
        res = run("MOV o0, -v0.wzyx", {0: np.array([[1.0, 2, 3, 4]])})
        assert np.allclose(res.output(0), [[-4, -3, -2, -1]])

    def test_write_mask_updates_lane_only(self):
        res = run(
            "MOV r0, v0\nMOV r0.x, v1\nMOV o0, r0",
            {0: np.zeros((1, 4)), 1: np.full((1, 4), 7.0)},
        )
        assert np.allclose(res.output(0), [[7, 0, 0, 0]])

    def test_scalar_swizzle_replicates(self):
        res = run("MOV o0, v0.w", {0: np.array([[1.0, 2, 3, 4]])})
        assert np.allclose(res.output(0), 4.0)

    def test_short_inputs_padded_opengl_style(self):
        res = run("MOV o0, v0", {0: np.array([[1.0, 2.0]])})
        assert np.allclose(res.output(0), [[1, 2, 0, 1]])

    def test_constants_at_runtime_override(self):
        prog = assemble("MOV o0, c0", constants={0: (1.0, 1, 1, 1)})
        interp = ShaderInterpreter()
        res = interp.run(prog, {}, count=2, constants={0: (5.0, 5, 5, 5)})
        assert np.allclose(res.output(0), 5.0)

    def test_unwritten_register_raises(self):
        with pytest.raises(ShaderExecutionError):
            run("MOV o0, r5", {0: np.zeros((1, 4))})

    def test_missing_output_raises(self):
        res = run("MOV r0, v0", {0: np.zeros((1, 4))})
        with pytest.raises(ShaderExecutionError):
            res.output(0)

    def test_instruction_count_scales_with_elements(self):
        res = run("MOV r0, v0\nMOV o0, r0", {0: np.zeros((10, 4))})
        assert res.instructions_executed == 20


class TestKillAndTexture:
    def test_kill_any_negative_component(self):
        res = run("KIL v0\nMOV o0, v0", {0: np.array([[1.0, 1, 1, 1], [1, -0.1, 1, 1]])})
        assert list(res.kill_mask) == [False, True]

    def test_kill_accumulates(self):
        res = run(
            "KIL v0\nKIL v1\nMOV o0, v0",
            {
                0: np.array([[-1.0, 0, 0, 0], [1, 1, 1, 1]]),
                1: np.array([[1.0, 1, 1, 1], [-1, 0, 0, 0]]),
            },
        )
        assert list(res.kill_mask) == [True, True]

    def test_texture_callback_invoked(self):
        seen = {}

        def sampler(unit, coords):
            seen["unit"] = unit
            seen["coords"] = coords.copy()
            return np.full((coords.shape[0], 4), 0.5)

        res = run(
            "TEX o0, v1, s3",
            {1: np.array([[0.25, 0.75, 0, 1]])},
            sampler=sampler,
        )
        assert seen["unit"] == 3
        assert np.allclose(res.output(0), 0.5)
        assert res.texture_requests == 1

    def test_txp_divides_by_w(self):
        def sampler(unit, coords):
            assert np.allclose(coords[0, :2], [0.5, 1.0])
            return np.zeros((coords.shape[0], 4))

        run("TXP o0, v1, s0", {1: np.array([[1.0, 2.0, 0, 2.0]])}, sampler=sampler)

    def test_texture_without_sampler_raises(self):
        with pytest.raises(ShaderExecutionError):
            run("TEX o0, v1, s0", {1: np.zeros((1, 4))})
