"""Tests for engine internals: material tables, pass emission, uploads."""

import numpy as np
import pytest

from repro.api.commands import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    SetState,
    SetUniform,
    UploadResource,
)
from repro.workloads import build_workload, workload
from repro.workloads.engines import GameEngine, Material


@pytest.fixture(scope="module")
def doom3_engine():
    return build_workload("Doom3/trdemo2", sim=True).engine


@pytest.fixture(scope="module")
def ut_engine():
    return build_workload("UT2004/Primeval", sim=True).engine


class TestMaterialTable:
    def test_forty_slots(self, doom3_engine):
        assert len(doom3_engine.materials) == 40

    def test_weights_respected(self, doom3_engine):
        """Largest-remainder allocation reproduces the variant weights."""
        variants = doom3_engine.params.fragment_variants
        counts = {}
        for mat in doom3_engine.materials:
            counts[mat.fragment_program] = counts.get(mat.fragment_program, 0) + 1
        for i, (_, _, weight, _) in enumerate(variants):
            name = f"{doom3_engine.prefix}.f{i}"
            assert counts.get(name, 0) == pytest.approx(weight * 40, abs=1.0)

    def test_alpha_materials_have_kill_programs(self, ut_engine):
        for mat in ut_engine.materials:
            if mat.alpha_test:
                program = ut_engine.programs[mat.fragment_program]
                assert program.uses_kill

    def test_textures_match_program_units(self, doom3_engine):
        for mat in doom3_engine.materials:
            program = doom3_engine.programs[mat.fragment_program]
            assert len(mat.textures) == program.texture_instruction_count

    def test_sort_key_orders_transparency_last(self):
        opaque = Material(0, "f", "v", ("t",))
        alpha = Material(1, "f", "v", ("t",), alpha_test=True)
        blend = Material(2, "f", "v", ("t",), blend_add=True)
        assert opaque.sort_key < alpha.sort_key < blend.sort_key

    def test_allocate_largest_remainder(self, doom3_engine):
        assert doom3_engine._allocate([0.5, 0.5], 5) in ([3, 2], [2, 3])
        assert doom3_engine._allocate([1.0], 7) == [7]
        assert sum(doom3_engine._allocate([0.33, 0.33, 0.34], 40)) == 40


class TestFrameEmission:
    def frame(self, engine, index, total=8):
        path = engine._build_path(total, 4 / 3)
        return engine.frame_calls(index, total, path)

    def test_mvp_set_before_every_draw(self, doom3_engine):
        calls = self.frame(doom3_engine, 2)
        last_mvp = None
        for call in calls:
            if isinstance(call, SetUniform) and call.name == "mvp":
                last_mvp = call.value
            if isinstance(call, Draw):
                assert last_mvp is not None

    def test_stencil_clear_after_each_light(self, doom3_engine):
        calls = self.frame(doom3_engine, 2)
        stencil_clears = [
            c
            for c in calls
            if isinstance(c, Clear) and c.stencil and not c.depth and not c.color
        ]
        lights = doom3_engine.params.lights * doom3_engine.params.lit_rooms
        assert len(stencil_clears) == lights

    def test_volume_draws_reference_volume_meshes(self, doom3_engine):
        calls = self.frame(doom3_engine, 2)
        stencil, func = False, "always"
        for call in calls:
            if isinstance(call, SetState):
                if call.name == "stencil_test":
                    stencil = call.value
                elif call.name == "stencil_func":
                    func = call.value
            if isinstance(call, Draw) and stencil and func == "always":
                assert ".vol." in call.mesh

    def test_forward_frame_has_no_stencil(self, ut_engine):
        calls = self.frame(ut_engine, 2)
        for call in calls:
            if isinstance(call, SetState) and call.name == "stencil_test":
                assert call.value is False

    def test_forward_extra_passes_use_equal_depth(self, ut_engine):
        calls = self.frame(ut_engine, 2)
        saw_equal = any(
            isinstance(c, SetState)
            and c.name == "depth_func"
            and c.value == "equal"
            for c in calls
        )
        assert saw_equal  # UT2004 is a multipass engine

    def test_upload_burst_only_on_first_frame(self, doom3_engine):
        first = self.frame(doom3_engine, 0)
        later = self.frame(doom3_engine, 3)
        assert any(isinstance(c, UploadResource) for c in first)
        assert not any(isinstance(c, UploadResource) for c in later)

    def test_transition_frames_reupload(self):
        engine = build_workload("FEAR/interval2").engine
        total = 100
        path = engine._build_path(total, 4 / 3)
        point = engine.params.transition_points[0]
        frame_idx = int(point * total)
        calls = engine.frame_calls(frame_idx, total, path)
        uploads = [c for c in calls if isinstance(c, UploadResource)]
        assert len(uploads) >= engine.params.transition_calls

    def test_material_binds_are_deduplicated(self, ut_engine):
        calls = self.frame(ut_engine, 2)
        # Consecutive draws with the same material must not re-bind.
        binds = 0
        draws = 0
        for call in calls:
            if isinstance(call, BindProgram) and call.stage == "fragment":
                binds += 1
            if isinstance(call, Draw):
                draws += 1
        assert binds < draws  # sorting by material amortizes binds


class TestVisibility:
    def test_room_window(self, doom3_engine):
        path = doom3_engine._build_path(16, 4 / 3)
        shot = path.shot(8)
        visible = doom3_engine._visible_objects(8, path, shot)
        rooms = {o.room for o in visible}
        current = path.room_at(8)
        assert current in rooms
        assert max(rooms) - min(rooms) <= (
            doom3_engine.params.visible_rooms_ahead
            + doom3_engine.params.visible_rooms_behind
        )

    def test_terrain_visibility_distance_bound(self):
        engine = build_workload("Oblivion/Anvil Castle", sim=True).engine
        path = engine._build_path(10, 4 / 3)
        shot = path.shot(1)
        visible = engine._visible_objects(1, path, shot)
        assert visible
        limit = engine.params.terrain_extent * 0.42
        for obj in visible:
            distance = np.linalg.norm(obj.center - shot.position)
            assert distance - obj.radius <= limit + 1e-6
