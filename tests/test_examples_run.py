"""Smoke tests: every example script must run end-to-end."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, tmp_path, monkeypatch):
        out = run_example("quickstart.py")
        assert "vertex cache hit rate" in out
        assert "bottleneck stage" in out
        assert (EXAMPLES.parent / "quickstart.ppm").exists()

    def test_characterize_game_ogl(self):
        out = run_example(
            "characterize_game.py", "Quake4/demo4",
            "--api-frames", "6", "--sim-frames", "1",
        )
        assert "API-level characterization" in out
        assert "Microarchitectural characterization" in out

    def test_characterize_game_d3d_stops_at_api(self):
        out = run_example(
            "characterize_game.py", "FEAR/interval2", "--api-frames", "4"
        )
        assert "Direct3D-only" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "NebulaStrike" not in out  # name only used internally
        assert "leading BW consumer" in out

    def test_shadow_demo(self, tmp_path):
        out = run_example(
            "shadow_demo.py", "--frames", "1", "--out-dir", str(tmp_path)
        )
        assert "wrote 1 frames" in out
        assert list(tmp_path.glob("*.ppm"))

    def test_calibrate_subset(self):
        out = run_example(
            "calibrate.py", "Riddick/MainFrame", "--frames", "6"
        )
        assert "measured/target" in out

    def test_microbench_report(self):
        out = run_example("microbench_report.py")
        assert "texture_rate" in out and "fill_rate" in out

    def test_profile_draws(self):
        out = run_example("profile_draws.py", "UT2004/Primeval")
        assert "Top 10 draws" in out
        assert "frame totals" in out
