"""Tests for vertex cache simulation and index reordering."""

import numpy as np
import pytest

from repro.geometry.generators import character_mesh, grid_mesh
from repro.geometry.optimize import optimize_for_vertex_cache, simulate_vertex_cache


class TestCacheSim:
    def test_empty(self):
        assert simulate_vertex_cache(np.array([])) == 0.0

    def test_all_unique_misses(self):
        assert simulate_vertex_cache(np.arange(100), cache_size=16) == 0.0

    def test_immediate_reuse_hits(self):
        indices = np.array([0, 1, 2, 0, 1, 2])
        assert simulate_vertex_cache(indices, cache_size=16) == 0.5

    def test_fifo_evicts_oldest(self):
        # Reference 0..4, then 0 again with cache of 4: 0 was evicted.
        indices = np.array([0, 1, 2, 3, 4, 0])
        assert simulate_vertex_cache(indices, cache_size=4) == 0.0

    def test_lru_keeps_hot_entry(self):
        # With LRU, re-touching 0 keeps it resident.
        indices = np.array([0, 1, 0, 2, 0, 3, 0, 4, 0])
        lru = simulate_vertex_cache(indices, cache_size=4, policy="lru")
        fifo = simulate_vertex_cache(indices, cache_size=4, policy="fifo")
        assert lru >= fifo

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            simulate_vertex_cache(np.arange(3), policy="random")

    def test_strip_ordered_grid_near_two_thirds(self):
        """The paper's Fig. 5 observation: adjacent-triangle lists reach ~66%."""
        mesh = grid_mesh("g", 30, 30, 10, 10)
        rate = simulate_vertex_cache(mesh.indices, cache_size=16)
        assert abs(rate - 2.0 / 3.0) < 0.05


class TestTipsify:
    def test_preserves_triangle_set(self):
        mesh = character_mesh("c", seed=11)
        tris = mesh.triangles()
        reordered = optimize_for_vertex_cache(tris)
        assert reordered.shape == tris.shape
        original = {tuple(sorted(map(int, t))) for t in tris}
        new = {tuple(sorted(map(int, t))) for t in reordered}
        assert original == new

    def test_improves_shuffled_order(self):
        mesh = grid_mesh("g", 24, 24, 10, 10)
        tris = mesh.triangles()
        rng = np.random.default_rng(0)
        shuffled = tris[rng.permutation(tris.shape[0])]
        before = simulate_vertex_cache(shuffled.reshape(-1), cache_size=16)
        after = simulate_vertex_cache(
            optimize_for_vertex_cache(shuffled, cache_size=16).reshape(-1),
            cache_size=16,
        )
        assert after > before + 0.15

    def test_empty_input(self):
        out = optimize_for_vertex_cache(np.empty((0, 3), dtype=np.int64))
        assert out.shape == (0, 3)

    def test_single_triangle(self):
        out = optimize_for_vertex_cache(np.array([[0, 1, 2]]))
        assert out.tolist() == [[0, 1, 2]]

    def test_disconnected_components_all_emitted(self):
        tris = np.array([[0, 1, 2], [10, 11, 12], [20, 21, 22]])
        out = optimize_for_vertex_cache(tris)
        assert out.shape[0] == 3
