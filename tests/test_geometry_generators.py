"""Tests for procedural mesh generators and shadow-volume extrusion."""

import numpy as np
import pytest

from repro.geometry.generators import (
    box_mesh,
    character_mesh,
    cylinder_mesh,
    extrude_shadow_volume,
    grid_mesh,
    room_mesh,
    terrain_mesh,
    value_noise_height,
)
from repro.geometry.primitives import PrimitiveType


def signed_volume(mesh) -> float:
    t = mesh.triangles()
    a = mesh.positions[t[:, 0]]
    b = mesh.positions[t[:, 1]]
    c = mesh.positions[t[:, 2]]
    return float(np.sum(np.einsum("ij,ij->i", a, np.cross(b, c))) / 6.0)


def edge_balance(mesh) -> bool:
    """True when every edge is shared by exactly two opposed triangles.

    Vertices are welded by position first — several generators (box faces)
    emit per-face vertices, which is still geometrically watertight.
    """
    keys = np.round(mesh.positions * 4096.0).astype(np.int64)
    _, weld = np.unique(keys, axis=0, return_inverse=True)
    counts = {}
    for tri in weld[mesh.triangles()]:
        a, b, c = (int(v) for v in tri)
        if a == b or b == c or a == c:
            continue
        for u, v in ((a, b), (b, c), (c, a)):
            key = (min(u, v), max(u, v))
            counts[key] = counts.get(key, 0) + (1 if u < v else -1)
    return all(v == 0 for v in counts.values())


class TestGrid:
    def test_counts(self):
        mesh = grid_mesh("g", 4, 3, 8, 6)
        assert mesh.vertex_count == 5 * 4
        assert mesh.triangle_count == 4 * 3 * 2

    def test_normals_up(self):
        mesh = grid_mesh("g", 4, 4, 8, 8)
        tris = mesh.triangles()
        n = np.cross(
            mesh.positions[tris[:, 1]] - mesh.positions[tris[:, 0]],
            mesh.positions[tris[:, 2]] - mesh.positions[tris[:, 0]],
        )
        assert (n[:, 1] > 0).all()

    def test_strip_variant_counts_degenerates(self):
        mesh = grid_mesh("g", 4, 3, 8, 6, primitive=PrimitiveType.TRIANGLE_STRIP)
        # Real triangles plus the degenerate stitches between rows.
        assert mesh.triangle_count >= 4 * 3 * 2

    def test_height_function_applied(self):
        mesh = grid_mesh("g", 4, 4, 8, 8, height_fn=lambda x, z: x * 0.0 + 2.0)
        assert np.allclose(mesh.positions[:, 1], 2.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            grid_mesh("g", 0, 3, 1, 1)


class TestSolids:
    def test_box_closed_and_outward(self):
        mesh = box_mesh("b", (2, 2, 2), subdivisions=2)
        assert signed_volume(mesh) == pytest.approx(8.0)
        assert edge_balance(mesh)

    def test_room_inward(self):
        mesh = room_mesh("r", (2, 2, 2), subdivisions=1)
        assert signed_volume(mesh) == pytest.approx(-8.0)

    def test_cylinder_closed(self):
        mesh = cylinder_mesh("c", 1.0, 2.0, segments=16, rings=3)
        # Closed solid with positive volume close to pi*r^2*h.
        assert signed_volume(mesh) == pytest.approx(np.pi * 2.0, rel=0.1)
        assert edge_balance(mesh)

    def test_character_closed(self):
        mesh = character_mesh("ch", seed=7)
        assert signed_volume(mesh) > 0
        assert edge_balance(mesh)

    def test_character_deterministic(self):
        a = character_mesh("a", seed=5)
        b = character_mesh("b", seed=5)
        assert np.allclose(a.positions, b.positions)

    def test_terrain_within_amplitude(self):
        mesh = terrain_mesh("t", seed=1, size=100.0, cells=16)
        assert mesh.positions[:, 1].max() <= 100.0 * 0.08 + 1e-9
        assert mesh.positions[:, 1].min() >= 0.0

    def test_value_noise_deterministic_and_bounded(self):
        h = value_noise_height(3, amplitude=2.0, feature_size=10.0)
        xs = np.linspace(0, 50, 100)
        ys = h(xs, xs)
        assert (ys >= 0).all() and (ys <= 2.0).all()
        assert np.allclose(ys, value_noise_height(3, 2.0, 10.0)(xs, xs))


class TestShadowVolume:
    def test_volume_closed(self):
        caster = cylinder_mesh("c", 0.5, 1.5, segments=10, rings=2)
        volume = extrude_shadow_volume(caster, (0.4, -1.0, 0.2), extrusion=10.0)
        assert volume.triangle_count > caster.triangle_count
        # z-fail correctness requires a closed volume.
        assert edge_balance(volume)

    def test_volume_extends_along_light(self):
        caster = character_mesh("ch", seed=2)
        direction = np.array([1.0, 0.0, 0.0])
        volume = extrude_shadow_volume(caster, direction, extrusion=25.0)
        span = volume.positions[:, 0].max() - caster.positions[:, 0].max()
        assert span == pytest.approx(25.0, abs=1.0)

    def test_vertices_welded(self):
        caster = cylinder_mesh("c", 0.5, 1.5, segments=8, rings=2)
        volume = extrude_shadow_volume(caster, (0, -1, 0), extrusion=5.0)
        keys = {tuple(np.round(p, 4)) for p in volume.positions}
        assert len(keys) == volume.vertex_count  # no duplicate positions

    def test_zero_direction_rejected(self):
        caster = cylinder_mesh("c", 0.5, 1.5)
        with pytest.raises(ValueError):
            extrude_shadow_volume(caster, (0, 0, 0))

    def test_empty_mesh_rejected(self):
        from repro.geometry.mesh import Mesh

        empty = Mesh("e", np.zeros((3, 3)) + np.arange(3)[:, None], [])
        with pytest.raises(ValueError):
            extrude_shadow_volume(empty, (0, -1, 0))
