"""Tests for the shader ISA: operands, instructions, assembler."""

import pytest

from repro.shader.isa import Instruction, Opcode, Operand
from repro.shader.program import assemble, ShaderStage


class TestOperand:
    def test_parse_plain(self):
        op = Operand.parse("r3")
        assert op.bank == "r" and op.index == 3
        assert op.swizzle == (0, 1, 2, 3) and not op.negate

    def test_parse_negated_swizzled(self):
        op = Operand.parse("-c4.xyzx")
        assert op.negate and op.bank == "c" and op.index == 4
        assert op.swizzle == (0, 1, 2, 0)

    def test_parse_color_components(self):
        assert Operand.parse("r0.rgba").swizzle == (0, 1, 2, 3)
        assert Operand.parse("r0.a").swizzle == (3,)

    def test_parse_rejects_garbage(self):
        for bad in ("q0", "r", "r0.q", "rx", ""):
            with pytest.raises(ValueError):
                Operand.parse(bad)

    def test_roundtrip_str(self):
        for text in ("r0", "-c4.xyzx", "o1.xy", "v2.w"):
            assert str(Operand.parse(text)) == text


class TestInstruction:
    def test_source_count_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, Operand.parse("r0"), (Operand.parse("r1"),))

    def test_texture_requires_sampler(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.TEX, Operand.parse("r0"), (Operand.parse("v1"),))

    def test_kill_takes_no_dest(self):
        with pytest.raises(ValueError):
            Instruction(
                Opcode.KIL, Operand.parse("r0"), (Operand.parse("r1"),)
            )

    def test_dest_bank_restricted(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MOV, Operand.parse("c0"), (Operand.parse("r0"),))

    def test_is_texture_flags(self):
        assert Opcode.TEX.is_texture and Opcode.TXP.is_texture
        assert not Opcode.MAD.is_texture
        assert Opcode.KIL.is_kill


class TestAssembler:
    def test_counts(self):
        prog = assemble(
            """
            # comment line
            DP4 o0.x, v0, c0
            TEX r0, v1, s0
            MUL r0, r0, v2
            KIL -r0.a
            MOV o0, r0
            """
        )
        assert prog.instruction_count == 5
        assert prog.texture_instruction_count == 1
        assert prog.alu_instruction_count == 3
        assert prog.uses_kill
        assert prog.samplers_used == (0,)

    def test_alu_tex_ratio(self):
        prog = assemble("TEX r0, v1, s0\nMUL r0, r0, r0\nADD r0, r0, r0\nMOV o0, r0")
        assert prog.alu_to_texture_ratio == pytest.approx(3.0)

    def test_ratio_infinite_without_tex(self):
        prog = assemble("MOV o0, v1")
        assert prog.alu_to_texture_ratio == float("inf")

    def test_unknown_opcode_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            assemble("MOV o0, v1\nFROB r0, r1")

    def test_missing_sampler_rejected(self):
        with pytest.raises(ValueError):
            assemble("TEX r0, v1")

    def test_stage_and_name_preserved(self):
        prog = assemble("MOV o0, v1", name="p", stage=ShaderStage.VERTEX)
        assert prog.name == "p" and prog.stage is ShaderStage.VERTEX

    def test_source_text_reassembles(self):
        source = "DP4 o0.x, v0, c0\nTEX r0, v1, s2\nKIL -r0.w\nMOV o0, r0"
        prog = assemble(source)
        again = assemble(prog.source_text())
        assert again.instruction_count == prog.instruction_count
        assert again.source_text() == prog.source_text()
