"""Legacy setup shim.

The offline environment lacks the `wheel` package, so PEP 660 editable
installs fail; this file lets `pip install -e .` fall back to
`setup.py develop`, which works without wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Workload Characterization of 3D Games' (IISWC 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
