"""Durability chaos suite for the characterization service.

The farm chaos suite (:mod:`repro.farm.chaos`) proves the *execution*
layer recovers bit-identically from injected faults; this suite proves
the same for the *service* layer built on top of it.  Each scenario
breaks the server in a specific way — ``kill -9`` mid-job, a dropped
WebSocket, slowloris and malformed HTTP, a corrupted journal, ENOSPC, a
hung execution lane — and asserts the durability contract: the server
stays live (or comes back), no accepted work is lost, and every recovered
result is bit-identical to an uninterrupted run (checked by artifact
SHA-256 against a fault-free reference farm).

Scenarios that must survive ``SIGKILL`` run the real ``repro serve`` CLI
in a subprocess; everything else uses an in-process
:class:`~repro.serve.server.ServerThread` for speed.  Fault injection
rides the same seeded ``REPRO_FAULTS`` plans as the farm suite, so runs
are deterministic.

Run it with ``repro chaos --suite serve`` (``--artifacts DIR`` copies
each scenario's journal and quarantine evidence out for CI upload).
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pathlib
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Callable, Iterator

from repro.farm import faults
from repro.farm.chaos import WORKLOAD, OTHER, ChaosFailure
from repro.farm.executor import Farm
from repro.farm.job import api_job, sim_job
from repro.farm.store import ArtifactStore
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, ServeConfig, ServerThread
from repro.util.tables import format_table

#: The job every recovery scenario must reproduce bit-identically: a real
#: 2-frame simulation — long enough that ``kill -9`` lands mid-run.
SIM_SPEC = ("sim", WORKLOAD, 2)
#: Fast job for liveness scenarios (WS resume, degraded mode).
API_SPEC = ("api", WORKLOAD, 2)

_LISTEN_RE = re.compile(r"listening on http://[^:]+:(\d+)")


class _ServeContext:
    """Per-run scratch state: scenario roots and the fault-free reference."""

    def __init__(self, seed: int, root: pathlib.Path,
                 artifacts_dir: pathlib.Path | None):
        self.seed = seed
        self.root = root
        self.artifacts_dir = artifacts_dir
        # Reference artifact SHA-256s from a direct, fault-free farm run —
        # the store's meta hash of the very bytes a client download must
        # match after any recovery.
        store = ArtifactStore(root / "reference")
        farm = Farm(store=store, jobs=1)
        self.reference_sha: dict[tuple, str] = {}
        for spec_args in (SIM_SPEC, API_SPEC):
            kind, workload, frames = spec_args
            job = (sim_job if kind == "sim" else api_job)(workload, frames)
            farm.run_one(job)
            self.reference_sha[spec_args] = store._read_meta(job)["sha256"]

    def plan(self, *specs: faults.FaultSpec) -> faults.FaultPlan:
        return faults.FaultPlan(
            faults=tuple(specs),
            seed=self.seed,
            state_dir=str(
                self.root / "fault-state" / f"{time.monotonic_ns()}"
            ),
        )

    def collect(self, name: str, cache: pathlib.Path) -> None:
        """Copy a scenario's journal + quarantine evidence for CI upload."""
        if self.artifacts_dir is None:
            return
        for sub in ("journal", "quarantine"):
            src = cache / sub
            if src.is_dir():
                dest = self.artifacts_dir / name / sub
                shutil.copytree(src, dest, dirs_exist_ok=True)


@contextlib.contextmanager
def _thread_server(cache: pathlib.Path, **overrides) -> Iterator[ServerThread]:
    """An in-process server on an ephemeral port over ``cache``."""
    config = ServeConfig(port=0, lanes=1, **overrides)
    server = ReproServer(config, store=ArtifactStore(cache))
    thread = ServerThread(server).start()
    try:
        yield thread
    finally:
        thread.stop()


def _spawn_server(cache: pathlib.Path) -> tuple[subprocess.Popen, int]:
    """Boot the real ``repro serve`` CLI; returns (process, port)."""
    src_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_root), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--lanes", "1", "--cache-dir", str(cache),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _LISTEN_RE.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise ChaosFailure("serve subprocess never announced its port")


def _served_sha(client: ServeClient, key: str) -> str:
    """Download the artifact, verifying the transport checksum."""
    blob, claimed = client.artifact(key)
    actual = hashlib.sha256(blob).hexdigest()
    if claimed and claimed != actual:
        raise ChaosFailure(
            f"artifact transport checksum mismatch for {key[:12]}"
        )
    return actual


# -- scenarios ---------------------------------------------------------------


def _kill9_recovery(ctx: _ServeContext) -> str:
    """SIGKILL mid-job; the restarted server recovers from the journal."""
    cache = ctx.root / "kill9-cache"
    proc, port = _spawn_server(cache)
    key = None
    try:
        client = ServeClient(port=port, client_id="chaos")
        client.wait_ready(60)
        key = client.submit(*SIM_SPEC)["job"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if client.status(key)["state"] in ("running", "done"):
                break
            time.sleep(0.02)
    finally:
        with contextlib.suppress(OSError):
            os.kill(proc.pid, signal.SIGKILL)
        with contextlib.suppress(subprocess.TimeoutExpired):
            proc.wait(timeout=30)
    if key is None:
        raise ChaosFailure("submission never reached the first server")
    proc2, port2 = _spawn_server(cache)
    try:
        client = ServeClient(port=port2, client_id="chaos")
        client.wait_ready(60)
        stats = client.stats()
        recovered = (
            stats["recovered_requeued"] + stats["recovered_served"]
        )
        if recovered < 1:
            raise ChaosFailure("restart recovered nothing from the journal")
        final = client.wait(key, timeout=600)
        if final["state"] != "done":
            raise ChaosFailure(
                f"recovered job ended {final['state']!r}: {final.get('error')}"
            )
        sha = _served_sha(client, key)
        if sha != ctx.reference_sha[SIM_SPEC]:
            raise ChaosFailure(
                "recovered result differs from the uninterrupted reference"
            )
        client.shutdown()
        with contextlib.suppress(subprocess.TimeoutExpired):
            proc2.wait(timeout=60)
    finally:
        with contextlib.suppress(OSError):
            os.kill(proc2.pid, signal.SIGKILL)
        ctx.collect("kill9-recovery", cache)
    verb = "requeued" if stats["recovered_requeued"] else "served from cache"
    return f"killed mid-job; restart {verb}, result bit-identical"


def _ws_resume(ctx: _ServeContext) -> str:
    """A dropped progress stream resumes from its replay cursor, gap-free."""
    cache = ctx.root / "ws-cache"
    with _thread_server(cache) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        key = client.submit(*API_SPEC)["job"]
        first: list[dict] = []
        for event in client.events(key, timeout=300):
            first.append(event)
            break  # drop the connection after one event, mid-stream
        if not first:
            raise ChaosFailure("no events before the simulated disconnect")
        cursor = first[-1]["seq"]
        resumed = list(client.events(key, timeout=300, after_seq=cursor))
        if not resumed:
            raise ChaosFailure("resume from cursor streamed nothing")
        if min(e["seq"] for e in resumed) <= cursor:
            raise ChaosFailure("resume replayed events before the cursor")
        seqs = [e["seq"] for e in first + resumed]
        if seqs != sorted(seqs) or len(seqs) != len(set(seqs)):
            raise ChaosFailure("events duplicated or reordered across resume")
        if resumed[-1]["event"] != "done":
            raise ChaosFailure(
                f"stream ended on {resumed[-1]['event']!r}, not the terminal"
            )
        ctx.collect("ws-resume", cache)
    return (
        f"disconnected after seq {cursor}, resumed {len(resumed)} event(s), "
        f"no gaps or duplicates"
    )


def _slowloris_malformed(ctx: _ServeContext) -> str:
    """Stalled and garbage connections are shed; the server stays live."""
    cache = ctx.root / "slowloris-cache"
    with _thread_server(cache, request_timeout_s=0.5) as thread:
        address = (thread.host, thread.port)
        # Slowloris: a request head that never finishes must be answered
        # 408 and dropped instead of holding a connection slot forever.
        slow = socket.create_connection(address, timeout=30)
        try:
            slow.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: stall")
            reply = slow.recv(65536)
        finally:
            slow.close()
        if b" 408 " not in reply.split(b"\r\n", 1)[0]:
            raise ChaosFailure(f"slowloris got {reply[:40]!r}, wanted 408")
        # Malformed HTTP: binary garbage must come back as a clean 400.
        bad = socket.create_connection(address, timeout=30)
        try:
            bad.sendall(b"\x00\xffNOT-HTTP\x7f\r\n\r\n")
            reply = bad.recv(65536)
        finally:
            bad.close()
        if b" 400 " not in reply.split(b"\r\n", 1)[0]:
            raise ChaosFailure(f"malformed request got {reply[:40]!r}")
        # The server must still do real work afterwards.
        client = ServeClient(port=thread.port, client_id="chaos")
        if not client.healthz()["ok"]:
            raise ChaosFailure("health check failed after abuse")
        key = client.submit(*API_SPEC)["job"]
        if client.wait(key, timeout=300)["state"] != "done":
            raise ChaosFailure("job failed after connection abuse")
        ctx.collect("slowloris-malformed", cache)
    return "stalled head answered 408, garbage answered 400, service live"


def _journal_corruption(ctx: _ServeContext) -> str:
    """Bit-flipped and truncated journals salvage their valid prefix."""
    cache = ctx.root / "journal-cache"
    with _thread_server(cache) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        key = client.submit(*API_SPEC)["job"]
        if client.wait(key, timeout=300)["state"] != "done":
            raise ChaosFailure("seed job failed")
    journal = cache / "journal" / "serve.jsonl"
    reasons = cache / "quarantine" / "REASONS.log"
    # Flip one byte inside the final (terminal) record: the prefix up to
    # it must be salvaged, the damage quarantined, and the job re-run to a
    # bit-identical result.
    raw = bytearray(journal.read_bytes())
    raw[-10] ^= 0x40
    journal.write_bytes(bytes(raw))
    with _thread_server(cache) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        stats = client.stats()
        if stats["recovered_requeued"] + stats["recovered_served"] < 1:
            raise ChaosFailure("bit-flipped journal salvaged nothing")
        if not reasons.exists() or "serve journal" not in reasons.read_text():
            raise ChaosFailure("journal corruption left no quarantine reason")
        final = client.wait(key, timeout=300)
        if final["state"] != "done":
            raise ChaosFailure(f"job did not recover: {final.get('error')}")
        if _served_sha(client, key) != ctx.reference_sha[API_SPEC]:
            raise ChaosFailure("recovered result not bit-identical")
    # Torn tail (power loss mid-append): cut the file mid-line.
    raw = journal.read_bytes()
    journal.write_bytes(raw[: len(raw) - 7])
    with _thread_server(cache) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        final = client.wait(key, timeout=300)
        if final["state"] != "done":
            raise ChaosFailure("truncated journal lost the job")
        if _served_sha(client, key) != ctx.reference_sha[API_SPEC]:
            raise ChaosFailure("post-truncation result not bit-identical")
        ctx.collect("journal-corruption", cache)
    quarantined = reasons.read_text().count("serve journal")
    return (
        f"prefix salvaged twice (bit-flip + torn tail), "
        f"{quarantined} quarantine reason(s) logged, results bit-identical"
    )


def _enospc_degraded(ctx: _ServeContext) -> str:
    """ENOSPC trips degraded mode: new work 503s, existing work survives."""
    cache = ctx.root / "enospc-cache"
    plan = ctx.plan(
        faults.FaultSpec("unwritable", match="journal", times=0,
                         error="ENOSPC")
    )
    with _thread_server(cache, breaker_cooldown_s=1.0) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        with faults.injected(plan):
            # Accepted before the breaker trips (the failed journal append
            # of this very submission is what trips it).
            accepted = client.submit(*API_SPEC)["job"]
            try:
                client.submit("api", OTHER, 2)
                raise ChaosFailure("degraded server accepted new work")
            except ServeError as exc:
                if exc.status != 503 or not exc.doc.get("degraded"):
                    raise ChaosFailure(
                        f"wanted degraded 503, got {exc.status}: {exc.doc}"
                    )
            if not client.healthz()["degraded"]:
                raise ChaosFailure("healthz does not report degraded")
            # Work accepted before the trip still completes, and dedupe
            # submissions of it are still served while degraded.
            if client.wait(accepted, timeout=300)["state"] != "done":
                raise ChaosFailure("accepted job failed under ENOSPC")
            again = client.submit(*API_SPEC)
            if again["job"] != accepted or again["state"] != "done":
                raise ChaosFailure("dedupe not served while degraded")
        # Volume recovered: after the cooldown the breaker half-opens and
        # new submissions flow again.
        deadline = time.monotonic() + 30
        while True:
            try:
                key = client.submit("api", OTHER, 2)["job"]
                break
            except ServeError as exc:
                if exc.status != 503 or time.monotonic() > deadline:
                    raise ChaosFailure(
                        f"breaker never recovered: {exc.status} {exc.doc}"
                    )
                time.sleep(0.2)
        if client.wait(key, timeout=300)["state"] != "done":
            raise ChaosFailure("post-recovery job failed")
        ctx.collect("enospc-degraded", cache)
    return "tripped on ENOSPC, 503+Retry-After, recovered after cooldown"


def _hung_lane(ctx: _ServeContext) -> str:
    """A hung lane is detected by the watchdog and the lane keeps serving."""
    cache = ctx.root / "hung-cache"
    plan = ctx.plan(
        faults.FaultSpec("hang", match="sim", times=1, hang_s=12.0)
    )
    with _thread_server(
        cache, lane_hang_s=1.0, watchdog_interval_s=0.25,
        breaker_failures=100,
    ) as thread:
        client = ServeClient(port=thread.port, client_id="chaos")
        with faults.injected(plan):
            key = client.submit(*SIM_SPEC)["job"]
            started = time.monotonic()
            final = client.wait(key, timeout=60)
            detected_s = time.monotonic() - started
        if final["state"] != "failed":
            raise ChaosFailure(
                f"hung job ended {final['state']!r}, wanted watchdog failure"
            )
        causes = final.get("causes") or []
        if not any("hung" in cause for cause in causes):
            raise ChaosFailure(f"no structured hang cause: {causes}")
        if detected_s > 8.0:
            raise ChaosFailure(
                f"watchdog took {detected_s:.1f}s (hang was 12s — "
                f"detection must beat it by a wide margin)"
            )
        # The failed state is retryable: the same spec resubmits onto the
        # restarted lane and completes bit-identically, fault lifted.
        retry = client.submit(*SIM_SPEC)
        if retry["job"] != key:
            raise ChaosFailure("retry changed the content-addressed key")
        final = client.wait(key, timeout=600)
        if final["state"] != "done":
            raise ChaosFailure(f"retry failed: {final.get('error')}")
        if _served_sha(client, key) != ctx.reference_sha[SIM_SPEC]:
            raise ChaosFailure("post-hang result not bit-identical")
        stats = client.stats()
        if stats["watchdog_restarts"] < 1:
            raise ChaosFailure("watchdog restart not accounted")
        ctx.collect("hung-lane", cache)
    return (
        f"hang detected in {detected_s:.1f}s, structured cause recorded, "
        f"lane restarted and retry bit-identical"
    )


SCENARIOS: dict[str, Callable[[_ServeContext], str]] = {
    "kill9-recovery": _kill9_recovery,
    "ws-resume": _ws_resume,
    "slowloris-malformed": _slowloris_malformed,
    "journal-corruption": _journal_corruption,
    "enospc-degraded": _enospc_degraded,
    "hung-lane": _hung_lane,
}


def run_serve_chaos(
    seed: int = 0,
    only: list[str] | None = None,
    artifacts_dir: str | pathlib.Path | None = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the serve suite; returns a process exit code (0 = all held)."""
    selected = only or list(SCENARIOS)
    for name in selected:
        if name not in SCENARIOS:
            out(
                f"unknown serve chaos scenario {name!r}; "
                f"known: {', '.join(SCENARIOS)}"
            )
            return 2
    artifacts = pathlib.Path(artifacts_dir) if artifacts_dir else None
    if artifacts is not None:
        artifacts.mkdir(parents=True, exist_ok=True)
    rows = []
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") as tmp:
        root = pathlib.Path(tmp)
        out("serve chaos: computing fault-free reference artifacts...")
        ctx = _ServeContext(seed, root, artifacts)
        for name in selected:
            start = time.monotonic()
            try:
                detail = SCENARIOS[name](ctx)
                status = "PASS"
            except ChaosFailure as exc:
                detail, status, failures = str(exc), "FAIL", failures + 1
            except (ServeError, OSError, TimeoutError) as exc:
                detail = f"{type(exc).__name__}: {exc}"
                status, failures = "FAIL", failures + 1
            rows.append(
                [name, status, f"{time.monotonic() - start:.1f}", detail]
            )
            out(f"  {status} {name}: {rows[-1][3]}")
    out("")
    out(
        format_table(
            ["scenario", "status", "secs", "detail"],
            rows,
            title=f"repro chaos --suite serve (seed {seed})",
        )
    )
    out("")
    if failures:
        out(f"serve chaos: {failures}/{len(selected)} scenario(s) FAILED")
        return 1
    out(
        f"serve chaos: all {len(selected)} scenario(s) held their "
        "durability guarantees"
    )
    return 0
