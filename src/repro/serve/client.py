"""A blocking, stdlib-only client for the characterization service.

This is the reference consumer of the wire protocol: plain
:mod:`http.client` for the REST surface and a raw socket speaking just
enough RFC 6455 for the one-directional progress stream the server sends.
It exists so scripts, tests, and the load-test harness can drive a server
without an event loop of their own — and so the protocol stays honest
(anything the client can't express over two stdlib modules is too clever
for the service).
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import struct
import time
from typing import Iterator

#: The submission schema version this client writes (kept in lock-step
#: with :data:`repro.serve.protocol.VERSION`; asserted by the test suite
#: rather than imported so the client stays importable standalone).
PROTOCOL_VERSION = 1


class _BufferedSocket:
    """Socket reads with a carry-over buffer.

    The WebSocket handshake response and the first data frames can arrive
    in one TCP segment; whatever ``recv`` returns past the handshake must
    be kept and fed to the frame parser, not dropped.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = b""

    def read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("socket closed during handshake")
            self._buffer += chunk
        head, _sep, rest = self._buffer.partition(marker)
        self._buffer = rest
        return head

    def read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self._sock.recv(max(4096, count - len(self._buffer)))
            if not chunk:
                raise ConnectionError("socket closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data


class ServeError(RuntimeError):
    """A non-2xx response; carries the status and decoded body."""

    def __init__(self, status: int, doc):
        message = doc.get("error") if isinstance(doc, dict) else str(doc)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.doc = doc


class Backpressure(ServeError):
    """HTTP 429 — the per-client queue is full; carries the retry hint."""

    def __init__(self, status: int, doc, retry_after: float):
        super().__init__(status, doc)
        self.retry_after = retry_after


class ServeClient:
    """One tenant's view of a running service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        client_id: str = "anon",
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {"X-Repro-Client": self.client_id}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            if response.getheader("Content-Type", "").startswith(
                "application/json"
            ):
                doc = json.loads(raw) if raw else None
            else:
                doc = raw
            if response.status == 429:
                retry_after = float(response.getheader("Retry-After", "1"))
                raise Backpressure(response.status, doc, retry_after)
            if response.status >= 400:
                raise ServeError(response.status, doc)
            return response.status, response.headers, doc
        finally:
            conn.close()

    # -- REST surface ----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")[2]

    def negotiate(self) -> dict:
        """Health check plus protocol-version agreement.

        Raises :class:`ServeError` if the server speaks a different
        protocol version than this client writes — catching the skew up
        front beats a structured 400 on the first submission.
        """
        doc = self.healthz()
        server_version = doc.get("version")
        if server_version != PROTOCOL_VERSION:
            raise ServeError(
                505,
                {
                    "error": f"server speaks protocol version "
                    f"{server_version}, this client speaks "
                    f"{PROTOCOL_VERSION}"
                },
            )
        return doc

    def workloads(self) -> list[str]:
        return self._request("GET", "/v1/workloads")[2]["workloads"]

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[2]

    def submit(
        self,
        kind: str,
        workload: str,
        frames: int,
        seed: int | None = None,
        config: dict | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Submit one job; returns its status document (job key in ``job``)."""
        body: dict = {
            "version": PROTOCOL_VERSION,
            "client": self.client_id,
            "kind": kind,
            "workload": workload,
            "frames": frames,
        }
        if seed is not None:
            body["seed"] = seed
        if config is not None:
            body["config"] = config
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/v1/jobs", body)[2]

    def submit_retrying(self, *args, max_wait: float = 120.0, **kwargs) -> dict:
        """Like :meth:`submit`, but rides out transient rejection.

        Retries HTTP 429 backpressure, 503 degraded/draining responses
        that carry a retry hint, and a refused connection (the server is
        restarting — the recovery scenario the journal exists for) — using
        the farm's capped exponential backoff with deterministic jitter,
        bounded by the server's own Retry-After hint when it sent one.
        Anything else (400s, a stable 503, a dead server past ``max_wait``)
        raises as usual.
        """
        from repro.farm.locks import backoff_delay

        deadline = time.monotonic() + max_wait
        attempt = 0
        while True:
            attempt += 1
            hint: float | None = None
            try:
                return self.submit(*args, **kwargs)
            except Backpressure as exc:
                hint = exc.retry_after
            except ServeError as exc:
                retry_after = (
                    exc.doc.get("retry_after_s")
                    if isinstance(exc.doc, dict) else None
                )
                if exc.status != 503 or retry_after is None:
                    raise
                hint = float(retry_after)
            except (ConnectionRefusedError, ConnectionResetError):
                pass  # server down or mid-restart: plain backoff below
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"submission not accepted within {max_wait:g}s"
                )
            delay = backoff_delay(
                attempt, 0.05, 2.0, f"{self.client_id}#{attempt}"
            )
            if hint is not None:
                delay = min(delay, hint)
            time.sleep(min(max(0.05, delay), remaining))

    def wait_ready(self, max_wait: float = 30.0) -> dict:
        """Block until the server answers its health check; returns it.

        The boot-synchronization loop every harness was hand-rolling:
        backs off on a refused/reset connection until ``max_wait``.
        """
        from repro.farm.locks import backoff_delay

        deadline = time.monotonic() + max_wait
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.healthz()
            except OSError:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                delay = backoff_delay(
                    attempt, 0.05, 1.0, f"{self.client_id}-ready#{attempt}"
                )
                time.sleep(min(max(0.05, delay), remaining))

    def status(self, job: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job}")[2]

    def result(self, job: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job}/result")[2]

    def artifact(self, job: str) -> tuple[bytes, str]:
        """The raw result artifact and its server-side SHA-256."""
        _status, headers, blob = self._request(
            "GET", f"/v1/jobs/{job}/artifact"
        )
        return blob, headers.get("X-Repro-SHA256", "")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")[2]

    def wait(self, job: str, timeout: float = 300.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final status doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job} still {doc['state']!r}")
            time.sleep(poll)

    # -- WebSocket progress stream ---------------------------------------
    def events(
        self, job: str, timeout: float = 300.0, after_seq: int | None = None
    ) -> Iterator[dict]:
        """Yield the job's progress events (buffered replay, then live).

        ``after_seq`` is the replay cursor: pass the ``seq`` of the last
        event received before a disconnect and the server resumes the
        stream strictly after it — no duplicates, no gaps.  The stream
        ends when the server sends its CLOSE frame after the job reaches
        a terminal state.
        """
        path = f"/v1/jobs/{job}/events"
        if after_seq is not None:
            path += f"?from={int(after_seq)}"
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout
        )
        try:
            key = base64.b64encode(os.urandom(16)).decode()
            sock.sendall(
                (
                    f"GET {path} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode("latin-1")
            )
            stream = _BufferedSocket(sock)
            head = stream.read_until(b"\r\n\r\n")
            status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in status_line:
                raise ServeError(
                    int(status_line.split(" ")[1]),
                    {"error": f"websocket upgrade refused: {status_line}"},
                )
            while True:
                opcode, payload = self._read_frame(stream)
                if opcode == 0x8:  # CLOSE
                    return
                if opcode == 0x1 and payload:
                    yield json.loads(payload)
        finally:
            sock.close()

    @staticmethod
    def _read_frame(stream: "_BufferedSocket") -> tuple[int, bytes]:
        first, second = stream.read_exact(2)
        opcode = first & 0x0F
        length = second & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", stream.read_exact(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", stream.read_exact(8))
        # Server frames are unmasked (RFC 6455 §5.1).
        return opcode, stream.read_exact(length)

    # -- convenience -----------------------------------------------------
    def run(
        self,
        kind: str,
        workload: str,
        frames: int,
        seed: int | None = None,
        config: dict | None = None,
        timeout: float = 300.0,
    ) -> dict:
        """Submit (riding out backpressure), wait, and return the result."""
        doc = self.submit_retrying(
            kind, workload, frames, seed=seed, config=config, max_wait=timeout
        )
        final = self.wait(doc["job"], timeout=timeout)
        if final["state"] != "done":
            raise ServeError(
                500, {"error": final.get("error") or f"job {final['state']}"}
            )
        return self.result(doc["job"])
