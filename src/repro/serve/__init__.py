"""repro.serve — characterization-as-a-service over the execution farm.

A stdlib-only HTTP + WebSocket service: clients POST a workload spec, a
machine configuration, and a frame budget; the server hashes the request
into the same content-addressed :class:`~repro.farm.job.JobSpec` key the
CLI uses (so duplicate submissions dedupe into cache hits), runs it on the
farm with per-client fair scheduling and bounded-queue backpressure, and
streams live progress — fed by :mod:`repro.observe` span events — over a
WebSocket.  Results and raw artifacts are served from the shared
:class:`~repro.farm.store.ArtifactStore`, bit-identical to a direct run.
"""

from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.journal import JobJournal
from repro.serve.loadtest import check_loadtest, run_loadtest
from repro.serve.protocol import (
    MAX_FRAMES,
    VERSION,
    ProtocolError,
    decode_submission,
)
from repro.serve.scheduler import FairScheduler, JobEntry, QueueFull
from repro.serve.server import (
    CircuitBreaker,
    ReproServer,
    ServeConfig,
    ServerThread,
)

__all__ = [
    "Backpressure",
    "ServeClient",
    "ServeError",
    "JobJournal",
    "check_loadtest",
    "run_loadtest",
    "MAX_FRAMES",
    "VERSION",
    "ProtocolError",
    "decode_submission",
    "FairScheduler",
    "JobEntry",
    "QueueFull",
    "CircuitBreaker",
    "ReproServer",
    "ServeConfig",
    "ServerThread",
]
