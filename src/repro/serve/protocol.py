"""Wire schemas for the characterization service.

The service speaks plain JSON over HTTP.  This module is the boundary
between untrusted request documents and the typed core: it turns a
submission body into a validated :class:`~repro.farm.job.JobSpec` (the
content-addressed identity the whole system keys on), renders job entries
and results back into JSON documents, and nothing else — no sockets, no
scheduling.

A submission looks like::

    {
      "version": 1,                    # schema version (optional, default 1)
      "client": "alice",               # tenant id (or X-Repro-Client header)
      "kind": "sim",                   # "api" | "sim" | "geometry"
      "workload": "UT2004/Primeval",   # a registered Table-I workload
      "frames": 2,                     # frame budget, 1..MAX_FRAMES
      "seed": 7,                       # optional seed override
      "config": {"width": 320, "height": 240, "hierarchical_z": false}
    }

``config`` accepts the scalar/boolean :class:`~repro.gpu.config.GpuConfig`
fields (resolution, rates, feature toggles); cache geometries stay at the
workload's defaults.  Unknown fields and unknown schema versions are
rejected rather than ignored — with a structured 400 naming the offending
path — so a typo can never silently measure the wrong machine and an old
server can never half-read a newer client's document.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any

from repro.farm.job import KINDS, JobSpec
from repro.gpu.config import GpuConfig

#: Protocol version, reported by ``GET /v1/healthz``.
VERSION = 1

#: Upper bound on a served frame budget: the service is interactive, and a
#: runaway budget would pin an execution lane for hours.
MAX_FRAMES = 64

#: Tenant ids: short, printable, no whitespace (they key queues and logs).
_CLIENT_RE = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: GpuConfig fields a submission may override: every scalar/bool field.
CONFIG_FIELDS = {
    field.name: field.type
    for field in dataclasses.fields(GpuConfig)
    if field.type in ("int", "bool")
}


#: Every field a version-1 submission may carry.  ``deadline_s`` is an
#: additive optional field — older clients simply never send it — so the
#: schema version stays 1.
SUBMISSION_FIELDS = (
    "version", "client", "kind", "workload", "frames", "seed", "config",
    "deadline_s",
)

#: Upper bound on a requested deadline; anything longer is a typo.
MAX_DEADLINE_S = 86400.0


class ProtocolError(ValueError):
    """A malformed or unserviceable request; carries the HTTP status.

    ``path`` names the offending field (dotted for nested documents, e.g.
    ``"config.width"``) so clients can point at the exact input that was
    rejected; ``None`` when the problem is not attributable to one field.
    """

    def __init__(self, message: str, status: int = 400,
                 path: str | None = None):
        super().__init__(message)
        self.status = status
        self.path = path


def _require(doc: dict, key: str, kind, what: str):
    value = doc.get(key)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
        raise ProtocolError(f"{key!r} must be {what}", path=key)
    return value


def decode_version(doc: dict) -> int:
    """The submission's declared schema version (absent means version 1).

    Unknown versions are rejected outright: a document written for a newer
    schema may carry semantics this server would silently misread.
    """
    version = doc.get("version", VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("'version' must be an integer", path="version")
    if version != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (this server speaks "
            f"version {VERSION})",
            path="version",
        )
    return version


def decode_client(doc: dict, header: str | None = None) -> str:
    """The tenant id: body ``client`` field, else header, else ``anon``."""
    client = doc.get("client") or header or "anon"
    if not isinstance(client, str) or not _CLIENT_RE.match(client):
        raise ProtocolError(
            "'client' must be 1-64 characters of [A-Za-z0-9._:-]",
            path="client",
        )
    return client


def decode_config(doc: Any) -> GpuConfig:
    """A :class:`GpuConfig` from a JSON override document."""
    if not isinstance(doc, dict):
        raise ProtocolError("'config' must be an object", path="config")
    unknown = sorted(set(doc) - set(CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown config field(s): {', '.join(unknown)} "
            f"(overridable: {', '.join(sorted(CONFIG_FIELDS))})",
            path=f"config.{unknown[0]}",
        )
    kwargs = {}
    for name, value in doc.items():
        want_bool = CONFIG_FIELDS[name] == "bool"
        if want_bool and not isinstance(value, bool):
            raise ProtocolError(
                f"config field {name!r} must be a boolean",
                path=f"config.{name}",
            )
        if not want_bool and (not isinstance(value, int) or isinstance(value, bool)):
            raise ProtocolError(
                f"config field {name!r} must be an integer",
                path=f"config.{name}",
            )
        kwargs[name] = value
    try:
        return dataclasses.replace(GpuConfig(), **kwargs)
    except ValueError as exc:
        raise ProtocolError(f"invalid config: {exc}", path="config") from exc


def decode_submission(doc: Any) -> JobSpec:
    """Validate a submission body into the :class:`JobSpec` it identifies."""
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object")
    decode_version(doc)
    unknown = sorted(set(doc) - set(SUBMISSION_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown field(s): {', '.join(unknown)} "
            f"(version {VERSION} accepts: "
            f"{', '.join(SUBMISSION_FIELDS)})",
            path=unknown[0],
        )
    kind = _require(doc, "kind", str, "one of " + "/".join(KINDS))
    if kind not in KINDS:
        raise ProtocolError(
            f"unknown kind {kind!r} (want {'/'.join(KINDS)})", path="kind"
        )
    workload = _require(doc, "workload", str, "a registered workload name")
    from repro.workloads.registry import workload as lookup

    try:
        lookup(workload)
    except KeyError:
        raise ProtocolError(
            f"unknown workload {workload!r}", status=404, path="workload"
        )
    frames = _require(doc, "frames", int, "an integer frame budget")
    if not 1 <= frames <= MAX_FRAMES:
        raise ProtocolError(
            f"'frames' must be in [1, {MAX_FRAMES}]", path="frames"
        )
    seed = doc.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise ProtocolError("'seed' must be an integer", path="seed")
    config = doc.get("config")
    spec_config = decode_config(config) if config is not None else None
    try:
        return JobSpec(kind, workload, frames, seed=seed, config=spec_config)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def decode_deadline(doc: dict) -> float | None:
    """The submission's requested deadline in seconds, or ``None``.

    A deadline is quality-of-service, never identity: two submissions that
    differ only in ``deadline_s`` are the *same* job (same key, dedupe into
    one run) — which is why this is decoded separately from
    :func:`decode_submission` and never reaches the :class:`JobSpec`.
    """
    deadline = doc.get("deadline_s") if isinstance(doc, dict) else None
    if deadline is None:
        return None
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ProtocolError(
            "'deadline_s' must be a number of seconds", path="deadline_s"
        )
    if not 0 < deadline <= MAX_DEADLINE_S:
        raise ProtocolError(
            f"'deadline_s' must be in (0, {MAX_DEADLINE_S:g}]",
            path="deadline_s",
        )
    return float(deadline)


def spec_to_doc(spec: JobSpec) -> dict:
    """Render a :class:`JobSpec` back into a version-1 submission body.

    The inverse of :func:`decode_submission`, used by the job journal so a
    replayed record rebuilds the *same* spec (and therefore the same
    content-addressed key, barring a code-version bump).  A non-default
    config emits only the overridden fields; a default-but-present config
    emits ``{}`` — ``config: None`` and ``config: GpuConfig()`` fingerprint
    differently, and the round trip must preserve which one was submitted.
    """
    doc: dict = {
        "version": VERSION,
        "kind": spec.kind,
        "workload": spec.workload,
        "frames": spec.frames,
    }
    if spec.seed is not None:
        doc["seed"] = spec.seed
    if spec.config is not None:
        default = GpuConfig()
        doc["config"] = {
            name: getattr(spec.config, name)
            for name in CONFIG_FIELDS
            if getattr(spec.config, name) != getattr(default, name)
        }
    return doc


# -- response documents ----------------------------------------------------
def summarize_result(spec: JobSpec, result: Any) -> dict:
    """A compact, JSON-safe digest of a finished measurement."""
    doc: dict = {"kind": spec.kind, "workload": spec.workload}
    stats = getattr(result, "stats", None)
    if stats is not None and hasattr(result, "frame_stats"):  # simulation
        doc.update(
            frames=stats.frames,
            triangles_traversed=stats.triangles_traversed,
            fragments_rasterized=stats.fragments_rasterized,
            fragments_shaded=stats.fragments_shaded,
            vertex_cache_hit_rate=round(stats.vertex_cache_hit_rate, 6),
            memory_bytes=int(result.memory.total_bytes),
        )
    elif hasattr(result, "frame_count"):  # API statistics
        doc.update(
            frames=result.frame_count,
            batches=result.total_batches,
            avg_indices_per_batch=round(result.avg_indices_per_batch, 3),
            avg_state_calls_per_frame=round(result.avg_state_calls_per_frame, 3),
        )
    else:  # custom worker payloads (tests)
        doc["repr"] = repr(result)[:200]
    return doc
