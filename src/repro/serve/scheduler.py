"""Multi-tenant job scheduling: per-client FIFO queues, round-robin drain.

The serving layer's fairness model is deliberately simple and exact:

* every tenant (client id) gets one FIFO queue with a bounded depth —
  a client that outruns the farm gets **backpressure** (HTTP 429 with a
  ``Retry-After`` hint) instead of unbounded memory growth or the power to
  starve everyone else;
* execution lanes pull from the queues **round-robin across clients**: the
  next job comes from the next non-empty queue after the one served last,
  so a tenant with 50 queued jobs and a tenant with 1 alternate instead of
  the 50 running first (within a tenant, order stays FIFO);
* submissions are **content-addressed**: a spec that hashes to a job key
  already queued, running, or finished attaches to the existing
  :class:`JobEntry` instead of enqueueing a duplicate — the dedupe that
  turns a thundering herd of identical requests into one farm run and many
  cache hits.

Everything here runs on the asyncio event-loop thread; the scheduler is a
plain data structure with no locks of its own.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.farm.job import JobSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which an entry's artifact must never be evicted.
ACTIVE_STATES = (QUEUED, RUNNING)
#: States an entry can be resubmitted from (a fresh attempt makes sense).
RETRYABLE_STATES = (FAILED, CANCELLED)


class QueueFull(Exception):
    """The client's queue is at depth; carries the backpressure hint."""

    def __init__(self, client: str, depth: int, retry_after: float):
        super().__init__(
            f"client {client!r} has {depth} job(s) queued (limit reached)"
        )
        self.client = client
        self.depth = depth
        self.retry_after = retry_after


@dataclass
class JobEntry:
    """One content-addressed job and everything the service knows about it."""

    spec: JobSpec
    key: str
    client: str  # first submitter (owns the queue slot)
    state: str = QUEUED
    clients: set[str] = field(default_factory=set)
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    from_cache: bool = False
    dedup_hits: int = 0
    error: str | None = None
    summary: dict | None = None
    #: Deadline: requested seconds (or the server default) and the absolute
    #: wall-clock cutoff derived from it at submission.  QoS only — never
    #: part of the job's content-addressed identity.
    deadline_s: float | None = None
    deadline_at: float | None = None
    #: Lane index while running (watchdog bookkeeping).
    lane: int | None = None
    #: Structured cause chain (deadline exceeded, lane hung, ...), oldest
    #: first — mirrors the farm's per-job failure causes.
    causes: list[str] = field(default_factory=list)
    #: Buffered progress events (seq-ordered); WS subscribers replay these
    #: then follow the live feed.
    events: list[dict] = field(default_factory=list)
    #: asyncio.Queue per live WebSocket subscriber.
    subscribers: list[Any] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    def doc(self) -> dict:
        """The job's public status document."""
        return {
            "job": self.key,
            "state": self.state,
            "kind": self.spec.kind,
            "workload": self.spec.workload,
            "frames": self.spec.frames,
            "client": self.client,
            "clients": sorted(self.clients),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "from_cache": self.from_cache,
            "dedup_hits": self.dedup_hits,
            "events": len(self.events),
            "error": self.error,
            "deadline_s": self.deadline_s,
            "causes": list(self.causes),
        }


class FairScheduler:
    """Bounded per-client FIFO queues drained round-robin."""

    def __init__(self, max_depth: int = 8):
        self.max_depth = max(1, int(max_depth))
        self._queues: dict[str, deque[JobEntry]] = {}
        #: Round-robin ring: client order of first appearance; rotation
        #: state is the index after the last client served.
        self._ring: list[str] = []
        self._next = 0
        #: Smoothed job seconds, feeding the Retry-After hint.
        self.avg_job_s = 1.0

    # -- accounting ------------------------------------------------------
    def depth(self, client: str) -> int:
        return len(self._queues.get(client, ()))

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> dict[str, int]:
        return {c: len(q) for c, q in self._queues.items() if q}

    def note_job_seconds(self, seconds: float) -> None:
        """Exponentially smoothed job duration (the Retry-After estimate)."""
        self.avg_job_s = 0.7 * self.avg_job_s + 0.3 * max(0.05, seconds)

    def retry_after(self, client: str) -> float:
        """Seconds until this client's queue has likely drained one slot."""
        return max(1.0, round(self.depth(client) * self.avg_job_s, 1))

    # -- queue operations ------------------------------------------------
    def submit(self, entry: JobEntry, force: bool = False) -> None:
        """Enqueue for the entry's owning client; raises :class:`QueueFull`.

        ``force=True`` bypasses the depth limit — used by journal replay,
        which must requeue every incomplete job it recovered: work the
        server already accepted is never bounced for depth on restart.
        """
        client = entry.client
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._ring.append(client)
        if not force and len(queue) >= self.max_depth:
            raise QueueFull(client, len(queue), self.retry_after(client))
        queue.append(entry)

    def next_entry(self) -> JobEntry | None:
        """Dequeue round-robin: the next non-empty queue after the last served."""
        if not self._ring:
            return None
        for offset in range(len(self._ring)):
            index = (self._next + offset) % len(self._ring)
            queue = self._queues[self._ring[index]]
            if queue:
                self._next = (index + 1) % len(self._ring)
                return queue.popleft()
        return None

    def remove(self, entry: JobEntry) -> bool:
        """Drop a queued entry (cancellation); True if it was queued."""
        queue = self._queues.get(entry.client)
        if queue is None:
            return False
        try:
            queue.remove(entry)
        except ValueError:
            return False
        return True

    def drain(self) -> list[JobEntry]:
        """Empty every queue (shutdown); returns the entries in queue order."""
        drained: list[JobEntry] = []
        for client in self._ring:
            queue = self._queues[client]
            while queue:
                drained.append(queue.popleft())
        return drained
