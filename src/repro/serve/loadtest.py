"""Load-test harness for the characterization service.

Boots a server (in-process, unless pointed at a running one), unleashes a
fleet of concurrent tenants against a small pool of distinct specs, and
writes ``BENCH_serve.json`` with the service-level numbers the roadmap
tracks: request latency percentiles, sustained throughput, cache-hit rate,
and scheduling fairness (the spread between the fastest and slowest
tenant's total completion time).

The traffic shape is deliberately duplicate-heavy — many tenants asking
for the same few characterizations is exactly the thundering-herd shape
content-addressed dedupe exists for.  The run has two waves:

* **cold** — every spec is computed once on the farm; every duplicate
  request attaches to the in-flight or finished entry (dedupe hits);
* **warm** — the job registry is reset (simulating a server restart over a
  persistent ``.repro-cache/``) and the same specs are resubmitted, so the
  farm serves them straight from the artifact store (true cache hits).

Every request must come back ``done`` with a well-formed result document;
any error, timeout, or wrong state counts against ``errors`` and fails a
strict run.
"""

from __future__ import annotations

import json
import math
import pathlib
import tempfile
import threading
import time

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, ServeConfig, ServerThread

#: Terminal states a request may legitimately observe.
_TERMINAL = ("done", "failed", "cancelled")


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _client_run(
    index: int,
    host: str,
    port: int,
    pool: list[dict],
    requests_per_client: int,
    barrier: threading.Barrier,
    records: list,
    lock: threading.Lock,
    timeout: float,
) -> None:
    """One tenant: submit, follow progress over WS, verify the result."""
    client_id = f"load-{index:04d}"
    client = ServeClient(host, port, client_id=client_id, timeout=timeout)
    barrier.wait()
    t_first = time.perf_counter()
    for request_index in range(requests_per_client):
        spec = pool[(index + request_index) % len(pool)]
        started = time.perf_counter()
        error = None
        state = None
        try:
            doc = client.submit_retrying(max_wait=timeout, **spec)
            job = doc["job"]
            if doc["state"] not in _TERMINAL:
                for _event in client.events(job, timeout=timeout):
                    pass  # the stream closes when the job is terminal
            final = client.wait(job, timeout=timeout)
            state = final["state"]
            if state == "done":
                result = client.result(job)
                if not isinstance(result.get("summary"), dict):
                    error = "malformed result document"
            else:
                error = final.get("error") or f"job ended {state!r}"
        except (ServeError, OSError, TimeoutError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        with lock:
            records.append(
                {
                    "client": client_id,
                    "latency_s": time.perf_counter() - started,
                    "state": state,
                    "error": error,
                }
            )
    with lock:
        records.append(
            {
                "client": client_id,
                "total_s": time.perf_counter() - t_first,
            }
        )


def _wave(
    host: str,
    port: int,
    clients: int,
    requests_per_client: int,
    pool: list[dict],
    timeout: float,
) -> dict:
    """Run one concurrent wave; returns its latency/fairness digest."""
    records: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    threads = [
        threading.Thread(
            target=_client_run,
            args=(
                index,
                host,
                port,
                pool,
                requests_per_client,
                barrier,
                records,
                lock,
                timeout,
            ),
            daemon=True,
        )
        for index in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 60)
    wall = time.perf_counter() - start
    requests = [r for r in records if "latency_s" in r]
    totals = [r["total_s"] for r in records if "total_s" in r]
    latencies = [r["latency_s"] for r in requests]
    errors = [r for r in requests if r["error"] is not None]
    expected = clients * requests_per_client
    dropped = expected - len(requests)
    fairness = {
        "max_client_s": round(max(totals), 4) if totals else None,
        "min_client_s": round(min(totals), 4) if totals else None,
        "spread": (
            round(max(totals) / max(min(totals), 1e-9), 2) if totals else None
        ),
    }
    return {
        "requests": len(requests),
        "dropped": dropped,
        "errors": len(errors),
        "error_samples": [e["error"] for e in errors[:5]],
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(requests) / wall, 2) if wall else None,
        "latency_s": {
            "p50": round(_percentile(latencies, 0.50), 4),
            "p99": round(_percentile(latencies, 0.99), 4),
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
        "fairness": fairness,
    }


def run_loadtest(
    clients: int = 200,
    requests_per_client: int = 3,
    unique: int = 6,
    kind: str = "api",
    workload: str = "UT2004/Primeval",
    frames: int = 1,
    lanes: int = 2,
    queue_depth: int = 8,
    timeout: float = 600.0,
    host: str | None = None,
    port: int | None = None,
    worker=None,
    out: str | pathlib.Path | None = "BENCH_serve.json",
) -> dict:
    """Drive the service and return (and optionally write) the bench doc.

    With ``host``/``port`` unset, a private server is booted in-process on
    an ephemeral port against a temporary cache directory, and the run
    includes the warm (registry-reset) wave.  Against an external server
    only the cold wave runs.  ``worker`` injects a farm worker override
    into the in-process server (tests use stubs; the default measures the
    real pipeline).
    """
    pool = [
        {"kind": kind, "workload": workload, "frames": frames, "seed": index}
        for index in range(max(1, unique))
    ]
    owned: ServerThread | None = None
    tmp: tempfile.TemporaryDirectory | None = None
    if host is None or port is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-load-")
        owned = ServerThread(
            ReproServer(
                ServeConfig(
                    port=0,
                    lanes=lanes,
                    queue_depth=queue_depth,
                    cache_dir=tmp.name,
                ),
                worker=worker,
            )
        ).start()
        host, port = owned.host, owned.port
    try:
        waves = {
            "cold": _wave(
                host, port, clients, requests_per_client, pool, timeout
            )
        }
        if owned is not None:
            # Reset the registry on the loop thread: wave two replays the
            # same specs against the persistent store — pure cache hits.
            owned.reset_registry()
            waves["warm"] = _wave(
                host, port, clients, requests_per_client, pool, timeout
            )
        stats = ServeClient(host, port, client_id="loadtest").stats()
        if owned is not None:
            owned.stop()
    finally:
        if tmp is not None:
            tmp.cleanup()
    total_requests = sum(w["requests"] for w in waves.values())
    fresh_runs = stats["completed"] - stats["cache_hits"]
    doc = {
        "benchmark": "serve",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "unique_specs": len(pool),
        "kind": kind,
        "workload": workload,
        "frames": frames,
        "lanes": lanes,
        "queue_depth": queue_depth,
        "requests": total_requests,
        "dropped": sum(w["dropped"] for w in waves.values()),
        "errors": sum(w["errors"] for w in waves.values()),
        "waves": waves,
        "cache": {
            "dedup_hits": stats["dedup_hits"],
            "cache_hits": stats["cache_hits"],
            "fresh_runs": fresh_runs,
            "hit_rate": (
                round(1.0 - fresh_runs / total_requests, 4)
                if total_requests
                else None
            ),
        },
        "backpressure_429s": stats["rejected_backpressure"],
        "server_stats": stats,
    }
    if out is not None:
        from repro.compare.meta import append_history, run_meta

        doc.setdefault("meta", run_meta())
        path = pathlib.Path(out)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        append_history("serve", doc)
        doc["path"] = str(path)
    return doc


def check_loadtest(doc: dict) -> list[str]:
    """Acceptance problems with a load-test document (empty = pass)."""
    problems = []
    if doc["dropped"]:
        problems.append(f"{doc['dropped']} request(s) dropped")
    if doc["errors"]:
        samples = "; ".join(
            s
            for wave in doc["waves"].values()
            for s in wave["error_samples"]
        )
        problems.append(f"{doc['errors']} request error(s): {samples}")
    if doc["cache"]["hit_rate"] is not None and doc["cache"]["hit_rate"] <= 0:
        problems.append("no duplicate request was served from cache/dedupe")
    return problems
