"""Minimal asyncio HTTP/1.1 + WebSocket plumbing (stdlib only).

The serving layer deliberately avoids web frameworks: the container this
repository targets has the Python standard library and numpy, nothing
else.  What the job service actually needs from HTTP is small — parse a
request line + headers + sized body, write a response, and upgrade a
connection to a WebSocket (RFC 6455) for progress streaming — so that is
all this module implements.  Connections are ``close``-per-request except
for upgraded sockets, which keeps the state machine trivial and is plenty
for a measurement service whose requests are seconds long.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

#: Hard limits: a characterization request is small; anything bigger is abuse.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: RFC 6455 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """Unparseable or oversized HTTP input."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]  # lower-cased names
    body: bytes = b""

    def json(self):
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "sec-websocket-key" in self.headers
        )


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``; ``None`` on a cleanly closed socket."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise BadRequest(f"malformed request line {lines[0]!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError as exc:
            raise BadRequest("bad Content-Length") from exc
        if size > MAX_BODY_BYTES:
            raise BadRequest("request body too large")
        body = await reader.readexactly(size)
    return Request(
        method=method.upper(),
        path=parts.path,
        query=parse_qs(parts.query),
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes | str = b"",
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one ``Connection: close`` HTTP response."""
    if isinstance(body, str):
        body = body.encode()
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, doc, headers: dict[str, str] | None = None) -> bytes:
    return response(
        status, json.dumps(doc, sort_keys=True) + "\n", headers=headers
    )


# -- WebSocket (RFC 6455) --------------------------------------------------
def ws_accept_value(key: str) -> str:
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(request: Request) -> bytes:
    accept = ws_accept_value(request.headers["sec-websocket-key"])
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
    ).encode("latin-1")


def ws_encode(payload: bytes | str, opcode: int = 0x1, mask: bool = False) -> bytes:
    """One finished WebSocket frame (servers send unmasked, clients masked)."""
    if isinstance(payload, str):
        payload = payload.encode()
    head = bytearray([0x80 | opcode])
    mask_bit = 0x80 if mask else 0
    if len(payload) < 126:
        head.append(mask_bit | len(payload))
    elif len(payload) < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", len(payload))
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", len(payload))
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def ws_read(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame: ``(opcode, payload)``; unmasks client frames."""
    first, second = await reader.readexactly(2)
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_BODY_BYTES:
        raise BadRequest("websocket frame too large")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length)
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


#: WebSocket opcodes the service uses.
WS_TEXT = 0x1
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA
