"""Crash-recoverable job journal for the characterization service.

``repro.serve`` (PR 6) held every job's lifecycle purely in memory: a
crash or ``kill -9`` silently dropped all queued and in-flight
submissions.  The journal closes that gap with the cheapest durable
structure that works — an append-only JSONL file under the artifact
store, one checksummed record per lifecycle transition::

    <store>/journal/serve.jsonl      the journal itself
    <store>/journal/store.id         this store's identity (random UUID)

Record shapes (all one JSON object per line)::

    {"rec": "journal", "store": "<uuid>", "journal_version": 1, ...}
    {"rec": "submitted", "job": "<key>", "client": "...",
     "submission": {...}, "deadline_s": 30.0, "ts": ..., "sha256": "..."}
    {"rec": "started",   "job": "<key>", "lane": 0, "ts": ..., ...}
    {"rec": "done",      "job": "<key>", "summary": {...}, ...}
    {"rec": "failed",    "job": "<key>", "error": "...", ...}
    {"rec": "cancelled", "job": "<key>", ...}

Every record carries ``sha256`` — the SHA-256 of its canonical JSON
encoding *minus* the checksum field — so a torn append (power loss mid
write) or a bit flip is detected line-by-line.  Replay trusts the longest
valid prefix: the first unverifiable line ends the parse, the damaged
file is quarantined (with a ``REASONS.log`` entry, like every other
corrupt artifact in this repo), and the valid prefix is rewritten in its
place.  A journal whose header names a different ``store.id`` belonged to
some other cache directory that was copied over this one — none of its
completion claims can be trusted against *this* store's artifacts, so it
is quarantined whole and replay starts empty.

``submitted`` records embed the full wire submission
(:func:`repro.serve.protocol.spec_to_doc`), not just the key: on boot the
server re-decodes the submission and recomputes the key, so a
code-version bump between runs (which changes every content-addressed
key) re-runs the job under its new key instead of trusting a stale
artifact.

Appends run under the store's cross-process ``journal`` lock
(:mod:`repro.farm.locks`) and through the fault-injection writability
gate, but are **not** fsynced: ``kill -9`` only loses what never reached
the page cache — nothing, for a process that already returned from
``write`` — and the loadtest budget (durability within 10% of the
in-memory baseline) rules out an fsync per transition.  Power loss can
drop the tail; the checksum prefix-salvage handles exactly that.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Any, Iterable

from repro.farm import faults
from repro.farm.store import ArtifactStore, _atomic_write

#: Bump when the record shapes change incompatibly.
JOURNAL_VERSION = 1

#: Lifecycle records replay understands; anything else ends the prefix.
RECORD_KINDS = ("journal", "submitted", "started", "done", "failed",
                "cancelled")

#: Terminal record kinds (the job needs no re-run on replay).
TERMINAL_KINDS = ("done", "failed", "cancelled")


def _checksum(record: dict) -> str:
    """SHA-256 over the record's canonical JSON, minus the checksum field."""
    import hashlib

    body = {key: value for key, value in record.items() if key != "sha256"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def seal(record: dict) -> dict:
    """The record with its ``sha256`` stamped in."""
    sealed = dict(record)
    sealed["sha256"] = _checksum(sealed)
    return sealed


def verify(record: Any) -> bool:
    """Whether ``record`` is a well-formed, checksum-valid journal record."""
    if not isinstance(record, dict):
        return False
    if record.get("rec") not in RECORD_KINDS:
        return False
    expected = record.get("sha256")
    if not isinstance(expected, str):
        return False
    return _checksum(record) == expected


class JobJournal:
    """The append-only lifecycle journal of one store's serve instance."""

    def __init__(self, store: ArtifactStore):
        self.store = store
        self.directory = store.root / "journal"
        self.path = self.directory / "serve.jsonl"
        self.id_path = self.directory / "store.id"
        self.appended = 0
        self.salvaged = 0
        self.discarded = 0

    # -- identity --------------------------------------------------------
    def store_id(self) -> str:
        """This store's identity, minted on first use.

        Lives next to the journal so a journal file copied between cache
        directories is detectable: its header names an id the destination
        store does not have.
        """
        try:
            existing = self.id_path.read_text().strip()
            if existing:
                return existing
        except OSError:
            pass
        minted = uuid.uuid4().hex
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _atomic_write(self.id_path, minted.encode())
        except OSError:
            pass  # unwritable volume: identity is per-boot, replay still safe
        return minted

    def header(self) -> dict:
        return seal({
            "rec": "journal",
            "journal_version": JOURNAL_VERSION,
            "store": self.store_id(),
            "ts": time.time(),
        })

    # -- writing ---------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one lifecycle record.

        Raises ``OSError`` on an unwritable volume (including injected
        ENOSPC — the server's circuit breaker watches for exactly that);
        the caller decides whether that degrades service or is ignored.
        """
        faults.check_writable(f"journal:{record.get('rec', '?')}")
        sealed = seal({**record, "ts": record.get("ts", time.time())})
        line = json.dumps(sealed, sort_keys=True, separators=(",", ":"))
        with self.store.lock("journal", timeout=10.0):
            fresh = not self.path.exists()
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                if fresh:
                    handle.write(
                        json.dumps(self.header(), sort_keys=True,
                                   separators=(",", ":")) + "\n"
                    )
                handle.write(line + "\n")
        self.appended += 1

    # -- reading ---------------------------------------------------------
    def replay(self) -> list[dict]:
        """Every trustworthy record, oldest first.

        Parses the longest checksum-valid prefix.  If anything after that
        prefix exists (torn tail, bit flip, garbage), the damaged journal
        is quarantined and the valid prefix is rewritten in place, so the
        next boot sees a clean file.  A journal from a *different* store
        (header ``store`` mismatch) is quarantined whole.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        records: list[dict] = []
        damage: str | None = None
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError):
                damage = f"line {index + 1} undecodable"
                break
            if not verify(record):
                damage = f"line {index + 1} failed its checksum"
                break
            if index == 0:
                if record.get("rec") != "journal":
                    damage = "missing journal header"
                    records = []
                    break
                if record.get("store") != self.store_id():
                    # A foreign journal's completion claims say nothing
                    # about this store's artifacts.  Trust none of it.
                    self._quarantine("journal belongs to another store", [])
                    self.discarded += len(lines)
                    return []
                if record.get("journal_version") != JOURNAL_VERSION:
                    self._quarantine(
                        f"unsupported journal version "
                        f"{record.get('journal_version')!r}", []
                    )
                    self.discarded += len(lines)
                    return []
                continue  # header is not a lifecycle record
            records.append(record)
        if damage is not None:
            self.discarded += len(lines) - len(records) - 1
            self.salvaged += len(records)
            self._quarantine(damage, records)
        return records

    def _quarantine(self, reason: str, salvaged: list[dict]) -> None:
        """Move the damaged journal aside and rewrite the valid prefix."""
        self.store.quarantine(
            [self.path], f"serve journal: {reason} "
            f"({len(salvaged)} record(s) salvaged)"
        )
        if salvaged:
            try:
                self.rewrite(salvaged)
            except OSError:
                pass  # unwritable: replay already holds the salvage in memory

    def rewrite(self, records: Iterable[dict]) -> None:
        """Atomically replace the journal with a header + ``records``."""
        lines = [json.dumps(self.header(), sort_keys=True,
                            separators=(",", ":"))]
        lines += [
            json.dumps(seal(record), sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        with self.store.lock("journal", timeout=10.0):
            self.directory.mkdir(parents=True, exist_ok=True)
            _atomic_write(self.path, ("\n".join(lines) + "\n").encode())

    # -- interpretation --------------------------------------------------
    @staticmethod
    def reduce(records: list[dict]) -> dict[str, dict]:
        """Fold lifecycle records into per-job latest state, oldest first.

        Returns ``{key: {"submission", "client", "deadline_s", "state",
        "summary", "error", "ts"}}``.  Later records win; a fresh
        ``submitted`` after a terminal record reopens the job (that is a
        legitimate resubmission of a previously failed key).
        """
        jobs: dict[str, dict] = {}
        for record in records:
            key = record.get("job")
            if not isinstance(key, str):
                continue
            kind = record["rec"]
            entry = jobs.get(key)
            if kind == "submitted":
                if entry is None or entry["state"] in ("failed", "cancelled"):
                    jobs[key] = {
                        "submission": record.get("submission"),
                        "client": record.get("client", "anon"),
                        "deadline_s": record.get("deadline_s"),
                        "state": "queued",
                        "summary": None,
                        "error": None,
                        "ts": record.get("ts"),
                    }
                continue
            if entry is None:
                continue  # orphan transition: its submission was lost
            if kind == "started":
                if entry["state"] == "queued":
                    entry["state"] = "running"
            elif kind == "done":
                entry["state"] = "done"
                entry["summary"] = record.get("summary")
            elif kind == "failed":
                entry["state"] = "failed"
                entry["error"] = record.get("error")
            elif kind == "cancelled":
                entry["state"] = "cancelled"
            entry["ts"] = record.get("ts", entry["ts"])
        return jobs

    def compact(self, jobs: dict[str, dict]) -> None:
        """Rewrite the journal to one or two records per job.

        Boot-time housekeeping: replay already reduced history to latest
        state, so the full transition log is dead weight.  Each job keeps
        its ``submitted`` record (the re-runnable source of truth) plus a
        terminal record when it has one.
        """
        records: list[dict] = []
        for key, entry in sorted(jobs.items(), key=lambda kv: kv[1]["ts"] or 0):
            records.append({
                "rec": "submitted",
                "job": key,
                "client": entry["client"],
                "submission": entry["submission"],
                "deadline_s": entry["deadline_s"],
                "ts": entry["ts"],
            })
            if entry["state"] == "done":
                records.append({
                    "rec": "done", "job": key,
                    "summary": entry["summary"], "ts": entry["ts"],
                })
            elif entry["state"] == "failed":
                records.append({
                    "rec": "failed", "job": key,
                    "error": entry["error"], "ts": entry["ts"],
                })
            elif entry["state"] == "cancelled":
                records.append({"rec": "cancelled", "job": key,
                                "ts": entry["ts"]})
        try:
            self.rewrite(records)
        except OSError:
            pass  # compaction is an optimization, never a correctness step
