"""The characterization service: HTTP + WebSocket front-end over the farm.

Architecture (one process, three kinds of execution context):

* the **asyncio event loop** owns all service state — the
  :class:`~repro.serve.scheduler.FairScheduler`, the job registry, every
  WebSocket subscriber queue, the lane/watchdog bookkeeping.  Connection
  handlers, lane coordinators, and the watchdog are tasks on this loop;
  nothing else mutates service state directly.
* **execution lanes** run the actual measurement through a serial
  :class:`~repro.farm.executor.Farm` (``jobs=1`` — the simulation executes
  in the job's thread itself).  Each lane dispatches one dedicated thread
  per job: a thread cannot be killed, so a *hung* job's thread is
  **abandoned** (its completion token is revoked; whatever it eventually
  reports is discarded) and the lane continues on a fresh farm.  Threads
  report back to the loop via ``call_soon_threadsafe``.
* **observe** feeds live progress: the server arms the tracing environment
  flag, so every job runs under a per-unit tracer
  (:class:`~repro.observe.spans.UnitScope`), and subscribes to span
  start/end events.  Events carry the publishing thread id; the server
  maps thread → running job, pulses that lane's heartbeat, and forwards
  the coarse-grained spans (farm lifecycle, ``gpu.run``, ``gpu.frame``)
  to that job's WebSocket subscribers, in sequence order.

Durability (this PR): every lifecycle transition is appended to the
crash-recoverable :class:`~repro.serve.journal.JobJournal` under the
artifact store.  On boot the server replays the journal — completed jobs
are served from the cache, incomplete jobs are requeued — so ``kill -9``
plus restart loses nothing.  Liveness: per-job deadlines (request field or
server default) are enforced at dequeue and by the watchdog; a lane whose
heartbeat goes stale is detected, its job failed with a structured cause,
and the lane restarted.  A :class:`CircuitBreaker` flips the server into
degraded mode (503 + Retry-After on *new* submissions; cached results and
status queries still served) on failure spikes or an unwritable store.

Identity is content-addressed end to end: a submission is hashed into a
:meth:`~repro.farm.job.JobSpec.key`, duplicates attach to the existing
entry, and finished artifacts live in the same
:class:`~repro.farm.store.ArtifactStore` the CLI uses — serving the very
bytes a direct ``repro`` run of the same spec would produce.
"""

from __future__ import annotations

import asyncio
import errno
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import observe
from repro.farm.executor import Farm, FarmError
from repro.farm.store import ArtifactStore
from repro.serve import httpd
from repro.serve.journal import JobJournal
from repro.serve.protocol import (
    VERSION,
    ProtocolError,
    decode_client,
    decode_deadline,
    decode_submission,
    spec_to_doc,
    summarize_result,
)
from repro.serve.scheduler import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    RETRYABLE_STATES,
    RUNNING,
    FairScheduler,
    JobEntry,
    QueueFull,
)

#: Span names forwarded to WebSocket subscribers by default.  Draw- and
#: stage-level spans fire thousands of times per frame — progress wants the
#: coarse pulse, the full firehose stays available via ``verbose_events``.
COARSE_SPANS = ("gpu.run", "gpu.frame")

#: Error-text fragments that mean the store volume itself is failing; any
#: one of them trips the circuit breaker immediately (retrying new work on
#: a full disk only digs the hole deeper).
_STORE_FAILURE_MARKS = ("enospc", "no space left", "erofs", "read-only")


@dataclass
class ServeConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    lanes: int = 2
    queue_depth: int = 8
    #: Cache quota in bytes (None = unlimited).  Enforced LRU after every
    #: completed job, pinning every key the registry still references.
    quota_bytes: int | None = None
    cache_dir: str | None = None
    #: Forward every span event (draw/stage level included) over WS.
    verbose_events: bool = False
    #: Draw-level incremental replay in the lane farms (``None`` resolves
    #: ``REPRO_INCREMENTAL``).  Bit-identical results, unchanged job keys.
    incremental: bool | None = None
    #: Frame-sharding policy passed through to the lane farms.
    shard_frames: int | None = None
    #: Deadline applied to submissions that do not request one (seconds;
    #: ``None`` = no default deadline).
    default_deadline_s: float | None = None
    #: Journal every lifecycle transition and replay it on boot.
    journal: bool = True
    #: Watchdog cadence and the heartbeat staleness that counts as hung.
    watchdog_interval_s: float = 1.0
    lane_hang_s: float = 30.0
    #: A connection that has not delivered a full request head within this
    #: many seconds is answered 408 and dropped (slowloris defense).
    request_timeout_s: float = 10.0
    #: Circuit breaker: this many job failures inside the window trip
    #: degraded mode for the cooldown; store-volume errors trip instantly.
    breaker_failures: int = 5
    breaker_window_s: float = 30.0
    breaker_cooldown_s: float = 5.0


class CircuitBreaker:
    """Failure-spike detector driving the server's degraded mode.

    Closed (normal) → open (degraded: reject new submissions with 503 +
    Retry-After) when ``failures`` job failures land inside ``window_s``,
    or instantly on a store-volume error (ENOSPC/EROFS).  The open state
    lapses after ``cooldown_s`` — the next submission is the half-open
    probe: its success resets the failure history, another failure
    re-trips.  Runs entirely on the event-loop thread.
    """

    def __init__(self, failures: int = 5, window_s: float = 30.0,
                 cooldown_s: float = 5.0):
        self.failures = max(1, failures)
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.cause: str | None = None
        self.trips = 0
        self._history: deque[float] = deque()
        self._open_until = 0.0

    @property
    def open(self) -> bool:
        return time.monotonic() < self._open_until

    def retry_after(self) -> float:
        return max(1.0, round(self._open_until - time.monotonic(), 1))

    def _trip(self, cause: str) -> None:
        self.cause = cause
        self.trips += 1
        self._open_until = time.monotonic() + self.cooldown_s

    def record_failure(self, cause: str | None) -> None:
        now = time.monotonic()
        text = (cause or "job failed").strip()
        lowered = text.lower()
        if any(mark in lowered for mark in _STORE_FAILURE_MARKS):
            self._trip(f"store volume failing: {text}")
            return
        self._history.append(now)
        while self._history and self._history[0] < now - self.window_s:
            self._history.popleft()
        if len(self._history) >= self.failures:
            self._trip(
                f"{len(self._history)} job failure(s) in "
                f"{self.window_s:g}s (last: {text})"
            )

    def record_success(self) -> None:
        self._history.clear()
        self._open_until = 0.0
        self.cause = None

    def doc(self) -> dict:
        return {
            "open": self.open,
            "trips": self.trips,
            "cause": self.cause,
            "recent_failures": len(self._history),
        }


@dataclass
class _Lane:
    """One execution lane's loop-side bookkeeping."""

    index: int
    farm: Farm
    entry: JobEntry | None = None
    #: Completion token: bumped on every dispatch *and* every abandonment,
    #: so a hung thread that eventually finishes cannot report a stale
    #: outcome onto whatever the lane is doing by then.
    token: int = 0
    tid: int | None = None
    #: Monotonic time of the last sign of life from the running thread.
    heartbeat: float = 0.0
    restarts: int = 0
    done: asyncio.Event = field(default_factory=asyncio.Event)


class ReproServer:
    """One characterization service instance (create, ``await start()``)."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        store: ArtifactStore | None = None,
        worker=None,
    ):
        self.config = config or ServeConfig()
        self.store = store if store is not None else ArtifactStore(
            self.config.cache_dir
        )
        #: Optional farm worker override (tests inject stubs; ``None`` uses
        #: the standard cached/checkpointed :func:`repro.farm.run_job`).
        self.worker = worker
        self.scheduler = FairScheduler(self.config.queue_depth)
        self.entries: dict[str, JobEntry] = {}
        self.journal: JobJournal | None = (
            JobJournal(self.store) if self.config.journal else None
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_failures,
            self.config.breaker_window_s,
            self.config.breaker_cooldown_s,
        )
        self.draining = False
        self.started_at = time.time()
        self.stats = {
            "submissions": 0,
            "dedup_hits": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected_backpressure": 0,
            "rejected_degraded": 0,
            "cache_hits": 0,
            "evicted": 0,
            "ws_connections": 0,
            "recovered_served": 0,
            "recovered_requeued": 0,
            "deadline_failures": 0,
            "watchdog_restarts": 0,
            "timeouts_408": 0,
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._lanes: list[_Lane] = []
        self._lane_tasks: list[asyncio.Task] = []
        self._watchdog_task: asyncio.Task | None = None
        self._lane_wakeup = asyncio.Event()
        self._drained = asyncio.Event()
        self._running: dict[int, JobEntry] = {}  # thread id -> entry
        self._lane_by_tid: dict[int, _Lane] = {}
        self._seq = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    def _new_farm(self) -> Farm:
        return Farm(
            store=self.store,
            jobs=1,
            checkpoint_every=0,
            shard_frames=self.config.shard_frames,
            incremental=self.config.incremental,
        )

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        observe.arm_env()  # lane jobs trace themselves via UnitScope
        observe.subscribe(self._on_span_event)
        if self.journal is not None:
            self._replay_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        for index in range(max(1, self.config.lanes)):
            lane = _Lane(index=index, farm=self._new_farm())
            self._lanes.append(lane)
            self._lane_tasks.append(
                asyncio.create_task(self._lane(lane), name=f"lane-{index}")
            )
        self._watchdog_task = asyncio.create_task(
            self._watchdog(), name="watchdog"
        )

    async def serve_forever(self) -> None:
        assert self._server is not None
        try:
            await self._drained.wait()
        finally:
            await self._finish_shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, cancel queued, finish running."""
        if self.draining:
            return
        self.draining = True
        for entry in self.scheduler.drain():
            entry.state = CANCELLED
            entry.finished_at = time.time()
            self.stats["cancelled"] += 1
            self._journal_append({"rec": "cancelled", "job": entry.key})
            self._push_event(entry, {"event": "cancelled"})
            self._finish_streams(entry)
        self._lane_wakeup.set()
        # Lanes exit once no queued work remains and draining is set; each
        # finishes its in-flight job first.
        if self._lane_tasks:
            await asyncio.gather(*self._lane_tasks, return_exceptions=True)
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        self._drained.set()

    async def _finish_shutdown(self) -> None:
        observe.unsubscribe(self._on_span_event)
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- journal replay --------------------------------------------------
    def _journal_append(self, record: dict) -> None:
        """Append a lifecycle record; an unwritable store trips the breaker.

        Journal loss is never allowed to fail the request that triggered
        it — the in-memory state is still correct for this process's
        lifetime — but it *does* mean a crash would now lose work, so the
        breaker degrades the service instead of accepting new submissions
        it could not journal either.
        """
        if self.journal is None:
            return
        try:
            self.journal.append(record)
        except OSError as exc:
            if exc.errno in (errno.ENOSPC, errno.EROFS):
                self.breaker.record_failure(f"journal append: {exc}")
            # Other errors (e.g. a lock timeout under a wedged sibling
            # process) degrade to journal-less operation for this record.

    def _replay_journal(self) -> None:
        """Rebuild the registry from the journal: the boot-time recovery.

        Completed jobs whose artifact is still present are registered
        ``DONE`` and served from the cache; failed/cancelled jobs keep
        their terminal state; everything else — queued, running when the
        process died, or completed under a *different* code version (the
        recomputed key no longer matches the recorded one) — is requeued
        for a fresh run.  Deadlines restart from boot: the server cannot
        know how much of the original budget the outage consumed, and
        failing recovered work for time the *server* lost would punish the
        client twice.
        """
        assert self.journal is not None
        jobs = JobJournal.reduce(self.journal.replay())
        # Re-decode every submission and recompute its key.  A key that no
        # longer matches the recorded one means the code version changed:
        # the recorded completion proves nothing about the *new* identity,
        # so the record demotes to queued under its recomputed key.  Two
        # records can collapse onto one key that way; the most-final /
        # newest state wins.
        rank = {"done": 3, "failed": 2, "cancelled": 2, "queued": 1,
                "running": 1}
        decoded: dict[str, dict] = {}
        for recorded_key, info in jobs.items():
            submission = info.get("submission")
            if not isinstance(submission, dict):
                continue
            try:
                spec = decode_submission(submission)
            except ProtocolError:
                continue  # workload/schema no longer exists: drop it
            key = spec.key()
            if key != recorded_key:
                info = {**info, "state": "queued",
                        "summary": None, "error": None}
            current = decoded.get(key)
            if current is not None:
                held = (rank.get(current["info"]["state"], 0),
                        current["info"]["ts"] or 0)
                offered = (rank.get(info["state"], 0), info["ts"] or 0)
                if held >= offered:
                    continue
            decoded[key] = {"info": info, "spec": spec}
        for key, slot in sorted(
            decoded.items(), key=lambda kv: kv[1]["info"]["ts"] or 0
        ):
            info, spec = slot["info"], slot["spec"]
            entry = JobEntry(
                spec=spec, key=key, client=info["client"],
                clients={info["client"]},
            )
            entry.deadline_s = info.get("deadline_s")
            if info["state"] == "done" and self.store.contains(spec):
                entry.state = DONE
                entry.from_cache = True
                entry.summary = info.get("summary")
                entry.finished_at = time.time()
                self.entries[key] = entry
                self._push_event(entry, {"event": "recovered", "state": DONE})
                self.stats["recovered_served"] += 1
            elif info["state"] in ("failed", "cancelled"):
                entry.state = info["state"]
                entry.error = info.get("error")
                entry.finished_at = time.time()
                self.entries[key] = entry
            else:
                # Queued, running at the crash, or done-but-evicted/drifted.
                if entry.deadline_s is not None:
                    entry.deadline_at = time.time() + entry.deadline_s
                self.entries[key] = entry
                self.scheduler.submit(entry, force=True)
                self._push_event(
                    entry,
                    {
                        "event": "queued",
                        "recovered": True,
                        "position": self.scheduler.pending(),
                    },
                )
                self.stats["recovered_requeued"] += 1
        # Compact from the recovered registry: one submitted record (plus
        # a terminal record) per job, all under *current* keys — so the
        # next boot replays exactly this state instead of the full log.
        self.journal.compact({
            key: {
                "submission": spec_to_doc(entry.spec),
                "client": entry.client,
                "deadline_s": entry.deadline_s,
                "state": entry.state,
                "summary": entry.summary,
                "error": entry.error,
                "ts": entry.submitted_at,
            }
            for key, entry in self.entries.items()
        })
        self._lane_wakeup.set()

    # -- execution lanes -------------------------------------------------
    async def _lane(self, lane: _Lane) -> None:
        """One lane: pull fairly, execute in a thread, publish the outcome."""
        while True:
            entry = self.scheduler.next_entry()
            if entry is None:
                if self.draining:
                    return
                self._lane_wakeup.clear()
                await self._lane_wakeup.wait()
                continue
            now = time.time()
            if entry.deadline_at is not None and now > entry.deadline_at:
                # Expired while queued: fail it without burning a lane.
                entry.causes.append(
                    f"deadline exceeded in queue: {entry.deadline_s:g}s "
                    f"budget elapsed before a lane was free"
                )
                entry.state = FAILED
                entry.error = entry.causes[-1]
                self.stats["deadline_failures"] += 1
                self._journal_append(
                    {"rec": "failed", "job": entry.key, "error": entry.error}
                )
                self._complete(entry)
                continue
            entry.state = RUNNING
            entry.started_at = now
            entry.lane = lane.index
            lane.entry = entry
            lane.token += 1
            lane.heartbeat = time.monotonic()
            lane.done = asyncio.Event()
            self._journal_append(
                {"rec": "started", "job": entry.key, "lane": lane.index}
            )
            self._push_event(entry, {"event": "started", "lane": lane.index})
            thread = threading.Thread(
                target=self._execute,
                args=(lane, entry, lane.token),
                name=f"lane-{lane.index}-job",
                daemon=True,
            )
            thread.start()
            await lane.done.wait()
            lane.entry = None

    def _execute(self, lane: _Lane, entry: JobEntry, token: int) -> None:
        """Job-thread body: run through the farm, report the outcome.

        Mutates no entry state directly — the outcome hops to the loop via
        ``call_soon_threadsafe`` and is applied only if ``token`` is still
        current (an abandoned thread's report is discarded).
        """
        tid = threading.get_ident()
        self._running[tid] = entry
        self._lane_by_tid[tid] = lane
        outcome = {"state": FAILED, "summary": None, "error": None,
                   "from_cache": False}
        try:
            outcome["from_cache"] = self.store.contains(entry.spec)
            if self.worker is None:
                result = lane.farm.run_one(entry.spec)
            else:
                result = lane.farm.run_one(entry.spec, worker=self.worker)
            outcome["summary"] = summarize_result(entry.spec, result)
            outcome["state"] = DONE
        except FarmError as exc:
            outcome["error"] = str(exc)
        except Exception as exc:  # never let a job thread die loudly
            outcome["error"] = f"{type(exc).__name__}: {exc}"
        finally:
            self._running.pop(tid, None)
            self._lane_by_tid.pop(tid, None)
            if self._loop is not None:
                try:
                    self._loop.call_soon_threadsafe(
                        self._lane_finished, lane, entry, token, outcome
                    )
                except RuntimeError:
                    pass  # loop already closed during shutdown

    def _lane_finished(
        self, lane: _Lane, entry: JobEntry, token: int, outcome: dict
    ) -> None:
        """Loop-side: apply a job thread's outcome, unless it was abandoned."""
        if token != lane.token:
            return  # watchdog already failed this dispatch; stale report
        entry.state = outcome["state"]
        entry.summary = outcome["summary"]
        entry.error = outcome["error"]
        entry.from_cache = outcome["from_cache"]
        if entry.error is not None:
            entry.causes.append(entry.error)
        if entry.state == DONE:
            # Success resets the breaker *before* the journal append: if
            # the append then hits ENOSPC it re-trips, instead of the
            # reset masking a still-full volume.
            self.breaker.record_success()
            self._journal_append(
                {"rec": "done", "job": entry.key, "summary": entry.summary}
            )
        else:
            self._journal_append(
                {"rec": "failed", "job": entry.key, "error": entry.error}
            )
            self.breaker.record_failure(entry.error)
        self._complete(entry)
        lane.done.set()

    # -- watchdog --------------------------------------------------------
    async def _watchdog(self) -> None:
        """Fail hung or deadline-blown jobs; keep their lanes alive."""
        interval = max(0.05, self.config.watchdog_interval_s)
        while True:
            await asyncio.sleep(interval)
            now_mono = time.monotonic()
            now = time.time()
            for lane in self._lanes:
                entry = lane.entry
                if entry is None or entry.state != RUNNING:
                    continue
                stale = now_mono - lane.heartbeat
                if stale > max(interval, self.config.lane_hang_s):
                    self._abandon_lane(
                        lane, entry,
                        f"lane {lane.index} hung: no heartbeat for "
                        f"{stale:.1f}s (limit {self.config.lane_hang_s:g}s); "
                        f"lane restarted, job abandoned",
                        "watchdog_restarts",
                    )
                elif entry.deadline_at is not None and now > entry.deadline_at:
                    self._abandon_lane(
                        lane, entry,
                        f"deadline exceeded while running: {entry.deadline_s:g}s "
                        f"budget elapsed on lane {lane.index}; job abandoned",
                        "deadline_failures",
                    )

    def _abandon_lane(
        self, lane: _Lane, entry: JobEntry, cause: str, stat: str
    ) -> None:
        """Revoke the running thread's token and fail its job.

        The thread itself cannot be killed — it is left to finish (or hang
        forever) against a farm no lane will touch again; its eventual
        report is discarded by the token check.  The lane gets a fresh
        farm because the abandoned thread may still be mutating the old
        one's internals.
        """
        lane.token += 1
        lane.restarts += 1
        lane.farm = self._new_farm()
        self.stats[stat] += 1
        entry.causes.append(cause)
        entry.state = FAILED
        entry.error = cause
        self._journal_append(
            {"rec": "failed", "job": entry.key, "error": cause}
        )
        self.breaker.record_failure(cause)
        self._complete(entry)
        lane.entry = None
        lane.done.set()

    def _complete(self, entry: JobEntry) -> None:
        """Loop-side completion: stats, quota, event fan-out."""
        entry.finished_at = time.time()
        wall = entry.finished_at - (entry.started_at or entry.finished_at)
        self.scheduler.note_job_seconds(wall)
        if entry.state == DONE:
            self.stats["completed"] += 1
            if entry.from_cache:
                self.stats["cache_hits"] += 1
        else:
            self.stats["failed"] += 1
        self._push_event(
            entry,
            {
                "event": entry.state,
                "from_cache": entry.from_cache,
                "wall_s": round(wall, 4),
                "error": entry.error,
            },
        )
        self._finish_streams(entry)
        self._enforce_quota()

    def _enforce_quota(self) -> None:
        if self.config.quota_bytes is None:
            return
        pinned = {
            key
            for key, entry in self.entries.items()
            if entry.state in ACTIVE_STATES or entry.state == DONE
        }
        evicted = self.store.enforce_quota(self.config.quota_bytes, pinned)
        self.stats["evicted"] += len(evicted)

    # -- progress events -------------------------------------------------
    def _on_span_event(self, event: dict) -> None:
        """observe subscriber: runs on the job thread, hops to the loop."""
        tid = event.get("tid")
        lane = self._lane_by_tid.get(tid)
        if lane is not None:
            # Any span at all is a sign of life — pulse before filtering,
            # so a job emitting only fine-grained spans never looks hung.
            lane.heartbeat = time.monotonic()
        entry = self._running.get(tid)
        if entry is None or self._loop is None:
            return
        if not self.config.verbose_events:
            name = event["name"]
            if event["cat"] != "farm" and name not in COARSE_SPANS:
                return
        doc = {
            "event": "span",
            "phase": event["phase"],
            "name": event["name"],
            "cat": event["cat"],
            "span_seq": event["seq"],
        }
        try:
            self._loop.call_soon_threadsafe(self._push_event, entry, doc)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _push_event(self, entry: JobEntry, doc: dict) -> None:
        """Append to the entry's buffer and wake its WS subscribers."""
        self._seq += 1
        doc = {"seq": self._seq, "job": entry.key, "ts": time.time(), **doc}
        entry.events.append(doc)
        for queue in entry.subscribers:
            queue.put_nowait(doc)

    def _finish_streams(self, entry: JobEntry) -> None:
        for queue in entry.subscribers:
            queue.put_nowait(None)  # terminal marker

    # -- connection handling ---------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                # asyncio.timeout over wait_for: no wrapper task per
                # connection, which matters at loadtest request rates.
                async with asyncio.timeout(self.config.request_timeout_s):
                    request = await httpd.read_request(reader)
            except asyncio.TimeoutError:
                # Slowloris or a stalled peer: answer and hang up rather
                # than let half-open connections pile up.
                self.stats["timeouts_408"] += 1
                writer.write(
                    httpd.json_response(
                        408, {"error": "request not received in time"}
                    )
                )
                return
            except httpd.BadRequest as exc:
                writer.write(httpd.json_response(400, {"error": str(exc)}))
                return
            if request is None:
                return
            if request.wants_websocket:
                await self._handle_websocket(request, reader, writer)
                return
            writer.write(await self._route(request))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # surface handler bugs to the client
            try:
                writer.write(
                    httpd.json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _route(self, request: httpd.Request) -> bytes:
        segments = [s for s in request.path.split("/") if s]
        if segments[:1] != ["v1"]:
            return httpd.json_response(404, {"error": "unknown path"})
        tail = segments[1:]
        if request.method == "GET":
            if tail == ["healthz"]:
                return httpd.json_response(
                    200,
                    {
                        "ok": True,
                        "version": VERSION,
                        "draining": self.draining,
                        "degraded": self.breaker.open,
                        "uptime_s": round(time.time() - self.started_at, 3),
                    },
                )
            if tail == ["workloads"]:
                from repro.workloads import all_workloads

                return httpd.json_response(
                    200,
                    {"workloads": [spec.name for spec in all_workloads()]},
                )
            if tail == ["stats"]:
                return httpd.json_response(200, self._stats_doc())
            if len(tail) == 2 and tail[0] == "jobs":
                return self._job_status(tail[1])
            if len(tail) == 3 and tail[0] == "jobs" and tail[2] == "result":
                return self._job_result(tail[1])
            if len(tail) == 3 and tail[0] == "jobs" and tail[2] == "artifact":
                return self._job_artifact(tail[1])
            return httpd.json_response(404, {"error": "unknown path"})
        if request.method == "POST":
            if tail == ["jobs"]:
                return self._submit(request)
            if tail == ["shutdown"]:
                asyncio.get_running_loop().create_task(self.shutdown())
                return httpd.json_response(202, {"draining": True})
            return httpd.json_response(404, {"error": "unknown path"})
        return httpd.json_response(405, {"error": "method not allowed"})

    # -- route bodies ----------------------------------------------------
    def _submit(self, request: httpd.Request) -> bytes:
        try:
            doc = request.json()
            spec = decode_submission(doc)
            client = decode_client(doc, request.headers.get("x-repro-client"))
            deadline_s = decode_deadline(doc)
        except (ProtocolError, httpd.BadRequest) as exc:
            status = getattr(exc, "status", 400)
            doc = {"error": str(exc), "version": VERSION}
            path = getattr(exc, "path", None)
            if path is not None:
                doc["path"] = path
            return httpd.json_response(status, doc)
        self.stats["submissions"] += 1
        key = spec.key()
        entry = self.entries.get(key)
        if entry is not None and entry.state not in RETRYABLE_STATES:
            # Content-addressed dedupe: same spec → same entry.  Checked
            # before drain/degraded gating on purpose — finished and
            # in-flight work stays reachable in every server state.
            entry.dedup_hits += 1
            entry.clients.add(client)
            self.stats["dedup_hits"] += 1
            return httpd.json_response(200, entry.doc())
        if self.draining:
            return httpd.json_response(
                503, {"error": "server is draining", "draining": True}
            )
        if self.breaker.open:
            self.stats["rejected_degraded"] += 1
            retry = self.breaker.retry_after()
            return httpd.json_response(
                503,
                {
                    "error": f"server degraded: {self.breaker.cause}",
                    "degraded": True,
                    "retry_after_s": retry,
                },
                headers={"Retry-After": str(int(max(1, retry)))},
            )
        entry = JobEntry(spec=spec, key=key, client=client, clients={client})
        entry.deadline_s = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        if entry.deadline_s is not None:
            entry.deadline_at = entry.submitted_at + entry.deadline_s
        try:
            self.scheduler.submit(entry)
        except QueueFull as exc:
            self.stats["rejected_backpressure"] += 1
            return httpd.json_response(
                429,
                {
                    "error": str(exc),
                    "retry_after_s": exc.retry_after,
                },
                headers={"Retry-After": str(int(max(1, exc.retry_after)))},
            )
        self.entries[key] = entry
        self._journal_append({
            "rec": "submitted",
            "job": key,
            "client": client,
            "submission": spec_to_doc(spec),
            "deadline_s": entry.deadline_s,
        })
        self._push_event(
            entry, {"event": "queued", "position": self.scheduler.pending()}
        )
        self._lane_wakeup.set()
        return httpd.json_response(202, entry.doc())

    def _job_status(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        return httpd.json_response(200, entry.doc())

    def _job_result(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        if entry.state != DONE:
            return httpd.json_response(
                409, {"error": f"job is {entry.state}", "state": entry.state}
            )
        meta = self.store._read_meta(entry.spec)
        return httpd.json_response(
            200,
            {
                "job": key,
                "from_cache": entry.from_cache,
                "summary": entry.summary,
                "artifact_sha256": meta.get("sha256"),
                "wall_s": meta.get("wall_s"),
            },
        )

    def _job_artifact(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        if entry.state != DONE:
            return httpd.json_response(
                409, {"error": f"job is {entry.state}", "state": entry.state}
            )
        path = self.store.artifact_path(entry.spec)
        try:
            blob = path.read_bytes()
        except OSError:
            return httpd.json_response(
                404, {"error": "artifact evicted or missing"}
            )
        meta = self.store._read_meta(entry.spec)
        return httpd.response(
            200,
            blob,
            content_type="application/octet-stream",
            headers={"X-Repro-SHA256": meta.get("sha256") or ""},
        )

    def _stats_doc(self) -> dict:
        states: dict[str, int] = {}
        for entry in self.entries.values():
            states[entry.state] = states.get(entry.state, 0) + 1
        return {
            **self.stats,
            "jobs": len(self.entries),
            "states": states,
            "queue_depths": self.scheduler.depths(),
            "pending": self.scheduler.pending(),
            "store_hits": self.store.hits,
            "store_misses": self.store.misses,
            "avg_job_s": round(self.scheduler.avg_job_s, 3),
            "draining": self.draining,
            "degraded": self.breaker.open,
            "breaker": self.breaker.doc(),
            "lane_restarts": sum(lane.restarts for lane in self._lanes),
            "journal_appends": (
                self.journal.appended if self.journal is not None else 0
            ),
        }

    # -- WebSocket progress streaming ------------------------------------
    async def _handle_websocket(self, request, reader, writer) -> None:
        segments = [s for s in request.path.split("/") if s]
        if (
            len(segments) != 4
            or segments[:2] != ["v1", "jobs"]
            or segments[3] != "events"
        ):
            writer.write(httpd.json_response(404, {"error": "unknown path"}))
            return
        entry = self.entries.get(segments[2])
        if entry is None:
            writer.write(
                httpd.json_response(404, {"error": "unknown job"})
            )
            return
        # Replay cursor: ``?from=<seq>`` skips events the client already
        # received — a disconnected stream resumes exactly where it broke.
        after = 0
        raw = request.query.get("from", [""])[0]
        if raw:
            try:
                after = int(raw)
            except ValueError:
                writer.write(
                    httpd.json_response(
                        400, {"error": "'from' must be an integer sequence"}
                    )
                )
                return
        writer.write(httpd.ws_handshake_response(request))
        await writer.drain()
        self.stats["ws_connections"] += 1
        # Snapshot + subscribe atomically (no awaits between): replay the
        # buffer, then the live queue — exactly-once, in seq order.
        queue: asyncio.Queue = asyncio.Queue()
        backlog = [doc for doc in entry.events if doc["seq"] > after]
        terminal = entry.terminal
        if not terminal:
            entry.subscribers.append(queue)
        try:
            for doc in backlog:
                writer.write(httpd.ws_encode(json.dumps(doc, sort_keys=True)))
            await writer.drain()
            if not terminal:
                while True:
                    doc = await queue.get()
                    if doc is None:
                        break
                    writer.write(
                        httpd.ws_encode(json.dumps(doc, sort_keys=True))
                    )
                    await writer.drain()
            writer.write(httpd.ws_encode(b"", opcode=httpd.WS_CLOSE))
            await writer.drain()
        finally:
            if queue in entry.subscribers:
                entry.subscribers.remove(queue)


# -- thread-hosted server (tests, loadtest) --------------------------------
class ServerThread:
    """Run a :class:`ReproServer` on a dedicated event-loop thread.

    The blocking client (:mod:`repro.serve.client`) and the load-test
    harness need a live server without owning an event loop; this wrapper
    boots one in the background and exposes ``host``/``port``/``stop()``.
    """

    def __init__(self, server: ReproServer):
        self.server = server
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            # Boot failures (port in use, bad config, replay crash) must
            # reach the caller, not time out opaquely in start().
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: "
                f"{type(self._error).__name__}: {self._error}"
            ) from self._error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def reset_registry(self) -> None:
        """Forget finished jobs (loop-side), keeping the artifact store.

        The load-test harness uses this between waves to model a server
        restart over a persistent cache: the same submissions then re-run
        through the farm and hit the store instead of deduping in memory.
        """
        if self._loop is None:
            return
        done = threading.Event()

        def _clear() -> None:
            self.server.entries = {
                key: entry
                for key, entry in self.server.entries.items()
                if not entry.terminal
            }
            done.set()

        self._loop.call_soon_threadsafe(_clear)
        done.wait(timeout=10)

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain from any thread; joins the loop thread."""
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        self._thread.join(timeout=timeout)
