"""The characterization service: HTTP + WebSocket front-end over the farm.

Architecture (one process, three kinds of execution context):

* the **asyncio event loop** owns all service state — the
  :class:`~repro.serve.scheduler.FairScheduler`, the job registry, every
  WebSocket subscriber queue.  Connection handlers and lane coordinators
  are tasks on this loop; nothing else mutates service state directly.
* **execution lanes** are threads (one per lane) that run the actual
  measurement through a serial :class:`~repro.farm.executor.Farm`
  (``jobs=1`` — the simulation executes in the lane thread itself).  Lanes
  report back to the loop via ``call_soon_threadsafe``.
* **observe** feeds live progress: the server arms the tracing environment
  flag, so every lane's job runs under a per-unit tracer
  (:class:`~repro.observe.spans.UnitScope` — per *thread* since this PR),
  and subscribes to span start/end events.  Events carry the publishing
  thread id; the server maps thread → running job and forwards the
  coarse-grained spans (farm lifecycle, ``gpu.run``, ``gpu.frame``) to
  that job's WebSocket subscribers, in sequence order.

Identity is content-addressed end to end: a submission is hashed into a
:meth:`~repro.farm.job.JobSpec.key`, duplicates attach to the existing
entry, and finished artifacts live in the same
:class:`~repro.farm.store.ArtifactStore` the CLI uses — serving the very
bytes a direct ``repro`` run of the same spec would produce.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass

from repro import observe
from repro.farm.executor import Farm, FarmError
from repro.farm.store import ArtifactStore
from repro.serve import httpd
from repro.serve.protocol import (
    VERSION,
    ProtocolError,
    decode_client,
    decode_submission,
    summarize_result,
)
from repro.serve.scheduler import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    RETRYABLE_STATES,
    RUNNING,
    FairScheduler,
    JobEntry,
    QueueFull,
)

#: Span names forwarded to WebSocket subscribers by default.  Draw- and
#: stage-level spans fire thousands of times per frame — progress wants the
#: coarse pulse, the full firehose stays available via ``verbose_events``.
COARSE_SPANS = ("gpu.run", "gpu.frame")


@dataclass
class ServeConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    lanes: int = 2
    queue_depth: int = 8
    #: Cache quota in bytes (None = unlimited).  Enforced LRU after every
    #: completed job, pinning every key the registry still references.
    quota_bytes: int | None = None
    cache_dir: str | None = None
    #: Forward every span event (draw/stage level included) over WS.
    verbose_events: bool = False
    #: Draw-level incremental replay in the lane farms (``None`` resolves
    #: ``REPRO_INCREMENTAL``).  Bit-identical results, unchanged job keys.
    incremental: bool | None = None
    #: Frame-sharding policy passed through to the lane farms.
    shard_frames: int | None = None


class ReproServer:
    """One characterization service instance (create, ``await start()``)."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        store: ArtifactStore | None = None,
        worker=None,
    ):
        self.config = config or ServeConfig()
        self.store = store if store is not None else ArtifactStore(
            self.config.cache_dir
        )
        #: Optional farm worker override (tests inject stubs; ``None`` uses
        #: the standard cached/checkpointed :func:`repro.farm.run_job`).
        self.worker = worker
        self.scheduler = FairScheduler(self.config.queue_depth)
        self.entries: dict[str, JobEntry] = {}
        self.draining = False
        self.started_at = time.time()
        self.stats = {
            "submissions": 0,
            "dedup_hits": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected_backpressure": 0,
            "cache_hits": 0,
            "evicted": 0,
            "ws_connections": 0,
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._lane_tasks: list[asyncio.Task] = []
        self._lane_wakeup = asyncio.Event()
        self._drained = asyncio.Event()
        self._running: dict[int, JobEntry] = {}  # thread id -> entry
        self._seq = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        observe.arm_env()  # lane jobs trace themselves via UnitScope
        observe.subscribe(self._on_span_event)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        for index in range(max(1, self.config.lanes)):
            self._lane_tasks.append(
                asyncio.create_task(self._lane(index), name=f"lane-{index}")
            )

    async def serve_forever(self) -> None:
        assert self._server is not None
        try:
            await self._drained.wait()
        finally:
            await self._finish_shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, cancel queued, finish running."""
        if self.draining:
            return
        self.draining = True
        for entry in self.scheduler.drain():
            entry.state = CANCELLED
            entry.finished_at = time.time()
            self.stats["cancelled"] += 1
            self._push_event(entry, {"event": "cancelled"})
            self._finish_streams(entry)
        self._lane_wakeup.set()
        # Lanes exit once no queued work remains and draining is set; each
        # finishes its in-flight job first.
        if self._lane_tasks:
            await asyncio.gather(*self._lane_tasks, return_exceptions=True)
        self._drained.set()

    async def _finish_shutdown(self) -> None:
        observe.unsubscribe(self._on_span_event)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- execution lanes -------------------------------------------------
    async def _lane(self, index: int) -> None:
        """One lane: pull fairly, execute in a thread, publish the outcome."""
        farm = Farm(
            store=self.store,
            jobs=1,
            checkpoint_every=0,
            shard_frames=self.config.shard_frames,
            incremental=self.config.incremental,
        )
        while True:
            entry = self.scheduler.next_entry()
            if entry is None:
                if self.draining:
                    return
                self._lane_wakeup.clear()
                await self._lane_wakeup.wait()
                continue
            entry.state = RUNNING
            entry.started_at = time.time()
            self._push_event(entry, {"event": "started", "lane": index})
            await asyncio.get_running_loop().run_in_executor(
                None, self._execute, farm, entry
            )
            self._complete(entry)

    def _execute(self, farm: Farm, entry: JobEntry) -> None:
        """Lane-thread body: run the job through the farm, record outcome."""
        tid = threading.get_ident()
        self._running[tid] = entry
        entry.from_cache = self.store.contains(entry.spec)
        try:
            if self.worker is None:
                result = farm.run_one(entry.spec)
            else:
                result = farm.run_one(entry.spec, worker=self.worker)
            entry.summary = summarize_result(entry.spec, result)
            entry.state = DONE
        except FarmError as exc:
            entry.state = FAILED
            entry.error = str(exc)
        except Exception as exc:  # never let a lane die
            entry.state = FAILED
            entry.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._running.pop(tid, None)

    def _complete(self, entry: JobEntry) -> None:
        """Loop-side completion: stats, quota, event fan-out."""
        entry.finished_at = time.time()
        wall = entry.finished_at - (entry.started_at or entry.finished_at)
        self.scheduler.note_job_seconds(wall)
        if entry.state == DONE:
            self.stats["completed"] += 1
            if entry.from_cache:
                self.stats["cache_hits"] += 1
        else:
            self.stats["failed"] += 1
        self._push_event(
            entry,
            {
                "event": entry.state,
                "from_cache": entry.from_cache,
                "wall_s": round(wall, 4),
                "error": entry.error,
            },
        )
        self._finish_streams(entry)
        self._enforce_quota()

    def _enforce_quota(self) -> None:
        if self.config.quota_bytes is None:
            return
        pinned = {
            key
            for key, entry in self.entries.items()
            if entry.state in ACTIVE_STATES or entry.state == DONE
        }
        evicted = self.store.enforce_quota(self.config.quota_bytes, pinned)
        self.stats["evicted"] += len(evicted)

    # -- progress events -------------------------------------------------
    def _on_span_event(self, event: dict) -> None:
        """observe subscriber: runs on the lane thread, hops to the loop."""
        entry = self._running.get(event.get("tid"))
        if entry is None or self._loop is None:
            return
        if not self.config.verbose_events:
            name = event["name"]
            if event["cat"] != "farm" and name not in COARSE_SPANS:
                return
        doc = {
            "event": "span",
            "phase": event["phase"],
            "name": event["name"],
            "cat": event["cat"],
            "span_seq": event["seq"],
        }
        try:
            self._loop.call_soon_threadsafe(self._push_event, entry, doc)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _push_event(self, entry: JobEntry, doc: dict) -> None:
        """Append to the entry's buffer and wake its WS subscribers."""
        self._seq += 1
        doc = {"seq": self._seq, "job": entry.key, "ts": time.time(), **doc}
        entry.events.append(doc)
        for queue in entry.subscribers:
            queue.put_nowait(doc)

    def _finish_streams(self, entry: JobEntry) -> None:
        for queue in entry.subscribers:
            queue.put_nowait(None)  # terminal marker

    # -- connection handling ---------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await httpd.read_request(reader)
            except httpd.BadRequest as exc:
                writer.write(httpd.json_response(400, {"error": str(exc)}))
                return
            if request is None:
                return
            if request.wants_websocket:
                await self._handle_websocket(request, reader, writer)
                return
            writer.write(await self._route(request))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # surface handler bugs to the client
            try:
                writer.write(
                    httpd.json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

    async def _route(self, request: httpd.Request) -> bytes:
        segments = [s for s in request.path.split("/") if s]
        if segments[:1] != ["v1"]:
            return httpd.json_response(404, {"error": "unknown path"})
        tail = segments[1:]
        if request.method == "GET":
            if tail == ["healthz"]:
                return httpd.json_response(
                    200,
                    {
                        "ok": True,
                        "version": VERSION,
                        "draining": self.draining,
                        "uptime_s": round(time.time() - self.started_at, 3),
                    },
                )
            if tail == ["workloads"]:
                from repro.workloads import all_workloads

                return httpd.json_response(
                    200,
                    {"workloads": [spec.name for spec in all_workloads()]},
                )
            if tail == ["stats"]:
                return httpd.json_response(200, self._stats_doc())
            if len(tail) == 2 and tail[0] == "jobs":
                return self._job_status(tail[1])
            if len(tail) == 3 and tail[0] == "jobs" and tail[2] == "result":
                return self._job_result(tail[1])
            if len(tail) == 3 and tail[0] == "jobs" and tail[2] == "artifact":
                return self._job_artifact(tail[1])
            return httpd.json_response(404, {"error": "unknown path"})
        if request.method == "POST":
            if tail == ["jobs"]:
                return self._submit(request)
            if tail == ["shutdown"]:
                asyncio.get_running_loop().create_task(self.shutdown())
                return httpd.json_response(202, {"draining": True})
            return httpd.json_response(404, {"error": "unknown path"})
        return httpd.json_response(405, {"error": "method not allowed"})

    # -- route bodies ----------------------------------------------------
    def _submit(self, request: httpd.Request) -> bytes:
        try:
            doc = request.json()
            spec = decode_submission(doc)
            client = decode_client(doc, request.headers.get("x-repro-client"))
        except (ProtocolError, httpd.BadRequest) as exc:
            status = getattr(exc, "status", 400)
            doc = {"error": str(exc), "version": VERSION}
            path = getattr(exc, "path", None)
            if path is not None:
                doc["path"] = path
            return httpd.json_response(status, doc)
        self.stats["submissions"] += 1
        key = spec.key()
        entry = self.entries.get(key)
        if entry is not None and entry.state not in RETRYABLE_STATES:
            # Content-addressed dedupe: same spec → same entry.
            entry.dedup_hits += 1
            entry.clients.add(client)
            self.stats["dedup_hits"] += 1
            return httpd.json_response(200, entry.doc())
        if self.draining:
            return httpd.json_response(
                503, {"error": "server is draining", "draining": True}
            )
        entry = JobEntry(spec=spec, key=key, client=client, clients={client})
        try:
            self.scheduler.submit(entry)
        except QueueFull as exc:
            self.stats["rejected_backpressure"] += 1
            return httpd.json_response(
                429,
                {
                    "error": str(exc),
                    "retry_after_s": exc.retry_after,
                },
                headers={"Retry-After": str(int(max(1, exc.retry_after)))},
            )
        self.entries[key] = entry
        self._push_event(
            entry, {"event": "queued", "position": self.scheduler.pending()}
        )
        self._lane_wakeup.set()
        return httpd.json_response(202, entry.doc())

    def _job_status(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        return httpd.json_response(200, entry.doc())

    def _job_result(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        if entry.state != DONE:
            return httpd.json_response(
                409, {"error": f"job is {entry.state}", "state": entry.state}
            )
        meta = self.store._read_meta(entry.spec)
        return httpd.json_response(
            200,
            {
                "job": key,
                "from_cache": entry.from_cache,
                "summary": entry.summary,
                "artifact_sha256": meta.get("sha256"),
                "wall_s": meta.get("wall_s"),
            },
        )

    def _job_artifact(self, key: str) -> bytes:
        entry = self.entries.get(key)
        if entry is None:
            return httpd.json_response(404, {"error": f"unknown job {key!r}"})
        if entry.state != DONE:
            return httpd.json_response(
                409, {"error": f"job is {entry.state}", "state": entry.state}
            )
        path = self.store.artifact_path(entry.spec)
        try:
            blob = path.read_bytes()
        except OSError:
            return httpd.json_response(
                404, {"error": "artifact evicted or missing"}
            )
        meta = self.store._read_meta(entry.spec)
        return httpd.response(
            200,
            blob,
            content_type="application/octet-stream",
            headers={"X-Repro-SHA256": meta.get("sha256") or ""},
        )

    def _stats_doc(self) -> dict:
        states: dict[str, int] = {}
        for entry in self.entries.values():
            states[entry.state] = states.get(entry.state, 0) + 1
        return {
            **self.stats,
            "jobs": len(self.entries),
            "states": states,
            "queue_depths": self.scheduler.depths(),
            "pending": self.scheduler.pending(),
            "store_hits": self.store.hits,
            "store_misses": self.store.misses,
            "avg_job_s": round(self.scheduler.avg_job_s, 3),
            "draining": self.draining,
        }

    # -- WebSocket progress streaming ------------------------------------
    async def _handle_websocket(self, request, reader, writer) -> None:
        segments = [s for s in request.path.split("/") if s]
        if (
            len(segments) != 4
            or segments[:2] != ["v1", "jobs"]
            or segments[3] != "events"
        ):
            writer.write(httpd.json_response(404, {"error": "unknown path"}))
            return
        entry = self.entries.get(segments[2])
        if entry is None:
            writer.write(
                httpd.json_response(404, {"error": "unknown job"})
            )
            return
        writer.write(httpd.ws_handshake_response(request))
        await writer.drain()
        self.stats["ws_connections"] += 1
        # Snapshot + subscribe atomically (no awaits between): replay the
        # buffer, then the live queue — exactly-once, in seq order.
        queue: asyncio.Queue = asyncio.Queue()
        backlog = list(entry.events)
        terminal = entry.terminal
        if not terminal:
            entry.subscribers.append(queue)
        try:
            for doc in backlog:
                writer.write(httpd.ws_encode(json.dumps(doc, sort_keys=True)))
            await writer.drain()
            if not terminal:
                while True:
                    doc = await queue.get()
                    if doc is None:
                        break
                    writer.write(
                        httpd.ws_encode(json.dumps(doc, sort_keys=True))
                    )
                    await writer.drain()
            writer.write(httpd.ws_encode(b"", opcode=httpd.WS_CLOSE))
            await writer.drain()
        finally:
            if queue in entry.subscribers:
                entry.subscribers.remove(queue)


# -- thread-hosted server (tests, loadtest) --------------------------------
class ServerThread:
    """Run a :class:`ReproServer` on a dedicated event-loop thread.

    The blocking client (:mod:`repro.serve.client`) and the load-test
    harness need a live server without owning an event loop; this wrapper
    boots one in the background and exposes ``host``/``port``/``stop()``.
    """

    def __init__(self, server: ReproServer):
        self.server = server
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._loop: asyncio.AbstractEventLoop | None = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def reset_registry(self) -> None:
        """Forget finished jobs (loop-side), keeping the artifact store.

        The load-test harness uses this between waves to model a server
        restart over a persistent cache: the same submissions then re-run
        through the farm and hit the store instead of deduping in memory.
        """
        if self._loop is None:
            return
        done = threading.Event()

        def _clear() -> None:
            self.server.entries = {
                key: entry
                for key, entry in self.server.entries.items()
                if not entry.terminal
            }
            done.set()

        self._loop.call_soon_threadsafe(_clear)
        done.wait(timeout=10)

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain from any thread; joins the loop thread."""
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            try:
                future.result(timeout=timeout)
            except Exception:
                pass
        self._thread.join(timeout=timeout)
