"""repro.observe — unified tracing, metrics, and timeline export.

The subsystem unifies the three previously disjoint instrumentation paths
(per-draw profiler rows, coarse cycle estimates, farm phase wall times)
behind one accounting layer:

* :mod:`~repro.observe.spans` — hierarchical spans (run → frame → draw →
  pipeline stage) with a zero-allocation no-op path when disabled;
* :mod:`~repro.observe.metrics` — process-wide counters / gauges /
  fixed-bucket histograms with order-independent cross-process merge;
* :mod:`~repro.observe.export` — Chrome-trace/Perfetto JSON, JSONL, ASCII
  timeline and top-span tables, deterministic (diffable) on the logical
  clock.

Typical use::

    from repro import observe

    tracer = observe.enable()          # also flags farm workers via env
    repro.simulate("UT2004/Primeval", frames=2)
    observe.write_export("trace.json", tracer.timeline())
    observe.disable()

or from the CLI: ``repro observe "UT2004/Primeval" --frames 2 --jobs 4
--export trace.json``.
"""

from __future__ import annotations

from repro.observe import metrics, spans
from repro.observe.export import (
    ascii_timeline,
    format_metrics,
    format_top_spans,
    from_jsonl,
    to_chrome,
    to_jsonl,
    top_spans,
    validate_chrome,
    write_export,
)
from repro.observe.metrics import MetricsRegistry, registry
from repro.observe.spans import (
    NOOP,
    Tracer,
    UnitScope,
    arm_env,
    current,
    disable,
    enable,
    enabled,
    env_enabled,
    span,
    subscribe,
    unsubscribe,
)

__all__ = [
    "MetricsRegistry",
    "NOOP",
    "Tracer",
    "UnitScope",
    "absorb_job",
    "arm_env",
    "ascii_timeline",
    "current",
    "disable",
    "enable",
    "enabled",
    "env_enabled",
    "format_metrics",
    "format_top_spans",
    "from_jsonl",
    "metrics",
    "registry",
    "span",
    "spans",
    "subscribe",
    "to_chrome",
    "to_jsonl",
    "top_spans",
    "unsubscribe",
    "validate_chrome",
    "write_export",
]


def absorb_job(store, job) -> bool:
    """Fold a worker's span sidecar for ``job`` into the parent timeline.

    Called by the farm at harvest for freshly executed units.  No-op when
    the parent isn't tracing.  A missing/corrupt sidecar (worker predates
    tracing, artifact quarantined) is counted, not fatal — the timeline
    simply lacks that unit's track.  Returns True when a track was merged.
    """
    tracer = spans.current()
    if tracer is None:
        return False
    payload = store.load_spans(job)
    if payload is None:
        metrics.registry().counter("observe.sidecars_missing").inc()
        return False
    tracer.absorb(payload)
    try:
        metrics.registry().merge(payload.get("metrics") or {})
    except (TypeError, ValueError, KeyError):
        metrics.registry().counter("observe.metrics_rejected").inc()
    metrics.registry().counter("observe.sidecars_merged").inc()
    return True
