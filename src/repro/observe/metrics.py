"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric side of the observability subsystem: the GPU
pipeline publishes per-frame event counts, :class:`~repro.gpu.profiler
.DrawProfiler` publishes per-draw cost distributions, and
:class:`~repro.farm.telemetry.FarmTelemetry` keeps its phase accounting in a
registry (its own by default, the process-wide one when the ``repro
observe`` CLI wires them together) — so the ``farm status`` summary and a
metrics dump can never disagree.

Cross-process semantics are defined by :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.merge`: farm workers snapshot their per-unit registry
into the span sidecar and the parent merges at harvest.  Merging is
order-independent — counters and histogram buckets add, gauges take the
maximum — so totals are identical no matter how units were scheduled.
"""

from __future__ import annotations


class Counter:
    """Monotonically increasing value (int or float increments)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value; merges across processes by maximum."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies values <= buckets[i].

    The final slot counts overflow (values above the last bound).  Buckets
    are fixed at creation, so snapshots from different processes merge by
    plain elementwise addition.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    #: Default bounds: half-decade steps over the ranges the pipeline and
    #: farm produce (fragment counts, bytes, draw costs).
    DEFAULT_BUCKETS = (
        10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000
    )

    def __init__(self, buckets=None):
        self.buckets = tuple(buckets) if buckets else self.DEFAULT_BUCKETS
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.count = 0

    def observe(self, value) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Named metrics, get-or-create, with snapshot/merge for sidecars."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get(name, lambda: Histogram(buckets), Histogram)

    def items(self, prefix: str = ""):
        """``(name, metric)`` pairs in deterministic (sorted) order."""
        return [
            (name, self._metrics[name])
            for name in sorted(self._metrics)
            if name.startswith(prefix)
        ]

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- cross-process ---------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-JSON form of every metric (the sidecar ``metrics`` field)."""
        return {name: metric.snapshot() for name, metric in self.items()}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges take max.

        A malformed entry (wrong type, mismatched buckets) raises
        ``TypeError``/``ValueError`` — callers merging untrusted sidecars
        catch and drop.
        """
        for name, doc in sorted(snapshot.items()):
            kind = doc.get("type")
            if kind == "counter":
                self.counter(name).inc(doc["value"])
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.set(max(gauge.value, doc["value"]))
            elif kind == "histogram":
                hist = self.histogram(name, doc["buckets"])
                if list(hist.buckets) != list(doc["buckets"]):
                    raise ValueError(f"histogram {name!r} bucket mismatch")
                for i, c in enumerate(doc["counts"]):
                    hist.counts[i] += c
                hist.total += doc["total"]
                hist.count += doc["count"]
            else:
                raise TypeError(f"unknown metric type {kind!r} for {name!r}")


#: The process-wide registry everything publishes into by default.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return REGISTRY


def reset() -> None:
    """Empty the process-wide registry (unit scopes, tests, CLI startup)."""
    REGISTRY.clear()
