"""Timeline exports: Chrome-trace/Perfetto JSON, JSONL, ASCII, top spans.

A *timeline* is a list of track payloads (see
:meth:`repro.observe.spans.Tracer.timeline`): the parent's own track first,
then every absorbed worker track in sorted order.  All exports walk that
structure in deterministic order, and every span carries two clocks:

* ``clock="logical"`` (the default) renders the per-track **event
  sequence** — timestamps depend only on execution order, so two runs of
  the same workload/seed produce byte-identical exports no matter how the
  farm scheduled the units.  This is the diffable/CI form.
* ``clock="wall"`` renders real ``perf_counter_ns`` durations, aligned
  across processes with each track's ``time.time_ns`` anchor — the form to
  open in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The Chrome-trace output is the standard ``{"traceEvents": [...]}`` document
of complete (``"ph": "X"``) events with one pid per track;
:func:`validate_chrome` is the minimal schema check CI runs against every
exported trace (structure, field types, and parent/child containment).
"""

from __future__ import annotations

import json


def _depths(spans: list[dict]) -> list[int]:
    depths = []
    for doc in spans:
        parent = doc["parent"]
        depths.append(0 if parent < 0 else depths[parent] + 1)
    return depths


def _wall_us(track: dict, base_epoch_ns: int, t_ns: int) -> float:
    offset = track["epoch_ns"] - base_epoch_ns - track["anchor_ns"]
    return round((t_ns + offset) / 1000.0, 3)


# -- Chrome trace ---------------------------------------------------------
def to_chrome(tracks: list[dict], clock: str = "logical") -> dict:
    """Build a Chrome-trace/Perfetto document from a timeline."""
    if clock not in ("logical", "wall"):
        raise ValueError(f"unknown clock {clock!r}")
    base_epoch = min((t["epoch_ns"] for t in tracks), default=0)
    events: list[dict] = []
    for pid, track in enumerate(tracks, start=1):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": track["track"]},
            }
        )
        for doc in track["spans"]:
            if clock == "logical":
                ts: float | int = doc["s0"]
                dur: float | int = doc["s1"] - doc["s0"]
            else:
                ts = _wall_us(track, base_epoch, doc["t0"])
                dur = round((doc["t1"] - doc["t0"]) / 1000.0, 3)
            events.append(
                {
                    "ph": "X",
                    "name": doc["name"],
                    "cat": doc["cat"],
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "dur": dur,
                    "args": doc["attrs"],
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro observe",
            "clock": clock,
            "tracks": [t["track"] for t in tracks],
        },
    }


def validate_chrome(doc) -> list[str]:
    """Minimal schema check for an exported Chrome trace; [] means valid."""
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    if not events:
        errors.append("traceEvents is empty")
    complete: dict[tuple, list[dict]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if ev.get("ph") not in ("X", "M"):
            errors.append(f"{where}: ph must be 'X' or 'M'")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ev["ph"] == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
                continue
            complete.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    eps = 1e-3  # wall timestamps are rounded to 3 decimals (ns resolution)
    for (pid, tid), lane in complete.items():
        lane.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        stack: list[float] = []  # open span end times
        for ev in lane:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1] - eps:
                stack.pop()
            if stack and end > stack[-1] + eps:
                errors.append(
                    f"pid {pid} tid {tid}: span {ev['name']!r} at ts "
                    f"{ev['ts']} overlaps its enclosing span"
                )
            stack.append(end)
    return errors


# -- JSONL ----------------------------------------------------------------
def to_jsonl(tracks: list[dict]) -> str:
    """Line-per-record export: a track header, then its spans, in order."""
    lines = []
    for track in tracks:
        head = {k: v for k, v in track.items() if k != "spans"}
        head["type"] = "track"
        head["count"] = len(track["spans"])
        lines.append(json.dumps(head, sort_keys=True))
        for doc in track["spans"]:
            lines.append(
                json.dumps({"type": "span", **doc}, sort_keys=True)
            )
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> list[dict]:
    """Parse :func:`to_jsonl` output back into a timeline (round-trip)."""
    tracks: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        doc = json.loads(line)
        kind = doc.pop("type", None)
        if kind == "track":
            doc.pop("count", None)
            doc["spans"] = []
            tracks.append(doc)
        elif kind == "span":
            if not tracks:
                raise ValueError(f"line {lineno}: span before any track")
            tracks[-1]["spans"].append(doc)
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    return tracks


# -- ASCII timeline -------------------------------------------------------
def _fmt_ms(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    return f"{ns / 1e3:.0f}us"


def ascii_timeline(
    tracks: list[dict], width: int = 40, depth_limit: int = 2
) -> str:
    """Indented tree + proportional bars, one block per track."""
    out: list[str] = []
    for track in tracks:
        spans = track["spans"]
        out.append(f"-- track {track['track']} (pid {track['pid']}) " + "-" * 8)
        if not spans:
            out.append("  (no spans)")
            continue
        depths = _depths(spans)
        t_min = min(doc["t0"] for doc in spans)
        t_max = max(doc["t1"] for doc in spans)
        extent = max(1, t_max - t_min)
        shown = 0
        for doc, depth in zip(spans, depths):
            if depth > depth_limit:
                continue
            shown += 1
            left = int(width * (doc["t0"] - t_min) / extent)
            right = max(left + 1, int(width * (doc["t1"] - t_min) / extent))
            bar = " " * left + "#" * (right - left)
            label = ("  " * depth + doc["name"])[:38]
            out.append(
                f"  {label:<38} {_fmt_ms(doc['t1'] - doc['t0']):>9} "
                f"|{bar:<{width}}|"
            )
        hidden = len(spans) - shown
        if hidden:
            out.append(f"  ... {hidden} deeper span(s) not shown")
    return "\n".join(out)


# -- aggregation ----------------------------------------------------------
def top_spans(tracks: list[dict], n: int | None = 10) -> list[dict]:
    """Aggregate spans by name across every track, heaviest total first.

    ``self`` time is the span's wall time minus its direct children's, so
    a hot leaf stage stands out even under a long-running parent.

    Ranking is by total wall time with a fully deterministic tie-break —
    self time, then name, then first-seen order (the position at which the
    name first appeared walking the timeline, itself deterministic because
    tracks and their spans are ordered) — so two runs that aggregate to
    the same durations render their tables in the same order and a
    cross-run diff of the table is stable.  ``n=None`` returns every name.
    """
    totals: dict[str, dict] = {}
    for track in tracks:
        spans = track["spans"]
        child_ns = [0] * len(spans)
        for doc in spans:
            if doc["parent"] >= 0:
                child_ns[doc["parent"]] += doc["t1"] - doc["t0"]
        for doc, children in zip(spans, child_ns):
            agg = totals.setdefault(
                doc["name"],
                {"name": doc["name"], "cat": doc["cat"], "count": 0,
                 "total_ns": 0, "self_ns": 0, "first_seen": len(totals)},
            )
            wall = doc["t1"] - doc["t0"]
            agg["count"] += 1
            agg["total_ns"] += wall
            agg["self_ns"] += wall - children
    ranked = sorted(
        totals.values(),
        key=lambda a: (
            -a["total_ns"], -a["self_ns"], a["name"], a["first_seen"]
        ),
    )
    return ranked if n is None else ranked[:n]


def format_top_spans(tracks: list[dict], n: int = 10) -> str:
    from repro.util.tables import format_table

    rows = [
        [
            agg["name"],
            agg["cat"],
            agg["count"],
            _fmt_ms(agg["total_ns"]),
            _fmt_ms(agg["self_ns"]),
            _fmt_ms(agg["total_ns"] // max(agg["count"], 1)),
        ]
        for agg in top_spans(tracks, n)
    ]
    return format_table(
        ["span", "cat", "count", "total", "self", "avg"],
        rows,
        title=f"Top {len(rows)} spans by total wall time",
    )


def format_metrics(registry, prefix: str = "") -> str:
    """Deterministic table dump of a :class:`MetricsRegistry`."""
    from repro.util.tables import format_table

    rows = []
    for name, metric in registry.items(prefix):
        snap = metric.snapshot()
        if snap["type"] == "histogram":
            value = (
                f"count={snap['count']} total={snap['total']} "
                f"mean={metric.mean:.1f}"
            )
        elif isinstance(snap["value"], float):
            value = f"{snap['value']:.4f}"
        else:
            value = str(snap["value"])
        rows.append([name, snap["type"], value])
    return format_table(
        ["metric", "type", "value"], rows, title="Metrics registry"
    )


def write_export(path, tracks: list[dict], clock: str = "logical"):
    """Write a timeline to ``path``: ``.jsonl`` → JSONL, else Chrome JSON.

    The Chrome form is validated before writing; a schema violation raises
    ``ValueError`` (exports are CI artifacts — a malformed one must fail
    loudly, not upload quietly).
    """
    import pathlib

    out = pathlib.Path(path)
    if out.suffix == ".jsonl":
        out.write_text(to_jsonl(tracks))
        return out
    doc = to_chrome(tracks, clock=clock)
    errors = validate_chrome(doc)
    if errors:
        raise ValueError(
            "refusing to write invalid trace: " + "; ".join(errors[:5])
        )
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out
