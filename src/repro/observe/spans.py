"""Hierarchical low-overhead spans: run → frame → draw → pipeline stage.

One process-wide :class:`Tracer` (installed with :func:`enable`) collects
:class:`Span` records from every instrumented layer — the GPU pipeline
(:mod:`repro.gpu.pipeline`), the execution farm (:mod:`repro.farm.executor`),
and the experiment runner (:mod:`repro.experiments.runner`).  When no tracer
is installed, :func:`span` returns a shared no-op singleton: the disabled
fast path performs **no allocation** at all (asserted by
``tests/test_observe.py``), so instrumentation can stay in hot code
unconditionally.

Two clocks per span make exports both human-useful and diffable:

* ``t0``/``t1`` — ``time.perf_counter_ns()`` wall time, for real durations;
* ``s0``/``s1`` — a per-tracer **event sequence** incremented on every span
  start *and* end.  Sequence numbers depend only on execution order, which
  is deterministic for a given workload/seed, so exports rendered on the
  sequence clock are bit-stable across reruns and machines.

Cross-process collection: a farm pool worker has no parent tracer, so
:class:`UnitScope` gives each execution unit (job or frame shard) a fresh
tracer whose buffer is serialized into an artifact sidecar
(:meth:`repro.farm.store.ArtifactStore.save_spans`); the parent absorbs the
sidecars at harvest into per-unit *tracks* of one coherent timeline.  The
same scope run in-parent (serial path) just opens a normal span, so serial
and parallel runs produce one merged timeline either way.

The installed tracer is **per thread** (a ``threading.local`` slot): the
serving layer (:mod:`repro.serve`) runs several execution lanes as threads
of one process, and each lane's :class:`UnitScope` must buffer only its own
unit's spans.  Single-threaded callers see the exact old semantics —
``enable()`` installs, ``span()`` finds, ``disable()`` removes.

Live progress taps in through :func:`subscribe`: while at least one
subscriber is registered, every span start/end on any thread's tracer is
published as a small event document (name, category, track, sequence
number, thread id).  With no subscribers the publish path is a single
empty-list check, so the farm and pipeline pay nothing for it.
"""

from __future__ import annotations

import os
import threading
import time

#: Environment flag that tells forked/spawned farm workers to trace.
ENV_FLAG = "REPRO_OBSERVE"


class Span:
    """One timed region; context manager returned by an enabled tracer."""

    __slots__ = ("name", "cat", "parent", "s0", "s1", "t0", "t1", "attrs",
                 "index", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, cat: str, parent: int):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.parent = parent  # index into the tracer's buffer, -1 for roots
        self.attrs: dict | None = None
        self.s0 = tracer.tick()
        self.s1: int | None = None
        self.t0 = time.perf_counter_ns()
        self.t1: int | None = None

    def set(self, key: str, value) -> None:
        """Attach an attribute (exported into the trace's ``args``)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc) -> bool:
        self._tracer.close(self)
        return False

    def as_dict(self) -> dict:
        """Serialized form (the sidecar/JSONL schema)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "parent": self.parent,
            "s0": self.s0,
            "s1": self.s1,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs or {},
        }


class _NoopSpan:
    """Shared do-nothing stand-in handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key, value) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


#: The one no-op instance; ``span()`` returns it without allocating.
NOOP = _NoopSpan()


class Tracer:
    """Collects one process's spans (a *track*) plus absorbed foreign tracks."""

    def __init__(self, track: str = "main"):
        self.track = track
        self.pid = os.getpid()
        #: Wall-clock anchor pair: ``epoch_ns`` (time.time_ns) taken at the
        #: same instant as ``anchor_ns`` (perf_counter_ns) lets exports align
        #: tracks from different processes on one absolute axis.
        self.epoch_ns = time.time_ns()
        self.anchor_ns = time.perf_counter_ns()
        self.spans: list[Span] = []
        self.foreign: dict[str, dict] = {}  # track name -> serialized payload
        self._stack: list[Span] = []
        self._seq = 0

    # -- span lifecycle --------------------------------------------------
    def tick(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def start(self, name: str, cat: str = "span") -> Span:
        parent = self._stack[-1].index if self._stack else -1
        span = Span(self, name, cat, parent)
        span.index = len(self.spans)
        self.spans.append(span)
        self._stack.append(span)
        if _SUBSCRIBERS:
            _publish("start", self, span, span.s0)
        return span

    def close(self, span: Span) -> None:
        span.s1 = self.tick()
        span.t1 = time.perf_counter_ns()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        if _SUBSCRIBERS:
            _publish("end", self, span, span.s1)

    # -- serialization / merge -------------------------------------------
    def payload(self, metrics: dict | None = None) -> dict:
        """Serialize this tracer's own track (the sidecar document).

        Spans still open are closed *in the serialized copy only* at the
        current sequence/time, so a payload is always well-formed.
        """
        now_seq = self._seq
        now_ns = time.perf_counter_ns()
        spans = []
        for span in self.spans:
            doc = span.as_dict()
            if doc["s1"] is None:
                doc["s1"] = now_seq
                doc["t1"] = now_ns
            spans.append(doc)
        return {
            "track": self.track,
            "pid": self.pid,
            "epoch_ns": self.epoch_ns,
            "anchor_ns": self.anchor_ns,
            "spans": spans,
            "metrics": metrics or {},
        }

    def absorb(self, payload: dict) -> None:
        """Merge a foreign (worker sidecar) track into this timeline."""
        self.foreign[str(payload.get("track", "?"))] = payload

    def timeline(self, metrics: dict | None = None) -> list[dict]:
        """Every track, own first, foreign tracks in deterministic order."""
        return [self.payload(metrics)] + [
            self.foreign[name] for name in sorted(self.foreign)
        ]


# -- module-level tracer --------------------------------------------------
#: Per-thread tracer slot.  Each thread installs and finds its own tracer,
#: so concurrent serve lanes (threads) buffer disjoint span tracks; a
#: single-threaded process behaves exactly as a plain module global would.
_SLOT = threading.local()

# -- live event subscription ----------------------------------------------
#: Callbacks receiving every span start/end while registered (any thread).
_SUBSCRIBERS: list = []


def subscribe(callback) -> None:
    """Register ``callback(event: dict)`` for live span start/end events.

    Events carry ``phase`` ("start"/"end"), ``name``, ``cat``, ``track``,
    ``seq`` (the tracer's logical clock at the edge), ``pid`` and ``tid``
    (the publishing thread, so a multiplexing consumer can attribute events
    to the unit of work it scheduled on that thread).  Callbacks run inline
    on the instrumented thread and must be fast and non-raising; exceptions
    are swallowed so observability can never fail the measurement.
    """
    if callback not in _SUBSCRIBERS:
        _SUBSCRIBERS.append(callback)


def unsubscribe(callback) -> None:
    try:
        _SUBSCRIBERS.remove(callback)
    except ValueError:
        pass


def _publish(phase: str, tracer: "Tracer", span: Span, seq: int) -> None:
    event = {
        "phase": phase,
        "name": span.name,
        "cat": span.cat,
        "track": tracer.track,
        "seq": seq,
        "pid": tracer.pid,
        "tid": threading.get_ident(),
    }
    for callback in list(_SUBSCRIBERS):
        try:
            callback(event)
        except Exception:
            pass


def current() -> Tracer | None:
    return getattr(_SLOT, "tracer", None)


def enabled() -> bool:
    return getattr(_SLOT, "tracer", None) is not None


def env_enabled() -> bool:
    """Whether a parent process asked descendants to trace."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def arm_env() -> None:
    """Set :data:`ENV_FLAG` without installing a tracer here.

    Farm workers (and serve lane threads) that see the flag give each
    execution unit a fresh tracer via :class:`UnitScope`; the arming
    process/thread itself stays untraced.
    """
    os.environ[ENV_FLAG] = "1"


def enable(track: str = "main", env: bool = True) -> Tracer:
    """Install a fresh tracer on this thread and return it.

    ``env=True`` also sets :data:`ENV_FLAG` so farm pool workers (which
    inherit the environment) trace their units into sidecars.
    """
    _SLOT.tracer = Tracer(track)
    if env:
        os.environ[ENV_FLAG] = "1"
    return _SLOT.tracer


def disable() -> None:
    """Remove this thread's tracer (and the worker flag); ``span()`` goes no-op."""
    _SLOT.tracer = None
    os.environ.pop(ENV_FLAG, None)


def span(name: str, cat: str = "span"):
    """Start a span on the current tracer, or return the no-op singleton.

    The disabled path allocates nothing: two constant loads and a return.
    Attach attributes through the returned object so call sites pay for
    them only when tracing is live::

        with span("gpu.draw", "gpu") as s:
            if s:
                s.set("mesh", draw.mesh)
    """
    tracer = getattr(_SLOT, "tracer", None)
    if tracer is None:
        return NOOP
    return tracer.start(name, cat)


class UnitScope:
    """Per-execution-unit tracing scope for farm workers (and serial runs).

    In a process that already traces (the parent), the scope is just a
    ``job:<label>`` span.  In a worker process with no tracer but with the
    :data:`ENV_FLAG` inherited, it installs a fresh per-unit tracer;
    :meth:`finish` uninstalls it and returns the serialized payload for the
    sidecar.  Buffers are per *unit*, not per worker process, so their
    contents depend only on the unit's (deterministic) work — never on
    which worker ran it or what ran before.
    """

    def __init__(self, label: str):
        self.fresh = False
        installed = getattr(_SLOT, "tracer", None)
        # A tracer from another pid is the parent's, inherited across a
        # fork — stale here.  Replace it with a per-unit tracer.
        stale = installed is not None and installed.pid != os.getpid()
        if (installed is None or stale) and env_enabled():
            installed = Tracer(track=label)
            _SLOT.tracer = installed
            self.fresh = True
        self._tracer = installed
        self._root = (
            self._tracer.start(f"job:{label}", cat="farm")
            if self._tracer is not None
            else None
        )

    def finish(self, metrics: dict | None = None) -> dict | None:
        """Close the scope; return the sidecar payload for fresh units."""
        if self._root is not None:
            self._tracer.close(self._root)
        if not self.fresh:
            return None
        payload = self._tracer.payload(metrics)
        _SLOT.tracer = None
        return payload
