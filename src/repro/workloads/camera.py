"""Timedemo camera paths.

A timedemo is a recorded fly-through; we synthesize one as a deterministic
parametric path.  Corridor paths walk room to room with gentle look-around
(indoor games); terrain paths orbit/advance over open ground (Oblivion).
The look-around is what makes batches-per-frame vary over time (Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.mathutil import look_at, perspective


@dataclass(frozen=True)
class CameraShot:
    """One frame's camera: view/projection matrices and position."""

    view: np.ndarray
    projection: np.ndarray
    position: np.ndarray

    @property
    def view_projection(self) -> np.ndarray:
        return self.projection @ self.view


class CorridorPath:
    """Walk down a corridor of ``rooms`` rooms of ``room_length`` units.

    The camera advances continuously, bobs slightly, and yaws with two
    superposed sinusoids — enough look-around that the visible set (and so
    the batch count) fluctuates like an interactive demo.
    """

    def __init__(
        self,
        rooms: int,
        room_length: float,
        frames: int,
        fov_deg: float = 74.0,
        aspect: float = 4.0 / 3.0,
        eye_height: float = 1.7,
        znear: float = 0.3,
        zfar: float = 500.0,
        loops: int = 1,
    ):
        self.rooms = rooms
        self.room_length = room_length
        self.frames = max(1, frames)
        self.proj = perspective(fov_deg, aspect, znear, zfar)
        self.eye_height = eye_height
        self.loops = max(1, loops)

    def room_at(self, frame: int) -> int:
        t = (frame * self.loops / self.frames) % 1.0
        return min(int(t * self.rooms), self.rooms - 1)

    def shot(self, frame: int) -> CameraShot:
        t = (frame * self.loops / self.frames) % 1.0
        total = self.rooms * self.room_length
        zpos = -t * total
        yaw = 0.8 * math.sin(t * 21.0) + 0.45 * math.sin(t * 57.0 + 1.3)
        pitch = 0.12 * math.sin(t * 33.0)
        bob = 0.06 * math.sin(t * 160.0)
        sway = 0.8 * math.sin(t * 13.0)
        eye = np.array([sway, self.eye_height + bob, zpos])
        forward = np.array(
            [
                math.sin(yaw) * math.cos(pitch),
                math.sin(pitch),
                -math.cos(yaw) * math.cos(pitch),
            ]
        )
        view = look_at(eye, eye + forward)
        return CameraShot(view=view, projection=self.proj, position=eye)


class TerrainPath:
    """Fly over open terrain (the Oblivion 'Anvil Castle' style path).

    The first half circles a 'castle' area; the second half heads out over
    open countryside — the paper's two distinct Oblivion regions.
    """

    def __init__(
        self,
        extent: float,
        frames: int,
        fov_deg: float = 75.0,
        aspect: float = 4.0 / 3.0,
        height: float = 8.0,
        znear: float = 0.5,
        zfar: float = 2000.0,
    ):
        self.extent = extent
        self.frames = max(1, frames)
        self.proj = perspective(fov_deg, aspect, znear, zfar)
        self.height = height

    def region(self, frame: int) -> int:
        """0 = castle half, 1 = countryside half."""
        return 0 if frame < self.frames // 2 else 1

    def shot(self, frame: int) -> CameraShot:
        t = frame / self.frames
        if self.region(frame) == 0:
            angle = t * 4.0 * math.pi
            radius = self.extent * 0.12
            eye = np.array(
                [
                    radius * math.cos(angle),
                    self.height + 2.0 * math.sin(t * 20.0),
                    radius * math.sin(angle),
                ]
            )
            target = np.array([0.0, self.height * 0.4, 0.0])
        else:
            u = (t - 0.5) * 2.0
            eye = np.array(
                [
                    self.extent * (0.12 + 0.3 * u),
                    self.height + 3.0 * math.sin(u * 9.0),
                    self.extent * 0.25 * math.sin(u * 5.0),
                ]
            )
            look = eye + np.array(
                [math.cos(u * 2.2), -0.12, math.sin(u * 2.2)]
            ) * 40.0
            target = look
        return CameraShot(view=look_at(eye, target), projection=self.proj, position=eye)
