"""Synthetic game workloads.

Real game timedemos cannot be shipped, so this package substitutes
procedurally generated ones: each of the paper's twelve Table-I workloads is
modelled by an engine profile (render path, shader lengths, primitive mix,
batch structure) plus a scene and camera path, calibrated so the API-level
statistics land near the published values and the microarchitectural
behaviour (multi-pass stencil shadows, overdraw, texture filtering) matches
in shape.
"""

from repro.workloads.spec import WorkloadSpec, SimProfile, EngineParams
from repro.workloads.registry import (
    WORKLOADS,
    OPENGL_SIMULATED,
    workload,
    all_workloads,
)
from repro.workloads.generator import GameWorkload, build_workload

__all__ = [
    "WorkloadSpec",
    "SimProfile",
    "EngineParams",
    "WORKLOADS",
    "OPENGL_SIMULATED",
    "workload",
    "all_workloads",
    "GameWorkload",
    "build_workload",
]
