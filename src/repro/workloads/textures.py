"""Procedural texture sets standing in for game art.

Each engine gets a deterministic set of DXT-compressed textures: tiled
surface materials (bricks/panels/rock via value noise and stripes), a few
alpha-cutout sheets for foliage/grates (DXT5), and the light-falloff maps
the idTech4 interaction shaders sample.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.texture import TextureFormat, TextureResource


def _value_noise(rng: np.random.Generator, size: int, octaves: int = 4) -> np.ndarray:
    """Tileable multi-octave value noise in [0, 1]."""
    out = np.zeros((size, size))
    amplitude = 1.0
    total = 0.0
    for octave in range(octaves):
        cells = 2 ** (octave + 2)
        if cells > size:
            break
        lattice = rng.random((cells, cells))
        big = np.kron(lattice, np.ones((size // cells, size // cells)))
        # Cheap smoothing: average with a rolled copy for soft edges.
        big = 0.5 * big + 0.25 * np.roll(big, size // (2 * cells), axis=0) + 0.25 * np.roll(
            big, size // (2 * cells), axis=1
        )
        out += amplitude * big
        total += amplitude
        amplitude *= 0.55
    return out / total


def _material_image(rng: np.random.Generator, size: int, palette: np.ndarray) -> np.ndarray:
    """A tiled material: noise base + occasional panel lines."""
    noise = _value_noise(rng, size)
    base = palette[0] + (palette[1] - palette[0]) * noise[..., None]
    if rng.random() < 0.5:
        period = int(2 ** rng.integers(4, 6))
        lines = ((np.arange(size) % period) < 2).astype(float)
        darken = 1.0 - 0.35 * np.maximum(lines[None, :], lines[:, None])
        base = base * darken[..., None]
    img = np.empty((size, size, 4), dtype=np.float32)
    img[..., :3] = np.clip(base, 0.0, 1.0)
    img[..., 3] = 1.0
    return img


def _cutout_image(rng: np.random.Generator, size: int, palette: np.ndarray) -> np.ndarray:
    """Alpha-cutout sheet (foliage/grate): ~45% transparent texels.

    The alpha mask thresholds *low-frequency* noise so the opaque and
    transparent regions are large coherent patches — they survive mip
    filtering, keeping the alpha test effective when the sheet is minified
    (the paper's UT2004 alpha-kill rate comes from such materials).
    """
    noise = _value_noise(rng, size, octaves=5)
    mask_noise = _value_noise(rng, size, octaves=2)
    img = np.empty((size, size, 4), dtype=np.float32)
    img[..., :3] = np.clip(
        palette[0] + (palette[1] - palette[0]) * noise[..., None], 0.0, 1.0
    )
    img[..., 3] = (mask_noise > 0.5).astype(np.float32)
    return img


def _falloff_image(size: int) -> np.ndarray:
    """Radial light-falloff map (idTech4 samples one per interaction)."""
    ys, xs = np.mgrid[0:size, 0:size]
    cx = (size - 1) / 2.0
    r = np.hypot(xs - cx, ys - cx) / cx
    value = np.clip(1.0 - r, 0.0, 1.0) ** 1.5
    img = np.empty((size, size, 4), dtype=np.float32)
    img[..., :3] = value[..., None]
    img[..., 3] = 1.0
    return img


_PALETTES = {
    "dark": np.array([[0.10, 0.09, 0.08], [0.45, 0.38, 0.30]]),
    "industrial": np.array([[0.15, 0.16, 0.18], [0.55, 0.55, 0.60]]),
    "warm": np.array([[0.25, 0.18, 0.10], [0.80, 0.62, 0.40]]),
    "outdoor": np.array([[0.12, 0.22, 0.08], [0.55, 0.60, 0.35]]),
}


def build_texture_set(
    prefix: str,
    seed: int,
    material_count: int,
    size: int = 128,
    palette: str = "dark",
    cutouts: int = 2,
) -> list[TextureResource]:
    """Deterministic texture set for one workload.

    Returns ``material_count`` DXT1 materials named ``{prefix}.matN``, the
    requested number of DXT5 cutouts (``{prefix}.cutN``) and one light
    falloff map (``{prefix}.falloff``).
    """
    if palette not in _PALETTES:
        raise KeyError(f"unknown palette {palette!r}")
    rng = np.random.default_rng(seed)
    colors = _PALETTES[palette]
    textures = [
        TextureResource.from_image(
            f"{prefix}.mat{i}", _material_image(rng, size, colors), TextureFormat.DXT1
        )
        for i in range(material_count)
    ]
    textures.extend(
        TextureResource.from_image(
            f"{prefix}.cut{i}", _cutout_image(rng, size, colors), TextureFormat.DXT5
        )
        for i in range(cutouts)
    )
    textures.append(
        TextureResource.from_image(
            f"{prefix}.falloff", _falloff_image(max(64, size // 2)), TextureFormat.DXT1
        )
    )
    return textures
