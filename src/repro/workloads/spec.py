"""Workload descriptions: Table I metadata plus engine calibration knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.api.commands import GraphicsApi
from repro.gpu.texture import TextureFilter


@dataclass(frozen=True)
class SimProfile:
    """Reduced-scale profile for microarchitectural simulation.

    Full timedemos at 1024x768 are out of reach for a Python functional
    simulator, so the simulated profile runs a reduced resolution with the
    scene's triangle budget scaled down by ``geometry_scale`` — keeping
    triangle sizes (in fragments) inside the paper's 400-2000 band so the
    scale-free metrics (overdraw, kill rates, hit rates, quad efficiency)
    are preserved.
    """

    width: int = 256
    height: int = 192
    frames: int = 12
    geometry_scale: float = 1.0 / 14.0
    # Caches are scaled with the screen so the cache-footprint:framebuffer
    # ratio (which sets the Table XIV/XV miss behaviour) stays close to the
    # paper's 16 KB @ 1024x768.
    cache_scale: float = 0.5
    # The texture L1 covers the per-frame texel footprint, which shrinks
    # faster than the screen (mip selection); 0.35 reproduces the paper's
    # texture bytes/fragment.
    texture_l1_scale: float = 0.5
    # Fewer, physically larger objects keep the average triangle size (in
    # fragments) inside the paper's 400-2000 band at the reduced resolution.
    object_count_scale: float = 0.5
    object_size_scale: float = 1.7
    # Texture coordinates are scaled down so the sampled mip level (and so
    # the per-frame texel footprint vs the L1) matches the paper's texel
    # density at 1024x768.
    uv_scale: float = 1.0


@dataclass(frozen=True)
class EngineParams:
    """Everything the synthetic engine needs to emit one game's call stream."""

    render_path: str  # "forward" | "stencil_shadow" | "terrain"
    rooms: int = 8
    objects_per_room: int = 14
    casters_per_room: int = 5
    lights: int = 2  # lights per room (stencil path)
    lit_rooms: int = 2  # rooms whose lights run interaction passes per frame
    light_radius_frac: float = 0.45  # light radius / room length
    volume_extrusion_frac: float = 0.6  # shadow volume length / room length
    room_tris: int = 768  # triangles in a room shell
    object_tris: int = 220  # average triangles per prop mesh
    character_tris: int = 600
    characters_per_room: int = 2
    room_size: tuple[float, float, float] = (16.0, 6.0, 22.0)
    visible_rooms_ahead: int = 1
    visible_rooms_behind: int = 1
    # Forward-path pass structure: a fraction of opaque surfaces is drawn
    # ``1 + extra_passes`` times (lightmap / detail / fog passes with the
    # depth test at EQUAL — the Unreal-era multipass texturing style).
    two_pass_fraction: float = 0.0
    extra_passes: int = 1
    # Structural set dressing that creates depth complexity along the
    # camera aisle (and, in the stencil path, large cross-aisle casters).
    arches_per_room: int = 0
    pillars_per_room: int = 0
    foliage_per_room: int = 0  # large alpha-tested curtains (UT2004 foliage)
    alpha_fraction: float = 0.0  # alpha-tested (KIL) materials
    blend_fraction: float = 0.0  # translucent additive materials
    # Shader variant tables.
    vertex_variants: tuple[tuple[int, float], ...] = ((20, 1.0),)
    fragment_variants: tuple[tuple[int, int, float, bool], ...] = (
        (13, 4, 1.0, False),
    )
    # Primitive mix: fraction of prop meshes built as strips / fans.
    strip_object_fraction: float = 0.0
    fan_object_fraction: float = 0.0
    prop_size: float = 1.0  # physical scale multiplier for prop meshes
    uv_scale: float = 1.0  # texture coordinate density multiplier
    # Terrain path (Oblivion).
    terrain_patches: int = 0
    terrain_patch_tris: int = 2048
    terrain_strip_patches: bool = True
    terrain_extent: float = 900.0
    # API call shaping.
    extra_state_calls_per_material: int = 3
    startup_calls: int = 12000
    transition_points: tuple[float, ...] = ()  # demo fractions with reloads
    transition_calls: int = 4000
    # Resources.
    texture_count: int = 18
    texture_size: int = 128
    palette: str = "dark"


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table-I row plus the calibrated engine parameters.

    ``schema_version`` versions this document's shape for external
    consumers (the serve protocol, serialized specs): it only changes when
    a field is renamed, removed, or reinterpreted — adding a defaulted
    field is backward-compatible and keeps the version.  Consumers must
    reject versions they do not know rather than half-read them.
    """

    name: str  # e.g. "Doom3/trdemo2"
    game: str
    timedemo: str
    engine: str  # middleware name as printed in Table I
    api: GraphicsApi
    frames: int  # full timedemo length (Table I)
    duration_s: float  # at 30 fps (Table I)
    texture_quality: str
    aniso_level: int | None  # None = trilinear-only game
    uses_shaders: bool
    release: str
    index_size_bytes: int
    seed: int
    params: EngineParams
    sim: SimProfile = SimProfile()
    api_stat_frames: int = 400  # default frames for API-statistics runs
    schema_version: int = 1

    @property
    def texture_filter(self) -> TextureFilter:
        if self.aniso_level is None:
            return TextureFilter.TRILINEAR
        return TextureFilter.ANISOTROPIC

    @property
    def slug(self) -> str:
        """Filesystem/identifier-safe name."""
        return self.name.replace("/", "_").replace(" ", "_").lower()

    def scaled_for_sim(self) -> "WorkloadSpec":
        """The reduced-scale variant used for microarchitectural runs."""
        scale = self.sim.geometry_scale
        count_scale = self.sim.object_count_scale
        params = replace(
            self.params,
            room_tris=max(24, int(self.params.room_tris * scale)),
            object_tris=max(12, int(self.params.object_tris * scale)),
            character_tris=max(24, int(self.params.character_tris * scale)),
            terrain_patch_tris=max(32, int(self.params.terrain_patch_tris * scale)),
            objects_per_room=max(4, int(self.params.objects_per_room * count_scale)),
            casters_per_room=max(
                2, int(self.params.casters_per_room * count_scale)
            ),
            characters_per_room=max(
                1, int(self.params.characters_per_room * count_scale)
            ),
            prop_size=self.params.prop_size * self.sim.object_size_scale,
            uv_scale=self.params.uv_scale * self.sim.uv_scale,
            startup_calls=200,
            transition_calls=200,
        )
        return replace(self, params=params)
