"""Workload facade: trace generation, API statistics, and simulation."""

from __future__ import annotations

from repro.api.tracer import ApiTracer
from repro.api.stats import WorkloadApiStats
from repro.api.trace import Trace
from repro.gpu.config import GpuConfig
from repro.gpu.pipeline import GpuSimulator, SimulationResult
from repro.workloads.engines import GameEngine
from repro.workloads.spec import WorkloadSpec


class GameWorkload:
    """One Table-I workload: engine + scene + traces, API- or sim-profile.

    ``sim=True`` builds the reduced-scale profile used for the
    microarchitectural experiments (see :class:`~repro.workloads.spec
    .SimProfile`); the default full-scale profile drives the API-level
    statistics.
    """

    def __init__(self, spec: WorkloadSpec, sim: bool = False):
        self.spec = spec.scaled_for_sim() if sim else spec
        self.is_sim_profile = sim
        self.engine = GameEngine(self.spec)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def meshes(self):
        return self.engine.scene.meshes

    @property
    def programs(self):
        return self.engine.programs

    @property
    def textures(self):
        return self.engine.textures

    def trace(self, frames: int | None = None) -> Trace:
        if self.is_sim_profile:
            frames = frames if frames is not None else self.spec.sim.frames
            return self.engine.trace(
                frames=frames, width=self.spec.sim.width, height=self.spec.sim.height
            )
        return self.engine.trace(frames=frames)

    def api_stats(self, frames: int | None = None) -> WorkloadApiStats:
        """GLInterceptor-style statistics over the (possibly truncated) trace."""
        frames = frames if frames is not None else self.spec.api_stat_frames
        tracer = ApiTracer(self.programs)
        return tracer.trace_stats(self.trace(frames=frames))

    def simulator(self, config: GpuConfig | None = None) -> GpuSimulator:
        """A fresh simulator loaded with this workload's resources."""
        if config is None:
            config = GpuConfig.r520(
                self.spec.sim.width, self.spec.sim.height
            ).with_scaled_caches(
                self.spec.sim.cache_scale,
                l1_factor=self.spec.sim.texture_l1_scale,
            )
        return GpuSimulator(
            config,
            meshes=self.meshes,
            programs=self.programs,
            textures=self.textures,
            texture_filter=self.spec.texture_filter,
            max_aniso=self.spec.aniso_level or 1,
        )

    def simulate(
        self,
        frames: int | None = None,
        config: GpuConfig | None = None,
        fragment_stages: bool = True,
        keep_images: int = 0,
    ) -> SimulationResult:
        """Run the workload's trace through the GPU simulator."""
        sim = self.simulator(config)
        return sim.run_trace(
            self.trace(frames=frames),
            fragment_stages=fragment_stages,
            keep_images=keep_images,
        )


def build_workload(name: str, sim: bool = False) -> GameWorkload:
    """Look a workload up in the registry and build it."""
    from repro.workloads.registry import workload

    return GameWorkload(workload(name), sim=sim)
