"""Scene construction: mesh pools, object placement, shadow volumes.

A scene is a list of placed object instances over a shared mesh library —
the same instancing structure games use, which is what makes startup uploads
small relative to per-frame index traffic (the paper's indexed-mode
observation in Section III.A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.generators import (
    box_mesh,
    character_mesh,
    cylinder_mesh,
    extrude_shadow_volume,
    grid_mesh,
    room_mesh,
    terrain_mesh,
)
from repro.geometry.mesh import Mesh
from repro.geometry.primitives import PrimitiveType
from repro.util.mathutil import rotate_x, rotate_y, translate
from repro.workloads.spec import EngineParams


@dataclass
class SceneObject:
    """One placed instance: mesh + transform + material + rooms/caster info."""

    mesh: str
    model: np.ndarray
    center: np.ndarray
    radius: float
    material: int
    room: int
    caster: bool = False
    volume_meshes: tuple[str, ...] = ()  # one per room light index
    region: int = 0  # terrain scenes: 0 = castle, 1 = countryside
    force_alpha: bool = False  # foliage curtains always use a KIL material


def room_light_positions(params: EngineParams, room: int) -> list[np.ndarray]:
    """Light positions for one room: wall sconces plus ceiling fixtures.

    Most lights sit low on the walls (the Doom3 look), so shadow volumes
    sweep near-horizontally through open air before terminating in the
    opposite wall — which is what makes most volume fragments pass the
    depth test (ending up color-masked, Table IX) instead of failing it.
    """
    width, height, length = params.room_size
    room_z = -(room + 0.5) * length
    # (x offset, z offset, height fraction)
    placements = [
        (-width * 0.42, length * 0.22, 0.45),
        (width * 0.42, -length * 0.22, 0.45),
        (-width * 0.42, -length * 0.3, 0.42),
        (width * 0.42, length * 0.3, 0.42),
        (0.0, length * 0.42, 0.5),
        (0.0, 0.0, 0.92),
    ]
    positions = []
    for k in range(params.lights):
        ox, oz, hf = placements[k % len(placements)]
        positions.append(np.array([ox, height * hf, room_z + oz]))
    return positions


@dataclass
class Scene:
    meshes: dict[str, Mesh] = field(default_factory=dict)
    objects: list[SceneObject] = field(default_factory=list)
    room_length: float = 22.0
    rooms: int = 0

    def objects_in_rooms(self, rooms: set[int]) -> list[SceneObject]:
        return [o for o in self.objects if o.room in rooms]


def _prop_mesh(
    name: str,
    archetype: int,
    tris: int,
    rng: np.random.Generator,
    primitive: PrimitiveType,
    index_size: int,
    size: float = 1.0,
) -> Mesh:
    """A prop mesh of roughly ``tris`` triangles of the given archetype."""
    tris = max(12, tris)
    if primitive is PrimitiveType.TRIANGLE_FAN:
        # A fan disc: tris triangles around a center.
        segments = max(3, tris)
        angles = np.linspace(0.0, 2 * math.pi, segments + 1)
        radius = 0.9 * size
        positions = [(0.0, 0.02, 0.0)]
        positions += [
            (radius * math.cos(a), 0.02, radius * math.sin(a)) for a in angles
        ]
        indices = list(range(segments + 2))
        return Mesh(
            name,
            np.asarray(positions),
            np.asarray(indices, dtype=np.int32),
            primitive=PrimitiveType.TRIANGLE_FAN,
            uvs=np.asarray([(p[0] + 1, p[2] + 1) for p in positions]) / 2.0,
            index_size_bytes=index_size,
        )
    if primitive is PrimitiveType.TRIANGLE_STRIP:
        cells = max(1, int(math.sqrt(tris / 2.0)))
        return grid_mesh(
            name,
            cells,
            cells,
            1.8 * size,
            1.8 * size,
            primitive=PrimitiveType.TRIANGLE_STRIP,
            index_size_bytes=index_size,
        )
    kind = archetype % 3
    if kind == 0:
        subdiv = max(1, int(math.sqrt(tris / 12.0)))
        scale = (0.6 + 0.8 * rng.random()) * size
        return box_mesh(
            name, (scale, scale * 1.4, scale), subdivisions=subdiv,
            index_size_bytes=index_size,
        )
    if kind == 1:
        segments = max(4, int(math.sqrt(tris / 2.5)))
        rings = max(2, tris // (2 * segments) - 1)
        return cylinder_mesh(
            name,
            radius=(0.35 + 0.3 * rng.random()) * size,
            height=(1.2 + 1.2 * rng.random()) * size,
            segments=segments,
            rings=rings,
            index_size_bytes=index_size,
        )
    cells = max(2, int(math.sqrt(tris / 2.0)))
    return grid_mesh(
        name, cells, cells, 2.2 * size, 2.2 * size, index_size_bytes=index_size,
        height_fn=lambda x, z: 0.15 * size * np.sin(3 * x) * np.cos(3 * z),
    )


def build_corridor_scene(
    prefix: str,
    params: EngineParams,
    seed: int,
    index_size: int,
    with_shadow_volumes: bool,
) -> Scene:
    """Rooms along -Z with props/characters; optional per-room shadow setup."""
    rng = np.random.default_rng(seed)
    scene = Scene(room_length=params.room_size[2], rooms=params.rooms)
    width, height, length = params.room_size

    room = room_mesh(
        f"{prefix}.room",
        (width, height, length),
        subdivisions=max(1, int(math.sqrt(params.room_tris / 12.0))),
        index_size_bytes=index_size,
    )
    scene.meshes[room.name] = room

    def build_pool(primitive: PrimitiveType, count: int, tag: str) -> list[Mesh]:
        meshes = []
        for i in range(count):
            tris = max(12, int(params.object_tris * (0.5 + rng.random())))
            mesh = _prop_mesh(
                f"{prefix}.{tag}{i}", i, tris, rng, primitive, index_size,
                size=params.prop_size,
            )
            meshes.append(mesh)
            scene.meshes[mesh.name] = mesh
        return meshes

    pool = build_pool(PrimitiveType.TRIANGLE_LIST, 7, "prop")
    strip_pool = (
        build_pool(PrimitiveType.TRIANGLE_STRIP, 2, "strip")
        if params.strip_object_fraction > 0
        else []
    )
    fan_pool = (
        build_pool(PrimitiveType.TRIANGLE_FAN, 2, "fan")
        if params.fan_object_fraction > 0
        else []
    )
    characters = []
    for i in range(3):
        mesh = character_mesh(
            f"{prefix}.char{i}",
            seed=seed + 100 + i,
            radius=0.45 * params.prop_size,
            height=1.8 * params.prop_size,
            segments=max(4, int(math.sqrt(params.character_tris / 2.2))),
            rings=max(4, int(math.sqrt(params.character_tris / 2.2))),
            index_size_bytes=index_size,
        )
        characters.append(mesh)
        scene.meshes[mesh.name] = mesh

    # Structural set dressing shared across rooms: aisle-spanning arches
    # and floor-to-ceiling pillars.  They stack along the camera axis, which
    # is what gives indoor game frames their depth complexity, and in the
    # stencil path they are the large cross-aisle shadow casters.
    arch_mesh = pillar_mesh = None
    if params.arches_per_room > 0:
        span = min(width * 0.7, 2.2 + 1.8 * params.prop_size + 4.5)
        arch_mesh = box_mesh(
            f"{prefix}.arch",
            (span, 0.7, 1.3),
            subdivisions=max(1, int(math.sqrt(params.object_tris / 12.0))),
            index_size_bytes=index_size,
        )
        scene.meshes[arch_mesh.name] = arch_mesh
    foliage_mesh = None
    if params.foliage_per_room > 0:
        foliage_mesh = grid_mesh(
            f"{prefix}.foliage",
            max(2, int(math.sqrt(params.object_tris / 4.0))),
            max(2, int(math.sqrt(params.object_tris / 4.0))),
            7.0,
            4.5,
            index_size_bytes=index_size,
        )
        scene.meshes[foliage_mesh.name] = foliage_mesh
    if params.pillars_per_room > 0:
        pillar_mesh = cylinder_mesh(
            f"{prefix}.pillar",
            radius=0.4 * max(1.0, params.prop_size * 0.8),
            height=height * 0.96,
            segments=max(6, int(math.sqrt(params.object_tris / 2.5))),
            rings=3,
            index_size_bytes=index_size,
        )
        scene.meshes[pillar_mesh.name] = pillar_mesh

    for r in range(params.rooms):
        room_z = -(r + 0.5) * length
        light_positions = room_light_positions(params, r)
        center, radius = room.bounding_sphere()
        scene.objects.append(
            SceneObject(
                mesh=room.name,
                model=translate(0.0, height / 2.0, room_z),
                center=center + np.array([0.0, height / 2.0, room_z]),
                radius=radius,
                material=int(rng.integers(0, 4)),
                room=r,
            )
        )
        def add_object(
            mesh: Mesh, model: np.ndarray, caster: bool, tag: str
        ) -> SceneObject:
            center_l, radius_l = mesh.bounding_sphere()
            center_w = model[:3, :3] @ center_l + model[:3, 3]
            obj = SceneObject(
                mesh=mesh.name,
                model=model,
                center=center_w,
                radius=radius_l,
                material=int(rng.integers(0, 8)),
                room=r,
                caster=with_shadow_volumes and caster,
            )
            if obj.caster:
                volume_names: list[str] = []
                for li, light_pos in enumerate(light_positions):
                    light_dir_world = center_w - light_pos
                    norm_w = np.linalg.norm(light_dir_world)
                    if norm_w < 1e-9:
                        light_dir_world = np.array([0.0, -1.0, 0.0])
                        norm_w = 1.0
                    dir_unit = light_dir_world / norm_w
                    extrusion = length * params.volume_extrusion_frac
                    # idTech4 clips volumes to the light bounds; emulate by
                    # stopping shortly below the floor so the bulk of the
                    # volume stays in open air (z-passing, Table IX).
                    if dir_unit[1] < -0.05:
                        floor_travel = (center_w[1] + 0.3) / -dir_unit[1]
                        extrusion = min(extrusion, floor_travel)
                    light_dir_local = model[:3, :3].T @ light_dir_world
                    volume = extrude_shadow_volume(
                        mesh,
                        light_dir_local,
                        extrusion=extrusion,
                        name=f"{mesh.name}.vol.r{r}{tag}l{li}",
                    )
                    if volume.index_count >= 3:
                        volume.index_size_bytes = index_size
                        scene.meshes[volume.name] = volume
                        volume_names.append(volume.name)
                    else:
                        volume_names.append("")  # keep light-index alignment
                if any(volume_names):
                    obj.volume_meshes = tuple(volume_names)
                else:
                    obj.caster = False
            scene.objects.append(obj)
            return obj

        # Keep the center aisle clear — the camera path walks it, and props
        # can be ~2 units wide, so clearance is center + margin.
        aisle = min(2.2 + 1.8 * params.prop_size, width / 2 - 1.3)
        placed = 0
        for k in range(params.objects_per_room - 1):
            is_character = placed < params.characters_per_room
            if is_character:
                mesh = characters[int(rng.integers(0, len(characters)))]
            else:
                roll = rng.random()
                if fan_pool and roll < params.fan_object_fraction:
                    mesh = fan_pool[int(rng.integers(0, len(fan_pool)))]
                elif strip_pool and roll < (
                    params.fan_object_fraction + params.strip_object_fraction
                ):
                    mesh = strip_pool[int(rng.integers(0, len(strip_pool)))]
                else:
                    mesh = pool[int(rng.integers(0, len(pool)))]
            side = 1.0 if rng.random() < 0.5 else -1.0
            px = side * float(rng.uniform(aisle, width / 2 - 1.2))
            pz = float(rng.uniform(room_z - length / 2 + 1.5, room_z + length / 2 - 1.5))
            model = translate(px, 0.2, pz) @ rotate_y(float(rng.uniform(0, 2 * math.pi)))
            add_object(
                mesh, model, caster=placed < params.casters_per_room, tag=f"k{k}"
            )
            placed += 1
        for a in range(params.arches_per_room):
            if arch_mesh is None:
                break
            pz = room_z + length * (a + 0.5) / params.arches_per_room - length / 2
            py = float(rng.uniform(height * 0.55, height * 0.8))
            add_object(arch_mesh, translate(0.0, py, pz), caster=True, tag=f"a{a}")
        for pidx in range(params.pillars_per_room):
            if pillar_mesh is None:
                break
            side = 1.0 if pidx % 2 == 0 else -1.0
            pz = room_z + length * (pidx + 0.5) / params.pillars_per_room - length / 2
            px = side * (aisle + 0.5)
            add_object(
                pillar_mesh, translate(px, 0.05, pz), caster=True, tag=f"p{pidx}"
            )
        for fidx in range(params.foliage_per_room):
            if foliage_mesh is None:
                break
            side = 1.0 if fidx % 2 == 0 else -1.0
            pz = room_z + length * (fidx + 0.5) / params.foliage_per_room - length / 2
            # A vertical curtain hanging across the walkway side.
            model = translate(side * aisle * 0.6, 2.6, pz) @ rotate_x(math.pi / 2)
            obj = add_object(foliage_mesh, model, caster=False, tag=f"f{fidx}")
            obj.force_alpha = True
    return scene


def build_terrain_scene(
    prefix: str,
    params: EngineParams,
    seed: int,
    index_size: int,
) -> Scene:
    """Open countryside + castle cluster (the Oblivion Anvil Castle shape)."""
    rng = np.random.default_rng(seed)
    scene = Scene(rooms=1)
    patches = max(4, params.terrain_patches)
    side = int(math.sqrt(patches))
    patch_extent = params.terrain_extent / side
    cells = max(4, int(math.sqrt(params.terrain_patch_tris / 2.0)))

    patch_meshes = []
    for i in range(4):  # 4 patch archetypes, instanced over the grid
        mesh = terrain_mesh(
            f"{prefix}.terrain{i}",
            seed=seed + i,
            size=patch_extent,
            cells=cells,
            primitive=(
                PrimitiveType.TRIANGLE_STRIP
                if params.terrain_strip_patches
                else PrimitiveType.TRIANGLE_LIST
            ),
            index_size_bytes=index_size,
        )
        patch_meshes.append(mesh)
        scene.meshes[mesh.name] = mesh

    for gy in range(side):
        for gx in range(side):
            mesh = patch_meshes[int(rng.integers(0, len(patch_meshes)))]
            px = (gx - side / 2 + 0.5) * patch_extent
            pz = (gy - side / 2 + 0.5) * patch_extent
            center_l, radius_l = mesh.bounding_sphere()
            scene.objects.append(
                SceneObject(
                    mesh=mesh.name,
                    model=translate(px, 0.0, pz),
                    center=center_l + np.array([px, 0.0, pz]),
                    radius=radius_l,
                    material=int(rng.integers(0, 4)),
                    room=0,
                    region=1,
                )
            )

    # Castle cluster near the origin: dense TL props.
    pool = [
        _prop_mesh(
            f"{prefix}.castle{i}",
            i,
            max(12, int(params.object_tris * (0.5 + rng.random()))),
            rng,
            PrimitiveType.TRIANGLE_LIST,
            index_size,
        )
        for i in range(8)
    ]
    for mesh in pool:
        scene.meshes[mesh.name] = mesh
    castle_radius = params.terrain_extent * 0.1
    for k in range(params.objects_per_room * params.rooms):
        mesh = pool[int(rng.integers(0, len(pool)))]
        angle = rng.uniform(0, 2 * math.pi)
        dist = castle_radius * math.sqrt(rng.random())
        px, pz = dist * math.cos(angle), dist * math.sin(angle)
        scale_y = 1.0 + 3.0 * rng.random()
        model = translate(px, 0.0, pz) @ rotate_y(float(rng.uniform(0, 2 * math.pi)))
        model[1, 1] = scale_y
        center_l, radius_l = mesh.bounding_sphere()
        center_w = model[:3, :3] @ center_l + model[:3, 3]
        scene.objects.append(
            SceneObject(
                mesh=mesh.name,
                model=model,
                center=center_w,
                radius=radius_l * max(1.0, scale_y),
                material=int(rng.integers(0, 8)),
                room=0,
                region=0,
            )
        )
    return scene
