"""The synthetic game engine: turns a workload spec into API call streams.

Two render paths cover the paper's workloads:

* ``forward`` — single-geometry-pass engines (Unreal 2.5, Starbreeze,
  Lithtech/FEAR, Source, Splinter Cell): opaque geometry sorted by material,
  optional second additive pass (lightmaps / extra lights), alpha-tested
  cutouts, then translucent additive surfaces.
* ``stencil_shadow`` — idTech4 (Doom3, Quake4): depth prepass with color
  writes masked, then per light a two-sided-stencil z-fail shadow volume
  pass (HZ disabled) followed by an additive interaction pass with the depth
  test set to EQUAL and the stencil test gating shadowed pixels.
* ``terrain`` — Gamebryo/Oblivion: castle cluster as triangle lists plus
  open terrain drawn as triangle strips, with a region switch halfway
  through the timedemo (the paper's two vertex-shader regions).
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.commands import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    GraphicsApi,
    SetState,
    SetUniform,
    UploadResource,
)
from repro.api.state import StencilSide
from repro.api.trace import Frame, Trace, TraceMeta
from repro.shader.library import build_fragment_program, build_vertex_program
from repro.shader.program import ShaderProgram
from repro.workloads.camera import CorridorPath, TerrainPath
from repro.workloads.scenes import (
    Scene,
    SceneObject,
    build_corridor_scene,
    build_terrain_scene,
    room_light_positions,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.textures import build_texture_set

_MATERIAL_SLOTS = 40


class Material:
    """Resolved material: fragment program + textures + transparency flags."""

    def __init__(
        self,
        index: int,
        fragment_program: str | None,
        vertex_program: str,
        textures: tuple[str, ...],
        alpha_test: bool = False,
        blend_add: bool = False,
    ):
        self.index = index
        self.fragment_program = fragment_program
        self.vertex_program = vertex_program
        self.textures = textures
        self.alpha_test = alpha_test
        self.blend_add = blend_add

    @property
    def sort_key(self) -> tuple:
        # Opaque first, then alpha-tested, then blended — the order engines
        # submit in; within a class, batch by program/texture.
        transparency = (1 if self.alpha_test else 0) + (2 if self.blend_add else 0)
        return (transparency, self.fragment_program or "", self.textures)


class GameEngine:
    """Builds the scene/resources for a spec and emits per-frame call lists."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.params = spec.params
        self.prefix = spec.slug
        self._rng = np.random.default_rng(spec.seed)

        shadows = self.params.render_path == "stencil_shadow"
        if self.params.render_path == "terrain":
            self.scene: Scene = build_terrain_scene(
                self.prefix, self.params, spec.seed, spec.index_size_bytes
            )
        else:
            self.scene = build_corridor_scene(
                self.prefix,
                self.params,
                spec.seed,
                spec.index_size_bytes,
                with_shadow_volumes=shadows,
            )
        if self.params.uv_scale != 1.0:
            for mesh in self.scene.meshes.values():
                mesh.uvs = mesh.uvs * self.params.uv_scale
        self.textures = build_texture_set(
            self.prefix,
            spec.seed + 7,
            self.params.texture_count,
            size=self.params.texture_size,
            palette=self.params.palette,
        )
        self.programs: dict[str, ShaderProgram] = {}
        self._vertex_names: list[list[str]] = []  # [region][variant]
        self._build_programs()
        self.materials = self._build_materials()
        self._region2_materials = (
            self._build_materials(region=1)
            if self.params.render_path == "terrain"
            else self.materials
        )
        self._current_region = 0

    # -- resources -----------------------------------------------------------
    def _build_programs(self) -> None:
        regions = (
            [self.params.vertex_variants]
            if not isinstance(self.params.vertex_variants[0][0], tuple)
            else list(self.params.vertex_variants)
        )
        for region, variants in enumerate(regions):
            names = []
            for i, (length, _weight) in enumerate(variants):
                name = f"{self.prefix}.v{region}_{i}"
                self.programs[name] = build_vertex_program(
                    name, int(length), lit=True, uv_sets=1
                )
                names.append(name)
            self._vertex_names.append(names)
        for i, (length, tex, _w, alpha) in enumerate(self.params.fragment_variants):
            name = f"{self.prefix}.f{i}"
            self.programs[name] = build_fragment_program(
                name,
                texture_count=int(tex),
                total_instructions=int(length),
                alpha_test=bool(alpha),
            )

    def _allocate(self, weights: list[float], slots: int) -> list[int]:
        """Largest-remainder proportional allocation of variant -> slot count."""
        raw = [w * slots for w in weights]
        counts = [int(r) for r in raw]
        remainder = slots - sum(counts)
        order = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for i in range(remainder):
            counts[order[i % len(order)]] += 1
        return counts

    def _build_materials(self, region: int = 0) -> list[Material]:
        params = self.params
        rng = np.random.default_rng(self.spec.seed + 31 + region)
        frag_weights = [v[2] for v in params.fragment_variants]
        frag_alloc = self._allocate(frag_weights, _MATERIAL_SLOTS)
        vertex_variants = (
            params.vertex_variants
            if not isinstance(params.vertex_variants[0][0], tuple)
            else params.vertex_variants[min(region, len(params.vertex_variants) - 1)]
        )
        vert_weights = [v[1] for v in vertex_variants]
        vert_alloc = self._allocate(vert_weights, _MATERIAL_SLOTS)
        vert_names = self._vertex_names[min(region, len(self._vertex_names) - 1)]

        frag_ids: list[int] = []
        for variant, count in enumerate(frag_alloc):
            frag_ids.extend([variant] * count)
        vert_ids: list[int] = []
        for variant, count in enumerate(vert_alloc):
            vert_ids.extend([variant] * count)
        rng.shuffle(vert_ids)

        alpha_slots = int(round(params.alpha_fraction * _MATERIAL_SLOTS))
        blend_slots = int(round(params.blend_fraction * _MATERIAL_SLOTS))
        material_names = [t.name for t in self.textures if ".mat" in t.name]
        cutout_names = [t.name for t in self.textures if ".cut" in t.name]

        materials = []
        for slot in range(_MATERIAL_SLOTS):
            variant = frag_ids[slot]
            _length, tex_count, _w, has_alpha = params.fragment_variants[variant]
            is_alpha = has_alpha and slot < alpha_slots
            is_blend = not is_alpha and slot >= _MATERIAL_SLOTS - blend_slots
            pool = cutout_names if is_alpha and cutout_names else material_names
            textures = tuple(
                pool[int(rng.integers(0, len(pool)))] for _ in range(int(tex_count))
            )
            materials.append(
                Material(
                    index=slot,
                    fragment_program=f"{self.prefix}.f{variant}",
                    vertex_program=vert_names[vert_ids[slot]],
                    textures=textures,
                    alpha_test=is_alpha,
                    blend_add=is_blend,
                )
            )
        # Alpha-tested variants must actually carry KIL: force alpha slots to
        # an alpha-capable variant if the chosen one is not.
        alpha_variants = [
            i for i, v in enumerate(params.fragment_variants) if v[3]
        ]
        if alpha_variants:
            for slot in range(alpha_slots):
                mat = materials[slot]
                if not self.programs[mat.fragment_program].uses_kill:
                    mat.fragment_program = f"{self.prefix}.f{alpha_variants[0]}"
                    mat.alpha_test = True
                    pool = cutout_names or material_names
                    count = self.programs[mat.fragment_program].texture_instruction_count
                    mat.textures = tuple(
                        pool[i % len(pool)] for i in range(count)
                    )
        return materials

    def material_for(self, obj: SceneObject) -> Material:
        """Material for an object, honoring the current demo region.

        The Oblivion timedemo's second half switches to the countryside
        shader set (the paper's two Table-IV regions) — a property of where
        the *camera* is, so the engine tracks it per frame.
        """
        table = (
            self._region2_materials if self._current_region == 1 else self.materials
        )
        if obj.force_alpha:
            for mat in table:
                if mat.alpha_test:
                    return mat
        return table[(obj.material * 5 + obj.room) % len(table)]

    # -- traces ---------------------------------------------------------------
    def trace(
        self,
        frames: int | None = None,
        width: int = 1024,
        height: int = 768,
    ) -> Trace:
        frame_count = frames if frames is not None else self.spec.frames
        meta = TraceMeta(
            name=self.spec.name,
            api=self.spec.api,
            frame_count=frame_count,
            width=width,
            height=height,
            index_size_bytes=self.spec.index_size_bytes,
            engine=self.spec.engine,
            aniso_level=self.spec.aniso_level or 0,
            uses_shaders=self.spec.uses_shaders,
        )

        def frames_fn():
            path = self._build_path(frame_count, width / height)
            for f in range(frame_count):
                yield Frame(f, self.frame_calls(f, frame_count, path))

        return Trace(meta, frames_fn)

    def _build_path(self, frames: int, aspect: float):
        if self.params.render_path == "terrain":
            return TerrainPath(
                extent=self.params.terrain_extent, frames=frames, aspect=aspect
            )
        return CorridorPath(
            rooms=self.params.rooms,
            room_length=self.params.room_size[2],
            frames=frames,
            aspect=aspect,
        )

    def frame_calls(self, frame: int, total_frames: int, path) -> list:
        calls: list = [Clear()]
        calls.extend(self._upload_calls(frame, total_frames))
        if self.params.render_path == "terrain":
            self._current_region = path.region(frame)
        shot = path.shot(frame)
        visible = self._visible_objects(frame, path, shot)
        if not visible:
            return calls
        if self.params.render_path == "stencil_shadow":
            calls.extend(self._stencil_shadow_frame(frame, path, shot, visible))
        else:
            calls.extend(self._forward_frame(frame, shot, visible, path))
        return calls

    # -- visibility ------------------------------------------------------------
    def _visible_objects(self, frame: int, path, shot) -> list[SceneObject]:
        if self.params.render_path == "terrain":
            view_dist = self.params.terrain_extent * 0.42
            fwd = -shot.view[2, :3]
            out = []
            for obj in self.scene.objects:
                to_c = obj.center - shot.position
                dist = np.linalg.norm(to_c)
                if dist - obj.radius > view_dist:
                    continue
                if dist > obj.radius and (to_c / dist) @ fwd < -0.35:
                    continue
                out.append(obj)
            return out
        room = path.room_at(frame)
        lo = max(0, room - self.params.visible_rooms_behind)
        hi = min(self.scene.rooms - 1, room + self.params.visible_rooms_ahead)
        return self.scene.objects_in_rooms(set(range(lo, hi + 1)))

    def _room_light(self, room: int) -> np.ndarray:
        width, height, length = self.params.room_size
        return np.array([0.0, height - 0.5, -(room + 0.5) * length])

    # -- call emission ----------------------------------------------------------
    def _upload_calls(self, frame: int, total_frames: int) -> list:
        params = self.params
        calls: list = []
        if frame == 0:
            for mesh in self.scene.meshes.values():
                calls.append(
                    UploadResource(
                        mesh.name,
                        "vertex",
                        mesh.vertex_count * mesh.vertex_size_bytes,
                    )
                )
                calls.append(
                    UploadResource(
                        mesh.name + ".ib",
                        "index",
                        mesh.index_count * mesh.index_size_bytes,
                    )
                )
            for tex in self.textures:
                for level in range(tex.levels):
                    blocks = max(1, (tex.width >> level) // 4) * max(
                        1, (tex.height >> level) // 4
                    )
                    calls.append(
                        UploadResource(
                            f"{tex.name}.mip{level}",
                            "texture",
                            blocks * tex.format.block_bytes,
                        )
                    )
            calls.extend(
                SetUniform("startup_param", (float(i), 0.0, 0.0, 0.0))
                for i in range(params.startup_calls)
            )
            return calls
        for point in params.transition_points:
            if frame == int(point * total_frames):
                for i in range(params.transition_calls):
                    tex = self.textures[i % len(self.textures)]
                    calls.append(
                        UploadResource(
                            f"{tex.name}.reload{i}", "texture", tex.compressed_bytes
                        )
                    )
        return calls

    def _bind_material(self, mat: Material, prev: Material | None) -> list:
        if prev is not None and prev.fragment_program == mat.fragment_program and (
            prev.textures == mat.textures
            and prev.vertex_program == mat.vertex_program
        ):
            return []
        calls: list = [
            BindProgram("vertex", mat.vertex_program),
            BindProgram("fragment", mat.fragment_program),
        ]
        calls.extend(
            BindTexture(unit, name) for unit, name in enumerate(mat.textures)
        )
        calls.extend(
            SetUniform("material_param", (float(mat.index), float(k), 0.0, 0.0))
            for k in range(self.params.extra_state_calls_per_material)
        )
        return calls

    def _draw_object(self, obj: SceneObject, shot, calls: list) -> None:
        mesh = self.scene.meshes[obj.mesh]
        mvp = shot.view_projection @ obj.model
        calls.append(SetUniform.matrix("mvp", mvp))
        calls.append(SetUniform.matrix("model", obj.model))
        calls.append(Draw(mesh.name, mesh.primitive, mesh.index_count))

    def _forward_frame(self, frame: int, shot, visible: list[SceneObject], path) -> list:
        calls: list = [
            SetState("depth_test", True),
            SetState("depth_func", "less"),
            SetState("depth_write", True),
            SetState("blend", "replace"),
            SetState("color_mask", True),
            SetState("stencil_test", False),
            SetState("cull", "back"),
            SetState("hierarchical_z", True),
            SetUniform("light_dir", (0.35, -0.8, -0.45, 0.0)),
            SetUniform("light_color", (1.0, 0.96, 0.9, 1.0)),
            SetUniform("ambient", (0.3, 0.3, 0.32, 1.0)),
        ]
        ordered = sorted(
            visible, key=lambda o: self.material_for(o).sort_key + (o.mesh,)
        )
        prev: Material | None = None
        mode = "opaque"
        second_pass: list[SceneObject] = []
        for obj in ordered:
            mat = self.material_for(obj)
            if mat.blend_add and mode != "blend":
                mode = "blend"
                calls.append(SetState("depth_write", False))
                calls.append(SetState("blend", "add"))
            calls.extend(self._bind_material(mat, prev))
            prev = mat
            self._draw_object(obj, shot, calls)
            mesh_salt = sum(obj.mesh.encode()) % 13  # deterministic across runs
            roll = ((obj.material * 31 + obj.room * 17 + mesh_salt) % 97) / 97.0
            if (
                not mat.alpha_test
                and not mat.blend_add
                and roll < self.params.two_pass_fraction
            ):
                second_pass.append(obj)
        if second_pass:
            # Lightmap/detail/fog passes: the surface is re-sent with the
            # depth test at EQUAL, so only the visible fragments blend.
            calls.append(SetState("depth_func", "equal"))
            calls.append(SetState("depth_write", False))
            for extra in range(max(1, self.params.extra_passes)):
                calls.append(
                    SetState("blend", "modulate" if extra == 0 else "add")
                )
                for obj in second_pass:
                    mat = self.material_for(obj)
                    calls.extend(self._bind_material(mat, prev))
                    prev = mat
                    self._draw_object(obj, shot, calls)
        return calls

    def _stencil_shadow_frame(
        self, frame: int, path, shot, visible: list[SceneObject]
    ) -> list:
        params = self.params
        calls: list = [
            # Depth prepass: fill z, color writes masked, no fragment program.
            SetState("color_mask", False),
            SetState("depth_test", True),
            SetState("depth_func", "less"),
            SetState("depth_write", True),
            SetState("blend", "replace"),
            SetState("stencil_test", False),
            SetState("cull", "back"),
            SetState("hierarchical_z", True),
            BindProgram("fragment", None),
        ]
        prev_vp: str | None = None
        for obj in sorted(visible, key=lambda o: o.mesh):
            vp = self.material_for(obj).vertex_program
            if vp != prev_vp:
                calls.append(BindProgram("vertex", vp))
                prev_vp = vp
            self._draw_object(obj, shot, calls)

        room = path.room_at(frame)
        visible_rooms = sorted({o.room for o in visible})
        light_rooms = [r for r in visible_rooms if r >= room][: params.lit_rooms]
        if len(light_rooms) < params.lit_rooms:
            light_rooms = visible_rooms[: params.lit_rooms]
        light_radius = params.light_radius_frac * params.room_size[2]

        lights: list[tuple[int, int, np.ndarray]] = []  # (room, index, position)
        for light_room in light_rooms:
            for li, pos in enumerate(room_light_positions(params, light_room)):
                lights.append((light_room, li, pos))

        for light_room, light_index, light_pos in lights:
            room_objects = [
                o
                for o in visible
                if o.room == light_room
                and np.linalg.norm(o.center - light_pos) - o.radius < light_radius
            ]
            casters = [
                o
                for o in room_objects
                if o.caster
                and light_index < len(o.volume_meshes)
                and o.volume_meshes[light_index]
            ]
            if casters:
                calls.extend(
                    [
                        SetState("depth_write", False),
                        SetState("depth_func", "less"),
                        SetState("stencil_test", True),
                        SetState("stencil_func", "always"),
                        SetState("stencil_front", StencilSide(zfail="decr_wrap")),
                        SetState("stencil_back", StencilSide(zfail="incr_wrap")),
                        SetState("cull", "none"),
                        SetState("hierarchical_z", False),
                        SetState("color_mask", False),
                        BindProgram("fragment", None),
                    ]
                )
                for obj in casters:
                    vp = self.material_for(obj).vertex_program
                    if vp != prev_vp:
                        calls.append(BindProgram("vertex", vp))
                        prev_vp = vp
                    mesh = self.scene.meshes[obj.volume_meshes[light_index]]
                    mvp = shot.view_projection @ obj.model
                    calls.append(SetUniform.matrix("mvp", mvp))
                    calls.append(SetUniform.matrix("model", obj.model))
                    calls.append(Draw(mesh.name, mesh.primitive, mesh.index_count))
            # Interaction pass: additive light on non-shadowed pixels.
            calls.extend(
                [
                    SetState("stencil_test", True),
                    SetState("stencil_func", "equal"),
                    SetState("stencil_ref", 0),
                    SetState("stencil_front", StencilSide()),
                    SetState("stencil_back", StencilSide()),
                    SetState("cull", "back"),
                    SetState("depth_func", "equal"),
                    SetState("depth_write", False),
                    SetState("color_mask", True),
                    SetState("blend", "add"),
                    SetState("hierarchical_z", True),
                    SetUniform("light_color", (0.9, 0.85, 0.75, 1.0)),
                    SetUniform("ambient", (0.02, 0.02, 0.02, 1.0)),
                ]
            )
            prev_mat: Material | None = None
            for obj in sorted(room_objects, key=lambda o: self.material_for(o).sort_key):
                mat = self.material_for(obj)
                light_dir = obj.center - light_pos
                norm = np.linalg.norm(light_dir)
                light_dir = light_dir / norm if norm > 0 else np.array([0, -1.0, 0])
                calls.extend(self._bind_material(mat, prev_mat))
                prev_mat = mat
                prev_vp = mat.vertex_program
                calls.append(
                    SetUniform(
                        "light_dir",
                        tuple(float(x) for x in -light_dir) + (0.0,),
                    )
                )
                self._draw_object(obj, shot, calls)
            calls.append(Clear(color=False, depth=False, stencil=True))
        return calls
