"""The twelve Table-I workloads with calibrated engine parameters.

Calibration targets come straight from the paper: batches and indices per
frame (Table III), vertex program lengths (Table IV), primitive mix
(Table V), and fragment program statistics (Table XII).  The scene-shape
parameters (objects per room, triangles per object, pass structure) were
tuned against those targets with ``examples/calibrate.py``.
"""

from __future__ import annotations

from repro.api.commands import GraphicsApi
from repro.workloads.spec import EngineParams, SimProfile, WorkloadSpec

_GL = GraphicsApi.OPENGL
_D3D = GraphicsApi.DIRECT3D


def _spec(**kwargs) -> WorkloadSpec:
    return WorkloadSpec(**kwargs)


WORKLOADS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    WORKLOADS[spec.name] = spec


_register(
    _spec(
        name="UT2004/Primeval",
        game="UT2004",
        timedemo="Primeval",
        engine="Unreal 2.5",
        api=_GL,
        frames=1992,
        duration_s=66.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=False,
        release="March 2004",
        index_size_bytes=2,
        seed=2004,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=14,
            visible_rooms_behind=0,
            object_tris=365,
            room_tris=2600,
            character_tris=900,
            characters_per_room=3,
            two_pass_fraction=0.95,
            extra_passes=4,
            arches_per_room=6,
            pillars_per_room=8,
            foliage_per_room=6,
            alpha_fraction=0.10,
            blend_fraction=0.08,
            vertex_variants=((23, 0.5), (24, 0.5)),
            fragment_variants=(
                (5, 2, 0.50, False),
                (4, 1, 0.40, False),
                (5, 1, 0.07, False),
                (7, 2, 0.03, True),
            ),
            fan_object_fraction=0.002,
            texture_count=32,
            palette="warm",
        ),
        sim=SimProfile(geometry_scale=1.0 / 40.0, frames=12, cache_scale=0.7, texture_l1_scale=0.33),
    )
)

_register(
    _spec(
        name="Doom3/trdemo1",
        game="Doom3",
        timedemo="trdemo1",
        engine="Doom3",
        api=_GL,
        frames=3464,
        duration_s=115.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="August 2004",
        index_size_bytes=4,
        seed=3001,
        params=EngineParams(
            render_path="stencil_shadow",
            rooms=8,
            room_size=(26.0, 6.0, 22.0),
            objects_per_room=130,
            casters_per_room=52,
            arches_per_room=4,
            pillars_per_room=6,
            lights=6,
            lit_rooms=2,
            light_radius_frac=0.23,
            volume_extrusion_frac=0.45,
            object_tris=62,
            room_tris=1550,
            character_tris=300,
            characters_per_room=4,
            vertex_variants=((20, 0.7), (21, 0.3)),
            fragment_variants=((13, 4, 0.85, False), (12, 4, 0.13, False), (11, 3, 0.02, True)),
            alpha_fraction=0.005,
            texture_count=22,
            palette="dark",
        ),
        sim=SimProfile(geometry_scale=1.0 / 32.0, frames=12, texture_l1_scale=0.37),
    )
)

_register(
    _spec(
        name="Doom3/trdemo2",
        game="Doom3",
        timedemo="trdemo2",
        engine="Doom3",
        api=_GL,
        frames=3990,
        duration_s=133.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="August 2004",
        index_size_bytes=4,
        seed=3002,
        params=EngineParams(
            render_path="stencil_shadow",
            rooms=8,
            room_size=(26.0, 6.0, 22.0),
            objects_per_room=52,
            casters_per_room=36,
            arches_per_room=4,
            pillars_per_room=6,
            lights=6,
            lit_rooms=2,
            light_radius_frac=0.30,
            volume_extrusion_frac=0.45,
            object_tris=70,
            room_tris=1000,
            character_tris=320,
            characters_per_room=3,
            vertex_variants=((19, 0.6), (20, 0.4)),
            fragment_variants=((13, 4, 0.93, False), (12, 4, 0.05, False), (11, 3, 0.02, True)),
            alpha_fraction=0.005,
            texture_count=22,
            palette="dark",
        ),
        sim=SimProfile(geometry_scale=1.0 / 32.0, frames=12, texture_l1_scale=0.37),
    )
)

_register(
    _spec(
        name="Quake4/demo4",
        game="Quake4",
        timedemo="demo4",
        engine="Doom3",
        api=_GL,
        frames=2976,
        duration_s=99.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="October 2005",
        index_size_bytes=4,
        seed=4001,
        params=EngineParams(
            render_path="stencil_shadow",
            rooms=8,
            room_size=(26.0, 6.0, 22.0),
            objects_per_room=64,
            casters_per_room=40,
            arches_per_room=4,
            pillars_per_room=6,
            lights=6,
            lit_rooms=2,
            light_radius_frac=0.235,
            volume_extrusion_frac=0.45,
            object_tris=82,
            room_tris=1850,
            character_tris=420,
            characters_per_room=4,
            vertex_variants=((28, 0.9), (27, 0.1)),
            fragment_variants=((17, 4, 0.55, False), (16, 5, 0.35, False), (14, 4, 0.08, False), (13, 3, 0.02, True)),
            alpha_fraction=0.005,
            texture_count=24,
            palette="industrial",
        ),
        sim=SimProfile(geometry_scale=1.0 / 32.0, frames=12),
    )
)

_register(
    _spec(
        name="Quake4/guru5",
        game="Quake4",
        timedemo="guru5",
        engine="Doom3",
        api=_GL,
        frames=3081,
        duration_s=103.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="October 2005",
        index_size_bytes=4,
        seed=4002,
        params=EngineParams(
            render_path="stencil_shadow",
            rooms=8,
            room_size=(26.0, 6.0, 22.0),
            objects_per_room=160,
            casters_per_room=40,
            arches_per_room=4,
            pillars_per_room=6,
            lights=6,
            lit_rooms=2,
            light_radius_frac=0.23,
            volume_extrusion_frac=0.45,
            object_tris=42,
            room_tris=900,
            character_tris=200,
            characters_per_room=4,
            vertex_variants=((24, 0.6), (25, 0.4)),
            fragment_variants=((18, 5, 0.50, False), (17, 4, 0.40, False), (15, 4, 0.08, False), (13, 3, 0.02, True)),
            alpha_fraction=0.005,
            texture_count=24,
            palette="industrial",
        ),
        sim=SimProfile(geometry_scale=1.0 / 32.0, frames=12),
    )
)

_register(
    _spec(
        name="Riddick/MainFrame",
        game="Riddick",
        timedemo="MainFrame",
        engine="Starbreeze",
        api=_GL,
        frames=1629,
        duration_s=54.0,
        texture_quality="High/Trilinear",
        aniso_level=None,
        uses_shaders=True,
        release="December 2004",
        index_size_bytes=2,
        seed=5001,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=112,
            object_tris=124,
            room_tris=1500,
            character_tris=500,
            characters_per_room=3,
            two_pass_fraction=1.0,
            alpha_fraction=0.03,
            blend_fraction=0.04,
            vertex_variants=((17, 0.7), (16, 0.3)),
            fragment_variants=((15, 2, 0.80, False), (13, 2, 0.15, False), (14, 1, 0.05, False)),
            texture_count=18,
            palette="dark",
        ),
        sim=SimProfile(geometry_scale=1.0 / 14.0, frames=12),
    )
)

_register(
    _spec(
        name="Riddick/PrisonArea",
        game="Riddick",
        timedemo="PrisonArea",
        engine="Starbreeze",
        api=_GL,
        frames=2310,
        duration_s=77.0,
        texture_quality="High/Trilinear",
        aniso_level=None,
        uses_shaders=True,
        release="December 2004",
        index_size_bytes=2,
        seed=5002,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=67,
            object_tris=208,
            room_tris=1800,
            character_tris=700,
            characters_per_room=3,
            two_pass_fraction=1.0,
            alpha_fraction=0.03,
            blend_fraction=0.04,
            vertex_variants=((21, 1.0),),
            fragment_variants=((14, 2, 0.75, False), (13, 2, 0.05, False), (12, 1, 0.20, False)),
            texture_count=18,
            palette="dark",
        ),
        sim=SimProfile(geometry_scale=1.0 / 16.0, frames=12),
    )
)

_register(
    _spec(
        name="FEAR/built-in demo",
        game="FEAR",
        timedemo="built-in demo",
        engine="Monolith",
        api=_D3D,
        frames=576,
        duration_s=19.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="October 2005",
        index_size_bytes=2,
        seed=6001,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=106,
            object_tris=228,
            room_tris=2200,
            character_tris=900,
            characters_per_room=3,
            two_pass_fraction=0.80,
            alpha_fraction=0.05,
            blend_fraction=0.05,
            vertex_variants=((18, 0.8), (19, 0.2)),
            fragment_variants=((22, 3, 0.70, False), (20, 2, 0.25, False), (18, 3, 0.05, True)),
            texture_count=22,
            palette="industrial",
        ),
        sim=SimProfile(geometry_scale=1.0 / 18.0, frames=12),
    )
)

_register(
    _spec(
        name="FEAR/interval2",
        game="FEAR",
        timedemo="interval2",
        engine="Monolith",
        api=_D3D,
        frames=2102,
        duration_s=70.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="October 2005",
        index_size_bytes=2,
        seed=6002,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=59,
            object_tris=312,
            room_tris=2600,
            character_tris=1000,
            characters_per_room=3,
            two_pass_fraction=0.80,
            alpha_fraction=0.05,
            blend_fraction=0.05,
            vertex_variants=((21, 1.0),),
            fragment_variants=((20, 3, 0.62, False), (18, 2, 0.33, False), (16, 3, 0.05, True)),
            fan_object_fraction=0.05,
            transition_points=(0.42, 0.78),
            transition_calls=4200,
            texture_count=22,
            palette="industrial",
        ),
        sim=SimProfile(geometry_scale=1.0 / 18.0, frames=12),
    )
)

_register(
    _spec(
        name="Half Life 2 LC/built-in",
        game="Half Life 2 Lost Coast",
        timedemo="built-in",
        engine="Valve Source",
        api=_D3D,
        frames=1805,
        duration_s=60.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="October 2005",
        index_size_bytes=2,
        seed=7001,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=113,
            object_tris=232,
            room_tris=2400,
            character_tris=1100,
            characters_per_room=2,
            two_pass_fraction=0.50,
            alpha_fraction=0.06,
            blend_fraction=0.05,
            vertex_variants=((27, 1.0),),
            fragment_variants=((20, 4, 0.90, False), (20, 3, 0.08, False), (18, 4, 0.02, True)),
            texture_count=24,
            palette="warm",
        ),
        sim=SimProfile(geometry_scale=1.0 / 18.0, frames=12),
    )
)

_register(
    _spec(
        name="Oblivion/Anvil Castle",
        game="Oblivion",
        timedemo="Anvil Castle",
        engine="Gamebryo",
        api=_D3D,
        frames=2620,
        duration_s=87.0,
        texture_quality="High/Trilinear",
        aniso_level=None,
        uses_shaders=True,
        release="March 2006",
        index_size_bytes=2,
        seed=8001,
        params=EngineParams(
            render_path="terrain",
            rooms=8,
            objects_per_room=90,
            object_tris=480,
            terrain_patches=676,
            terrain_patch_tris=950,
            terrain_strip_patches=True,
            terrain_extent=1000.0,
            vertex_variants=(((19, 0.9), (18, 0.1)), ((38, 0.7), (37, 0.3))),
            fragment_variants=((16, 1, 0.60, False), (15, 2, 0.36, False), (14, 1, 0.04, False)),
            transition_points=(0.5,),
            transition_calls=6000,
            texture_count=26,
            palette="outdoor",
        ),
        sim=SimProfile(geometry_scale=1.0 / 24.0, frames=12),
    )
)

_register(
    _spec(
        name="Splinter Cell 3/first level",
        game="Splinter Cell 3",
        timedemo="first level",
        engine="Unreal 2.5++",
        api=_D3D,
        frames=2970,
        duration_s=99.0,
        texture_quality="High/Anisotropic",
        aniso_level=16,
        uses_shaders=True,
        release="March 2005",
        index_size_bytes=2,
        seed=9001,
        params=EngineParams(
            render_path="forward",
            rooms=8,
            objects_per_room=158,
            object_tris=122,
            room_tris=1400,
            character_tris=600,
            characters_per_room=2,
            two_pass_fraction=0.30,
            alpha_fraction=0.04,
            blend_fraction=0.04,
            vertex_variants=((28, 0.65), (29, 0.35)),
            fragment_variants=(
                (4, 2, 0.45, False),
                (5, 2, 0.27, False),
                (3, 1, 0.08, False),
                (6, 3, 0.20, False),
            ),
            strip_object_fraction=0.225,
            fan_object_fraction=0.036,
            texture_count=20,
            palette="dark",
        ),
        sim=SimProfile(geometry_scale=1.0 / 14.0, frames=12),
    )
)

#: The three workloads the paper replays on ATTILA (Tables VII-XVII).
OPENGL_SIMULATED = ("UT2004/Primeval", "Doom3/trdemo2", "Quake4/demo4")


def workload(name: str) -> WorkloadSpec:
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
        )
    return WORKLOADS[name]


def all_workloads() -> list[WorkloadSpec]:
    return list(WORKLOADS.values())
