"""Vectorized shader interpreter.

Executes a :class:`~repro.shader.program.ShaderProgram` over N elements
(vertices or fragments) at once.  Register state is a dense ``(N, 4)`` numpy
array per register, which is what lets the simulator shade an entire draw
call's vertices or surviving fragments in a handful of numpy operations.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.shader.isa import Instruction, Opcode, Operand
from repro.shader.program import ShaderProgram


class SamplerCallback(Protocol):
    """Texture-sampling hook: ``(sampler_unit, coords) -> (N, 4) colors``.

    ``coords`` is the full ``(N, 4)`` source register (units use ``.xy``; TXP
    receives the projective ``.w`` too).  The GPU texture stage implements
    this protocol; tests can pass simple lambdas.
    """

    def __call__(self, unit: int, coords: np.ndarray) -> np.ndarray: ...


class ShaderExecutionError(RuntimeError):
    """Raised when a program reads a register that was never written."""


class ShaderInterpreter:
    """Executes shader programs over vectors of elements."""

    def __init__(self, sampler: SamplerCallback | None = None):
        self._sampler = sampler

    def run(
        self,
        program: ShaderProgram,
        inputs: dict[int, np.ndarray],
        count: int | None = None,
        constants: dict[int, tuple[float, float, float, float]] | None = None,
    ) -> "ShaderResult":
        """Execute ``program`` over all elements.

        ``inputs`` maps attribute/varying register indices (bank ``v``) to
        ``(N, 4)`` or ``(N, k<=4)`` arrays (missing components default to
        ``(0, 0, 0, 1)`` padding as in OpenGL).  ``constants`` supplies or
        overrides constant registers at draw time (e.g. the MVP matrix rows).
        """
        n = count
        for arr in inputs.values():
            n = arr.shape[0] if n is None else n
            if arr.shape[0] != n:
                raise ValueError("all input arrays must share leading dimension")
        if n is None:
            raise ValueError("cannot infer element count: pass count=")

        regs: dict[tuple[str, int], np.ndarray] = {}
        for idx, arr in inputs.items():
            regs[("v", idx)] = _pad_to_vec4(np.asarray(arr, dtype=np.float64), n)
        merged_constants = dict(program.constants)
        if constants:
            merged_constants.update(constants)
        for idx, value in merged_constants.items():
            regs[("c", idx)] = np.broadcast_to(
                np.asarray(value, dtype=np.float64), (n, 4)
            )

        kill_mask = np.zeros(n, dtype=bool)
        texture_requests = 0
        for inst in program.instructions:
            if inst.opcode is Opcode.KIL:
                src = self._read(regs, inst.sources[0], n)
                kill_mask |= (src < 0.0).any(axis=1)
                continue
            if inst.opcode.is_texture:
                if self._sampler is None:
                    raise ShaderExecutionError(
                        f"program {program.name!r} samples textures but no "
                        "sampler callback was provided"
                    )
                coords = self._read(regs, inst.sources[0], n)
                if inst.opcode is Opcode.TXP:
                    w = coords[:, 3:4]
                    safe_w = np.where(w == 0.0, 1.0, w)
                    coords = coords / safe_w
                value = np.asarray(
                    self._sampler(inst.sampler, coords), dtype=np.float64
                )
                if value.shape != (n, 4):
                    raise ShaderExecutionError(
                        f"sampler returned shape {value.shape}, wanted {(n, 4)}"
                    )
                texture_requests += n
                self._write(regs, inst.dest, value)
                continue
            srcs = [self._read(regs, s, n) for s in inst.sources]
            self._write(regs, inst.dest, _ALU_OPS[inst.opcode](*srcs))

        outputs = {
            idx: arr for (bank, idx), arr in regs.items() if bank == "o"
        }
        return ShaderResult(
            outputs=outputs,
            kill_mask=kill_mask,
            instructions_executed=program.instruction_count * n,
            texture_requests=texture_requests,
        )

    @staticmethod
    def _read(regs, operand: Operand, n: int) -> np.ndarray:
        key = (operand.bank, operand.index)
        if key not in regs:
            raise ShaderExecutionError(
                f"read of unwritten register {operand.bank}{operand.index}"
            )
        value = regs[key]
        if operand.swizzle == (0, 1, 2, 3):
            if operand.negate:
                return -value
            # Identity swizzle: skip the fancy-index copy.  The view is
            # read-only so a subsequent full-mask _write still copies it
            # instead of aliasing the source register.
            view = value.view()
            view.flags.writeable = False
            return view
        swz = list(operand.swizzle)
        while len(swz) < 4:
            swz.append(swz[-1])  # replicate last component, ARB-style
        value = value[:, swz]
        return -value if operand.negate else value

    @staticmethod
    def _write(regs, operand: Operand, value: np.ndarray) -> None:
        key = (operand.bank, operand.index)
        mask = operand.swizzle  # destination swizzle acts as a write mask
        if mask == (0, 1, 2, 3):
            regs[key] = value.copy() if value.base is not None else value
            return
        if key not in regs:
            regs[key] = np.zeros_like(value)
        target = regs[key]
        if target.base is not None or not target.flags.writeable:
            target = np.array(target)
            regs[key] = target
        # ARB semantics: the result is computed 4-wide and the mask selects
        # which destination components are updated from the same lane.
        for comp in sorted(set(mask)):
            target[:, comp] = value[:, comp]


class ShaderResult:
    """Output registers plus the execution statistics the tracer consumes."""

    def __init__(
        self,
        outputs: dict[int, np.ndarray],
        kill_mask: np.ndarray,
        instructions_executed: int,
        texture_requests: int,
    ):
        self.outputs = outputs
        self.kill_mask = kill_mask
        self.instructions_executed = instructions_executed
        self.texture_requests = texture_requests

    def output(self, index: int) -> np.ndarray:
        if index not in self.outputs:
            raise ShaderExecutionError(f"program never wrote output o{index}")
        return self.outputs[index]


def _pad_to_vec4(arr: np.ndarray, n: int) -> np.ndarray:
    if arr.ndim == 1:
        arr = arr[:, None]
    k = arr.shape[1]
    if k == 4:
        return arr
    out = np.zeros((n, 4), dtype=np.float64)
    out[:, 3] = 1.0
    out[:, :k] = arr
    return out


def _dp(a: np.ndarray, b: np.ndarray, comps: int) -> np.ndarray:
    s = (a[:, :comps] * b[:, :comps]).sum(axis=1, keepdims=True)
    return np.repeat(s, 4, axis=1)


def _safe_rcp(a: np.ndarray) -> np.ndarray:
    x = a[:, :1]
    return np.repeat(np.where(x == 0.0, np.inf, 1.0 / np.where(x == 0.0, 1.0, x)), 4, axis=1)


def _safe_rsq(a: np.ndarray) -> np.ndarray:
    x = np.abs(a[:, :1])
    return np.repeat(np.where(x == 0.0, np.inf, 1.0 / np.sqrt(np.where(x == 0.0, 1.0, x))), 4, axis=1)


def _nrm(a: np.ndarray) -> np.ndarray:
    norm = np.sqrt((a[:, :3] ** 2).sum(axis=1, keepdims=True))
    norm = np.where(norm == 0.0, 1.0, norm)
    out = a.copy()
    out[:, :3] = a[:, :3] / norm
    return out


def _xpd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    out[:, 3] = 1.0
    return out


_ALU_OPS: dict[Opcode, Callable[..., np.ndarray]] = {
    Opcode.MOV: lambda a: a,
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MAD: lambda a, b, c: a * b + c,
    Opcode.DP3: lambda a, b: _dp(a, b, 3),
    Opcode.DP4: lambda a, b: _dp(a, b, 4),
    Opcode.RCP: _safe_rcp,
    Opcode.RSQ: _safe_rsq,
    Opcode.MIN: np.minimum,
    Opcode.MAX: np.maximum,
    Opcode.SLT: lambda a, b: (a < b).astype(np.float64),
    Opcode.SGE: lambda a, b: (a >= b).astype(np.float64),
    Opcode.FRC: lambda a: a - np.floor(a),
    Opcode.LRP: lambda a, b, c: a * b + (1.0 - a) * c,
    Opcode.CMP: lambda a, b, c: np.where(a < 0.0, b, c),
    Opcode.XPD: _xpd,
    Opcode.LG2: lambda a: np.log2(np.maximum(np.abs(a), 1e-30)),
    Opcode.EX2: lambda a: np.exp2(np.clip(a, -126, 126)),
    Opcode.POW: lambda a, b: np.power(
        np.maximum(np.abs(a[:, :1]), 1e-30), b[:, :1]
    ).repeat(4, axis=1),
    Opcode.NRM: _nrm,
}
