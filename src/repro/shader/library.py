"""Builders for the shader programs the synthetic game engines use.

Register conventions (shared with :mod:`repro.gpu.pipeline`):

Vertex stage
    inputs   ``v0`` position, ``v1`` uv0, ``v2`` normal, ``v3`` color,
             ``v4`` tangent, ``v5`` uv1
    consts   ``c0..c3`` MVP rows, ``c4`` light direction, ``c5`` light color,
             ``c6`` ambient, ``c7`` misc params, ``c8..c10`` model rows
    outputs  ``o0`` clip position, ``o1`` uv0, ``o2`` lit color, ``o3`` uv1

Fragment stage
    inputs   ``v1`` uv0, ``v2`` interpolated color, ``v3`` uv1
    consts   ``c0`` modulator, ``c1`` ambient, ``c2`` params
             (``c2.x`` = alpha-test threshold), ``c7`` filler operand
    output   ``o0`` color

Real games reach their instruction counts with per-material permutations of
the same building blocks (transform, lighting, texture combines); the
builders here do the same, with an explicit ``total_instructions`` target so
the workload models can be calibrated against the paper's Tables IV and XII.
"""

from __future__ import annotations

from repro.shader.program import ShaderProgram, ShaderStage, assemble

_DEFAULT_VERTEX_CONSTANTS = {
    4: (0.35, 0.85, 0.40, 0.0),  # light direction (normalized-ish)
    5: (1.0, 0.95, 0.85, 1.0),  # light color
    6: (0.25, 0.25, 0.25, 1.0),  # ambient floor
    7: (0.5, 0.9, 1.5, 8.0),  # misc params / filler operand
}

_DEFAULT_FRAGMENT_CONSTANTS = {
    0: (1.0, 1.0, 1.0, 1.0),  # modulator
    1: (0.08, 0.08, 0.10, 1.0),  # ambient term
    2: (0.5, 0.0, 0.0, 0.0),  # c2.x alpha-test threshold
    7: (0.6, 0.8, 1.2, 4.0),  # filler operand
}

_TRANSFORM_BLOCK = """
DP4 o0.x, v0, c0
DP4 o0.y, v0, c1
DP4 o0.z, v0, c2
DP4 o0.w, v0, c3
"""

_LIGHTING_BLOCK = """
DP3 r1.x, v2, c8
DP3 r1.y, v2, c9
DP3 r1.z, v2, c10
DP3 r2, r1, c4
MAX r2, r2, c6
MUL o2, r2, c5
"""


def build_vertex_program(
    name: str,
    total_instructions: int,
    lit: bool = True,
    uv_sets: int = 1,
) -> ShaderProgram:
    """Build a vertex program of exactly ``total_instructions`` instructions.

    The program always performs the real MVP transform (so the simulator's
    geometry stage is exact) and copies ``uv_sets`` texture coordinate sets;
    when ``lit`` it evaluates a directional diffuse light into ``o2``.  Any
    remaining budget is spent on a well-defined MAD chain standing in for the
    skinning/fog/tangent work real engine shaders do.
    """
    if uv_sets not in (1, 2):
        raise ValueError("uv_sets must be 1 or 2")
    lines = [_TRANSFORM_BLOCK.strip()]
    lines.append("MOV o1, v1")
    if uv_sets == 2:
        lines.append("MOV o3, v5")
    if lit:
        lines.append(_LIGHTING_BLOCK.strip())
    else:
        lines.append("MOV o2, v3")
    body = "\n".join(lines)
    fixed = sum(1 for line in body.splitlines() if line.strip())
    filler = total_instructions - fixed
    if filler < 0:
        raise ValueError(
            f"{name}: total_instructions={total_instructions} below the "
            f"{fixed}-instruction fixed structure"
        )
    body += "\n" + _filler_chain(filler)
    return assemble(
        body,
        name=name,
        stage=ShaderStage.VERTEX,
        constants=_DEFAULT_VERTEX_CONSTANTS,
    )


def build_fragment_program(
    name: str,
    texture_count: int,
    total_instructions: int,
    alpha_test: bool = False,
    uv_sets: int = 1,
    emissive: bool = False,
) -> ShaderProgram:
    """Build a fragment program with ``texture_count`` TEX instructions and
    exactly ``total_instructions`` instructions in total.

    Structure: sample each bound texture, modulate the diffuse sample by the
    interpolated vertex color, accumulate further samples additively, run the
    calibration MAD chain, optionally alpha-test via KIL (the ATTILA idiom),
    and write ``o0``.
    """
    if texture_count < 0:
        raise ValueError("texture_count must be >= 0")

    def build_lines(modulate: bool) -> list[str]:
        lines: list[str] = []
        second_uv = "v3" if uv_sets == 2 else "v1"
        for unit in range(texture_count):
            coord = "v1" if unit == 0 else second_uv
            lines.append(f"TEX r{unit}, {coord}, s{unit}")
        if texture_count > 0:
            if modulate:
                lines.append("MUL r0, r0, v2")
            for unit in range(1, texture_count):
                if emissive:
                    lines.append(f"ADD r0, r0, r{unit}")
                else:
                    lines.append(f"LRP r0, c7.xxxx, r{unit}, r0")
        else:
            lines.append("MOV r0, v2")
        if alpha_test:
            lines.append("ADD r5, r0.wwww, -c2.xxxx")
            lines.append("KIL r5")
        return lines

    # Prefer modulating by the interpolated vertex color; drop it when the
    # instruction budget is too lean (pure multitexture combiners).
    lines = build_lines(modulate=True)
    if total_instructions < len(lines) + 1:
        lines = build_lines(modulate=False)
    fixed = len(lines) + 1  # +1 for the final output MOV
    filler = total_instructions - fixed
    if filler < 0:
        raise ValueError(
            f"{name}: total_instructions={total_instructions} below the "
            f"{fixed}-instruction fixed structure"
        )
    lines.append(_filler_chain(filler))
    lines.append("MOV o0, r0")
    return assemble(
        "\n".join(lines),
        name=name,
        stage=ShaderStage.FRAGMENT,
        constants=_DEFAULT_FRAGMENT_CONSTANTS,
    )


def depth_only_fragment(name: str = "depth_only") -> ShaderProgram:
    """Fragment program for depth/stencil-only passes (color writes masked)."""
    return assemble(
        "MOV o0, c1",
        name=name,
        stage=ShaderStage.FRAGMENT,
        constants=_DEFAULT_FRAGMENT_CONSTANTS,
    )


def fixed_function_vertex(name: str = "fixed_function") -> ShaderProgram:
    """The program ATTILA's driver synthesizes for fixed-function geometry.

    UT2004 does not use vertex programs; the paper notes the low-level driver
    transparently translates the fixed-function state into an equivalent
    shader, which is how Table IV still reports a count for it.
    """
    return build_vertex_program(name, total_instructions=23, lit=True, uv_sets=2)


def _filler_chain(count: int) -> str:
    """A ``count``-instruction, side-effect-free MAD/FRC chain on r6/r7.

    Stands in for per-material ALU (specular approximation, fog, detail
    blending) so calibrated program lengths execute real arithmetic.
    """
    if count == 0:
        return ""
    lines = ["MOV r6, c7"]
    ops = ("MAD r6, r6, c7.yyyy, c7.xxxx", "FRC r7, r6", "MAD r6, r7, c7.zzzz, r6")
    for i in range(count - 1):
        lines.append(ops[i % len(ops)])
    return "\n".join(lines[:count])
