"""Shader programs and the text assembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.shader.isa import Instruction, Opcode, Operand


class ShaderStage(Enum):
    VERTEX = "vertex"
    FRAGMENT = "fragment"


@dataclass(frozen=True)
class ShaderProgram:
    """An assembled shader program plus the metadata the tracer reports.

    The paper's Table IV and XII statistics are *executed* instruction counts;
    with no flow control in this ISA they equal the static program length, so
    the program itself carries the characterization metadata.
    """

    name: str
    stage: ShaderStage
    instructions: tuple[Instruction, ...]
    constants: dict[int, tuple[float, float, float, float]] = field(
        default_factory=dict
    )

    @property
    def instruction_count(self) -> int:
        """Total instructions (the paper's 'Instructions' column)."""
        return len(self.instructions)

    @property
    def texture_instruction_count(self) -> int:
        """Texture-sampling instructions (TEX/TXP/TXB)."""
        return sum(1 for i in self.instructions if i.opcode.is_texture)

    @property
    def alu_instruction_count(self) -> int:
        """Non-texture, non-kill arithmetic instructions."""
        return sum(
            1
            for i in self.instructions
            if not i.opcode.is_texture and not i.opcode.is_kill
        )

    @property
    def alu_to_texture_ratio(self) -> float:
        """ALU instructions per texture instruction (inf when no TEX)."""
        tex = self.texture_instruction_count
        if tex == 0:
            return float("inf")
        return self.alu_instruction_count / tex

    @property
    def uses_kill(self) -> bool:
        """True when the program contains KIL (ATTILA's alpha-test idiom)."""
        return any(i.opcode.is_kill for i in self.instructions)

    @property
    def samplers_used(self) -> tuple[int, ...]:
        """Sorted distinct sampler units referenced by texture instructions."""
        return tuple(
            sorted(
                {i.sampler for i in self.instructions if i.sampler is not None}
            )
        )

    def source_text(self) -> str:
        """Disassemble back to the text form accepted by :func:`assemble`."""
        return "\n".join(str(i) for i in self.instructions)


def assemble(
    text: str,
    name: str = "anon",
    stage: ShaderStage = ShaderStage.FRAGMENT,
    constants: dict[int, tuple[float, float, float, float]] | None = None,
) -> ShaderProgram:
    """Assemble shader text into a :class:`ShaderProgram`.

    One instruction per line; ``#`` starts a comment; blank lines ignored.

    >>> prog = assemble("DP4 o0.x, v0, c0\\nTEX r0, v1, s0\\nKIL -r0.a")
    >>> prog.instruction_count, prog.texture_instruction_count
    (3, 1)
    """
    instructions: list[Instruction] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip().rstrip(";")
        if not line:
            continue
        try:
            instructions.append(_parse_line(line))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from exc
    return ShaderProgram(
        name=name,
        stage=stage,
        instructions=tuple(instructions),
        constants=dict(constants or {}),
    )


def _parse_line(line: str) -> Instruction:
    mnemonic, _, rest = line.partition(" ")
    try:
        opcode = Opcode(mnemonic.upper())
    except ValueError as exc:
        raise ValueError(f"unknown opcode {mnemonic!r}") from exc
    operand_texts = [t.strip() for t in rest.split(",") if t.strip()]

    sampler = None
    if opcode.is_texture:
        if not operand_texts or not operand_texts[-1].startswith("s"):
            raise ValueError(f"{opcode.value} needs a trailing sampler operand")
        sampler_text = operand_texts.pop()
        if not sampler_text[1:].isdigit():
            raise ValueError(f"bad sampler {sampler_text!r}")
        sampler = int(sampler_text[1:])

    operands = [Operand.parse(t) for t in operand_texts]
    if opcode.is_kill:
        dest, sources = None, tuple(operands)
    else:
        if not operands:
            raise ValueError(f"{opcode.value} needs a destination")
        dest, sources = operands[0], tuple(operands[1:])
    return Instruction(opcode=opcode, dest=dest, sources=sources, sampler=sampler)
