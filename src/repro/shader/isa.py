"""Shader instruction set definition.

The ISA mirrors the ARB vertex/fragment program model that both the paper's
OpenGL workloads and the ATTILA shader core use: 4-wide registers, source
swizzles and negation, destination write masks, and a texture-sampling
instruction class (TEX/TXP/TXB) plus the fragment-kill instruction (KIL) that
ATTILA uses to implement the alpha test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Opcode(Enum):
    """Supported opcodes, a practical subset of ARB_vertex/fragment_program."""

    MOV = "MOV"
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    MAD = "MAD"
    DP3 = "DP3"
    DP4 = "DP4"
    RCP = "RCP"
    RSQ = "RSQ"
    MIN = "MIN"
    MAX = "MAX"
    SLT = "SLT"
    SGE = "SGE"
    FRC = "FRC"
    LRP = "LRP"
    CMP = "CMP"
    XPD = "XPD"
    LG2 = "LG2"
    EX2 = "EX2"
    POW = "POW"
    NRM = "NRM"
    TEX = "TEX"
    TXP = "TXP"
    TXB = "TXB"
    KIL = "KIL"

    @property
    def is_texture(self) -> bool:
        """True for instructions that issue a texture request."""
        return self in (Opcode.TEX, Opcode.TXP, Opcode.TXB)

    @property
    def is_kill(self) -> bool:
        return self is Opcode.KIL


#: Number of source operands each opcode consumes (KIL's operand is a source).
SOURCE_COUNTS = {
    Opcode.MOV: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.MAD: 3,
    Opcode.DP3: 2,
    Opcode.DP4: 2,
    Opcode.RCP: 1,
    Opcode.RSQ: 1,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.SLT: 2,
    Opcode.SGE: 2,
    Opcode.FRC: 1,
    Opcode.LRP: 3,
    Opcode.CMP: 3,
    Opcode.XPD: 2,
    Opcode.LG2: 1,
    Opcode.EX2: 1,
    Opcode.POW: 2,
    Opcode.NRM: 1,
    Opcode.TEX: 1,
    Opcode.TXP: 1,
    Opcode.TXB: 1,
    Opcode.KIL: 1,
}

#: Register banks. ``v`` = vertex attributes / fragment varyings, ``r`` =
#: temporaries, ``c`` = constants, ``o`` = outputs, ``s`` = texture samplers.
REGISTER_BANKS = ("v", "r", "c", "o", "s")

_COMPONENTS = {"x": 0, "y": 1, "z": 2, "w": 3, "r": 0, "g": 1, "b": 2, "a": 3}


@dataclass(frozen=True)
class Operand:
    """A register reference with optional swizzle / write mask and negation.

    ``bank`` is one of :data:`REGISTER_BANKS`; ``index`` selects the register;
    ``swizzle`` is a 4-tuple of component indices for sources, or the write
    mask component set for destinations; ``negate`` applies to sources only.
    """

    bank: str
    index: int
    swizzle: tuple[int, ...] = (0, 1, 2, 3)
    negate: bool = False

    def __post_init__(self) -> None:
        if self.bank not in REGISTER_BANKS:
            raise ValueError(f"unknown register bank {self.bank!r}")
        if self.index < 0:
            raise ValueError("register index must be non-negative")
        if not self.swizzle or len(self.swizzle) > 4:
            raise ValueError("swizzle must have 1..4 components")
        if any(c not in (0, 1, 2, 3) for c in self.swizzle):
            raise ValueError("swizzle components must be 0..3")

    @classmethod
    def parse(cls, text: str) -> "Operand":
        """Parse an operand like ``r0``, ``-c4.xyzx``, ``o0.xy``."""
        text = text.strip()
        negate = text.startswith("-")
        if negate:
            text = text[1:]
        if "." in text:
            reg, _, swz = text.partition(".")
            try:
                swizzle = tuple(_COMPONENTS[ch] for ch in swz)
            except KeyError as exc:
                raise ValueError(f"bad swizzle in {text!r}") from exc
            if not swizzle:
                raise ValueError(f"empty swizzle in {text!r}")
        else:
            reg, swizzle = text, (0, 1, 2, 3)
        if not reg or reg[0] not in REGISTER_BANKS or not reg[1:].isdigit():
            raise ValueError(f"bad register {text!r}")
        return cls(bank=reg[0], index=int(reg[1:]), swizzle=swizzle, negate=negate)

    def __str__(self) -> str:
        comps = "xyzw"
        swz = "".join(comps[c] for c in self.swizzle)
        suffix = "" if self.swizzle == (0, 1, 2, 3) else f".{swz}"
        return f"{'-' if self.negate else ''}{self.bank}{self.index}{suffix}"


@dataclass(frozen=True)
class Instruction:
    """One shader instruction: opcode, optional destination, sources.

    For texture instructions ``sampler`` names the texture unit sampled.
    KIL has no destination.
    """

    opcode: Opcode
    dest: Operand | None
    sources: tuple[Operand, ...] = field(default_factory=tuple)
    sampler: int | None = None

    def __post_init__(self) -> None:
        expected = SOURCE_COUNTS[self.opcode]
        if len(self.sources) != expected:
            raise ValueError(
                f"{self.opcode.value} expects {expected} sources, "
                f"got {len(self.sources)}"
            )
        if self.opcode.is_kill:
            if self.dest is not None:
                raise ValueError("KIL takes no destination")
        elif self.dest is None:
            raise ValueError(f"{self.opcode.value} requires a destination")
        if self.opcode.is_texture and self.sampler is None:
            raise ValueError(f"{self.opcode.value} requires a sampler")
        if self.dest is not None and self.dest.bank not in ("r", "o"):
            raise ValueError("destination must be a temporary or output register")

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(s) for s in self.sources)
        if self.sampler is not None:
            operands.append(f"s{self.sampler}")
        return f"{parts[0]} " + ", ".join(operands)
