"""ARB-assembly-flavoured shader model.

The paper characterizes shader programs by executed instruction counts and by
the split between ALU and texture instructions (Tables IV and XII).  This
package provides a small but real instruction set, an assembler, a vectorized
interpreter used by the GPU simulator's vertex and fragment stages, and a
library of per-engine programs whose lengths match the paper's workloads.
"""

from repro.shader.isa import Opcode, Operand, Instruction
from repro.shader.program import ShaderProgram, ShaderStage, assemble
from repro.shader.interpreter import ShaderInterpreter, SamplerCallback
from repro.shader import library

__all__ = [
    "Opcode",
    "Operand",
    "Instruction",
    "ShaderProgram",
    "ShaderStage",
    "assemble",
    "ShaderInterpreter",
    "SamplerCallback",
    "library",
]
