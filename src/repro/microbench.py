"""GPUBench-style synthetic microbenchmarks for the simulator.

The paper's related work cites GPUBench [12]: "a set of small
special-designed tests, each one giving a different measurement like
fillrates, latencies or BWs".  This module builds the equivalent targeted
workloads for the simulated pipeline — each stresses exactly one stage and
reports that stage's event counts and the coarse cycle estimate — and is
used by the examples and the quality benchmarks to sanity-check that the
simulator's bottleneck behaviour responds to the Table II machine rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

import repro.util.mathutil as mu
from repro.api.commands import (
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    GraphicsApi,
    SetState,
    SetUniform,
)
from repro.api.trace import Frame, Trace, TraceMeta
from repro.geometry.generators import grid_mesh
from repro.geometry.mesh import Mesh
from repro.gpu import perf
from repro.gpu.config import GpuConfig
from repro.gpu.pipeline import GpuSimulator
from repro.gpu.texture import TextureResource
from repro.shader import library


@dataclass(frozen=True)
class MicrobenchResult:
    """One microbenchmark's outcome."""

    name: str
    metric: str
    events: int
    cycles_per_frame: float
    bottleneck: str
    #: Measured wall time of the hot pass (fused-kernel benches only; the
    #: scenario benches report simulated cycles, not host time).
    seconds: float = 0.0

    @property
    def events_per_cycle(self) -> float:
        return self.events / self.cycles_per_frame if self.cycles_per_frame else 0.0

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds else 0.0


def _fullscreen_quad(name: str = "fsq", depth: float = 0.0) -> Mesh:
    positions = np.array(
        [[-1, -1, depth], [1, -1, depth], [-1, 1, depth], [1, 1, depth]],
        dtype=float,
    )
    uvs = np.array([[0, 0], [8, 0], [0, 8], [8, 8]], dtype=float)
    return Mesh(name, positions, [0, 1, 2, 2, 1, 3], uvs=uvs)


def _noise_texture(name: str, size: int = 128) -> TextureResource:
    rng = np.random.default_rng(17)
    img = rng.random((size, size, 4)).astype(np.float32)
    img[..., 3] = 1.0
    return TextureResource.from_image(name, img)


def _ortho_mvp() -> np.ndarray:
    # The full-screen quad is already in NDC: push it slightly into the
    # frustum with a simple translation-style projection.
    m = np.eye(4)
    m[2, 2] = 0.5
    m[2, 3] = -0.5
    return m


def _run(
    config: GpuConfig,
    meshes: dict[str, Mesh],
    programs,
    textures,
    calls: list,
) -> tuple:
    sim = GpuSimulator(config, meshes, programs, textures)
    meta = TraceMeta(
        "microbench", GraphicsApi.OPENGL, 1, config.width, config.height
    )
    start = time.perf_counter()
    result = sim.run_trace(Trace(meta, [Frame(0, calls)]))
    seconds = time.perf_counter() - start
    estimate = perf.estimate(result.stats, result.memory, result.config)
    return result, estimate, seconds


def fill_rate(config: GpuConfig | None = None, layers: int = 8) -> MicrobenchResult:
    """Color fill rate: ``layers`` full-screen quads, trivial shading."""
    config = config or GpuConfig(width=256, height=192)
    mesh = _fullscreen_quad()
    vp = library.build_vertex_program("vp", 12, lit=False)
    fp = library.build_fragment_program("fp", 0, 3)
    calls: list = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetState("depth_test", False),
        SetUniform.matrix("mvp", _ortho_mvp()),
        SetUniform.matrix("model", np.eye(4)),
    ]
    calls.extend(
        Draw("fsq", mesh.primitive, mesh.index_count) for _ in range(layers)
    )
    result, estimate, _ = _run(config, {"fsq": mesh}, {"vp": vp, "fp": fp}, [], calls)
    return MicrobenchResult(
        "fill_rate",
        "fragments blended",
        result.stats.fragments_blended,
        estimate.cycles_per_frame,
        estimate.bottleneck,
    )


def texture_rate(
    config: GpuConfig | None = None, layers: int = 4, textures: int = 4
) -> MicrobenchResult:
    """Texture sampling throughput: multitextured full-screen quads."""
    config = config or GpuConfig(width=256, height=192)
    mesh = _fullscreen_quad()
    vp = library.build_vertex_program("vp", 12, lit=False)
    fp = library.build_fragment_program("fp", textures, textures * 2 + 2)
    resources = [_noise_texture(f"noise{i}") for i in range(textures)]
    calls: list = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetState("depth_test", False),
        SetUniform.matrix("mvp", _ortho_mvp()),
        SetUniform.matrix("model", np.eye(4)),
    ]
    calls.extend(BindTexture(i, f"noise{i}") for i in range(textures))
    calls.extend(
        Draw("fsq", mesh.primitive, mesh.index_count) for _ in range(layers)
    )
    result, estimate, _ = _run(
        config, {"fsq": mesh}, {"vp": vp, "fp": fp}, resources, calls
    )
    return MicrobenchResult(
        "texture_rate",
        "bilinear samples",
        result.stats.bilinear_samples,
        estimate.cycles_per_frame,
        estimate.bottleneck,
    )


def geometry_rate(
    config: GpuConfig | None = None, cells: int = 96
) -> MicrobenchResult:
    """Vertex/setup throughput: a dense grid of tiny triangles."""
    config = config or GpuConfig(width=256, height=192)
    mesh = grid_mesh("dense", cells, cells, 2.0, 2.0)
    vp = library.build_vertex_program("vp", 24)
    fp = library.build_fragment_program("fp", 0, 3)
    view = mu.perspective(60, config.width / config.height, 0.1, 50) @ mu.look_at(
        (0, 2.2, 2.2), (0, 0, 0)
    )
    calls = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetUniform.matrix("mvp", view),
        SetUniform.matrix("model", np.eye(4)),
        Draw("dense", mesh.primitive, mesh.index_count),
    ]
    result, estimate, _ = _run(config, {"dense": mesh}, {"vp": vp, "fp": fp}, [], calls)
    return MicrobenchResult(
        "geometry_rate",
        "triangles assembled",
        result.stats.triangles_assembled,
        estimate.cycles_per_frame,
        estimate.bottleneck,
    )


def zstencil_rate(
    config: GpuConfig | None = None, layers: int = 10
) -> MicrobenchResult:
    """Z reject throughput: occluded full-screen layers behind a near quad."""
    config = config or GpuConfig(width=256, height=192)
    near = _fullscreen_quad("near", depth=-0.5)
    far = _fullscreen_quad("far", depth=0.5)
    vp = library.build_vertex_program("vp", 12, lit=False)
    fp = library.build_fragment_program("fp", 0, 3)
    calls: list = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetUniform.matrix("mvp", _ortho_mvp()),
        SetUniform.matrix("model", np.eye(4)),
        Draw("near", near.primitive, near.index_count),
    ]
    calls.extend(
        Draw("far", far.primitive, far.index_count) for _ in range(layers)
    )
    result, estimate, _ = _run(
        config, {"near": near, "far": far}, {"vp": vp, "fp": fp}, [], calls
    )
    return MicrobenchResult(
        "zstencil_rate",
        "fragments z-tested",
        result.stats.fragments_zstencil,
        estimate.cycles_per_frame,
        estimate.bottleneck,
    )


ALL_MICROBENCHES = {
    "fill_rate": fill_rate,
    "texture_rate": texture_rate,
    "geometry_rate": geometry_rate,
    "zstencil_rate": zstencil_rate,
}


def run_all(config: GpuConfig | None = None) -> list[MicrobenchResult]:
    """Run the whole suite with a shared configuration."""
    return [func(config) for func in ALL_MICROBENCHES.values()]


# -- fused whole-stage kernel benches --------------------------------------
# The scenario benches above measure *simulated* throughput (events per
# estimated cycle); these measure the *host-side* cost of the mega-batch
# path's fused kernels (see repro.gpu.fused), wall-timed min-of-N so perf
# PRs against the frame-level fusion have a per-kernel baseline.


def arena_fill(
    config: GpuConfig | None = None,
    quads: int = 1 << 15,
    segments: int = 16,
    repeats: int = 5,
) -> MicrobenchResult:
    """SoA arena fill: append ``segments`` draws' quads into a FrameArena."""
    from repro.gpu.fused import FrameArena
    from repro.gpu.rasterizer import QuadStream

    rng = np.random.default_rng(11)
    n = max(1, quads // segments)
    stream = QuadStream(
        qx=rng.integers(0, 128, n),
        qy=rng.integers(0, 96, n),
        cover=rng.random((n, 4)) < 0.8,
        z=rng.random((n, 4)),
        uv=rng.random((n, 4, 2)),
        color=rng.random((n, 4, 4)),
        tri=np.arange(n, dtype=np.int64) // 4,
        front=np.ones(n, dtype=bool),
    )
    arena = FrameArena()
    best = float("inf")
    for _ in range(max(1, repeats)):
        arena.reset()
        start = time.perf_counter()
        for seg in range(segments):
            arena.append(stream, seg)
        best = min(best, time.perf_counter() - start)
    return MicrobenchResult(
        "arena_fill",
        "quads appended",
        segments * n,
        0.0,
        "host memory",
        seconds=best,
    )


def _timed_fused(config: GpuConfig | None) -> GpuConfig:
    base = config or GpuConfig(width=256, height=192)
    return replace(base, vectorized=True, fused=True)


def fused_zstencil_pass(
    config: GpuConfig | None = None, layers: int = 10, repeats: int = 3
) -> MicrobenchResult:
    """Fused HZ + Z/stencil kernel: the z-reject scenario through the arena
    path (one native ``zpass`` per frame chunk), wall-timed end to end."""
    config = _timed_fused(config)
    near = _fullscreen_quad("near", depth=-0.5)
    far = _fullscreen_quad("far", depth=0.5)
    vp = library.build_vertex_program("vp", 12, lit=False)
    fp = library.build_fragment_program("fp", 0, 3)
    calls: list = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetUniform.matrix("mvp", _ortho_mvp()),
        SetUniform.matrix("model", np.eye(4)),
        Draw("near", near.primitive, near.index_count),
    ]
    calls.extend(
        Draw("far", far.primitive, far.index_count) for _ in range(layers)
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        result, estimate, seconds = _run(
            config, {"near": near, "far": far}, {"vp": vp, "fp": fp}, [], calls
        )
        best = min(best, seconds)
    return MicrobenchResult(
        "fused_zstencil_pass",
        "fragments z-tested",
        result.stats.fragments_zstencil,
        estimate.cycles_per_frame,
        estimate.bottleneck,
        seconds=best,
    )


def fused_texture_pass(
    config: GpuConfig | None = None,
    layers: int = 4,
    textures: int = 4,
    repeats: int = 3,
) -> MicrobenchResult:
    """Fused texture kernel: the multitexture scenario through the arena
    path (whole-draw ``texcache``/``bilinear_levels`` calls), wall-timed."""
    config = _timed_fused(config)
    mesh = _fullscreen_quad()
    vp = library.build_vertex_program("vp", 12, lit=False)
    fp = library.build_fragment_program("fp", textures, textures * 2 + 2)
    resources = [_noise_texture(f"noise{i}") for i in range(textures)]
    calls: list = [
        Clear(),
        BindProgram("vertex", "vp"),
        BindProgram("fragment", "fp"),
        SetState("depth_test", False),
        SetUniform.matrix("mvp", _ortho_mvp()),
        SetUniform.matrix("model", np.eye(4)),
    ]
    calls.extend(BindTexture(i, f"noise{i}") for i in range(textures))
    calls.extend(
        Draw("fsq", mesh.primitive, mesh.index_count) for _ in range(layers)
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        result, estimate, seconds = _run(
            config, {"fsq": mesh}, {"vp": vp, "fp": fp}, resources, calls
        )
        best = min(best, seconds)
    return MicrobenchResult(
        "fused_texture_pass",
        "bilinear samples",
        result.stats.bilinear_samples,
        estimate.cycles_per_frame,
        estimate.bottleneck,
        seconds=best,
    )


FUSED_MICROBENCHES = {
    "arena_fill": arena_fill,
    "fused_zstencil_pass": fused_zstencil_pass,
    "fused_texture_pass": fused_texture_pass,
}


def run_fused(config: GpuConfig | None = None) -> list[MicrobenchResult]:
    """Run the fused-kernel benches with a shared configuration."""
    return [func(config) for func in FUSED_MICROBENCHES.values()]
