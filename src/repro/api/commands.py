"""API call model.

A frame is a sequence of these calls.  ``Draw`` is a "batch" in the paper's
terminology; everything else counts as a state call (the paper's Fig. 3
"average state calls between batches" metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

import numpy as np

from repro.geometry.primitives import PrimitiveType


class GraphicsApi(Enum):
    OPENGL = "OpenGL"
    DIRECT3D = "Direct3D"


@dataclass(frozen=True)
class Draw:
    """An indexed draw call: one batch of one primitive type.

    ``mesh`` names a mesh in the workload's mesh library; ``index_count``
    indices starting at ``first_index`` of that mesh's index buffer are drawn.
    """

    mesh: str
    primitive: PrimitiveType
    index_count: int
    first_index: int = 0

    def __post_init__(self) -> None:
        if self.index_count <= 0:
            raise ValueError("index_count must be positive")
        if self.first_index < 0:
            raise ValueError("first_index must be non-negative")


@dataclass(frozen=True)
class SetState:
    """Fixed-function / pipeline state change (depth func, blend, masks…)."""

    name: str
    value: object


@dataclass(frozen=True)
class SetUniform:
    """Shader constant upload (e.g. the per-batch MVP matrix)."""

    name: str
    value: tuple

    @staticmethod
    def matrix(name: str, matrix: np.ndarray) -> "SetUniform":
        return SetUniform(name, tuple(float(x) for x in np.asarray(matrix).reshape(-1)))


@dataclass(frozen=True)
class BindProgram:
    """Bind (or unbind with ``None``) a vertex or fragment program."""

    stage: str  # "vertex" | "fragment"
    program: str | None

    def __post_init__(self) -> None:
        if self.stage not in ("vertex", "fragment"):
            raise ValueError("stage must be 'vertex' or 'fragment'")


@dataclass(frozen=True)
class BindTexture:
    """Bind texture ``texture`` to sampler ``unit`` (None unbinds)."""

    unit: int
    texture: str | None


@dataclass(frozen=True)
class UploadResource:
    """Geometry/texture upload from system memory to GPU memory.

    These dominate the first frames of every timedemo and the scene
    transitions (the spikes in the paper's Fig. 3); the byte count feeds the
    Command Processor traffic in Table XVI.
    """

    resource: str
    kind: str  # "vertex" | "index" | "texture"
    byte_size: int

    def __post_init__(self) -> None:
        if self.kind not in ("vertex", "index", "texture"):
            raise ValueError("kind must be vertex/index/texture")
        if self.byte_size < 0:
            raise ValueError("byte_size must be non-negative")


@dataclass(frozen=True)
class Clear:
    """Clear framebuffer planes at frame start (fast-cleared in the GPU)."""

    color: bool = True
    depth: bool = True
    stencil: bool = True
    color_value: tuple[float, float, float, float] = (0.0, 0.0, 0.0, 1.0)
    depth_value: float = 1.0
    stencil_value: int = 0


ApiCall = Union[Draw, SetState, SetUniform, BindProgram, BindTexture, UploadResource, Clear]

#: Calls that count towards the paper's "state calls" metric (everything
#: that is not a draw).
STATE_CALL_TYPES = (SetState, SetUniform, BindProgram, BindTexture, UploadResource, Clear)


def is_state_call(call: ApiCall) -> bool:
    return isinstance(call, STATE_CALL_TYPES)
