"""Trace container and JSONL serialization.

A trace is what GLInterceptor/PIX captured for the paper: per-frame API call
streams plus workload metadata.  Traces here can be materialized lists or
lazy generators (the synthetic timedemos are generated frame-by-frame).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.api.commands import (
    ApiCall,
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    SetState,
    SetUniform,
    UploadResource,
)
from repro.api.commands import GraphicsApi
from repro.geometry.primitives import PrimitiveType


@dataclass
class Frame:
    """One frame's API call stream."""

    number: int
    calls: list[ApiCall] = field(default_factory=list)

    @property
    def draw_calls(self) -> list[Draw]:
        return [c for c in self.calls if isinstance(c, Draw)]


@dataclass(frozen=True)
class TraceMeta:
    """Workload metadata, mirroring the paper's Table I columns."""

    name: str
    api: GraphicsApi
    frame_count: int
    width: int = 1024
    height: int = 768
    index_size_bytes: int = 2
    engine: str = ""
    aniso_level: int = 16
    uses_shaders: bool = True


class Trace:
    """A replayable API trace: metadata plus an iterable of frames."""

    def __init__(
        self,
        meta: TraceMeta,
        frames: Iterable[Frame] | Callable[[], Iterator[Frame]],
    ):
        self._meta = meta
        self._frames = frames

    @property
    def meta(self) -> TraceMeta:
        return self._meta

    def frames(self) -> Iterator[Frame]:
        """Iterate frames; safe to call repeatedly for callable sources."""
        if callable(self._frames):
            return self._frames()
        return iter(self._frames)

    def materialize(self) -> "Trace":
        """Return a trace with all frames held in memory."""
        return Trace(self._meta, list(self.frames()))


_CALL_NAMES = {
    Draw: "draw",
    SetState: "set_state",
    SetUniform: "set_uniform",
    BindProgram: "bind_program",
    BindTexture: "bind_texture",
    UploadResource: "upload",
    Clear: "clear",
}
_NAME_CALLS = {v: k for k, v in _CALL_NAMES.items()}


def _encode_call(call: ApiCall) -> dict:
    record: dict = {"t": _CALL_NAMES[type(call)]}
    if isinstance(call, Draw):
        record.update(
            mesh=call.mesh,
            prim=call.primitive.value,
            n=call.index_count,
            first=call.first_index,
        )
    elif isinstance(call, SetState):
        value = call.value
        if hasattr(value, "sfail"):  # StencilSide
            value = [value.sfail, value.zfail, value.zpass]
        record.update(name=call.name, value=value)
    elif isinstance(call, SetUniform):
        record.update(name=call.name, value=list(call.value))
    elif isinstance(call, BindProgram):
        record.update(stage=call.stage, program=call.program)
    elif isinstance(call, BindTexture):
        record.update(unit=call.unit, texture=call.texture)
    elif isinstance(call, UploadResource):
        record.update(resource=call.resource, kind=call.kind, size=call.byte_size)
    elif isinstance(call, Clear):
        record.update(
            color=call.color,
            depth=call.depth,
            stencil=call.stencil,
            cv=list(call.color_value),
            dv=call.depth_value,
            sv=call.stencil_value,
        )
    return record


def _decode_call(record: dict) -> ApiCall:
    kind = record["t"]
    if kind == "draw":
        return Draw(
            mesh=record["mesh"],
            primitive=PrimitiveType(record["prim"]),
            index_count=record["n"],
            first_index=record.get("first", 0),
        )
    if kind == "set_state":
        value = record["value"]
        if isinstance(value, list) and record["name"].startswith("stencil_"):
            value = tuple(value)
        return SetState(record["name"], value)
    if kind == "set_uniform":
        return SetUniform(record["name"], tuple(record["value"]))
    if kind == "bind_program":
        return BindProgram(record["stage"], record["program"])
    if kind == "bind_texture":
        return BindTexture(record["unit"], record["texture"])
    if kind == "upload":
        return UploadResource(record["resource"], record["kind"], record["size"])
    if kind == "clear":
        return Clear(
            color=record["color"],
            depth=record["depth"],
            stencil=record["stencil"],
            color_value=tuple(record["cv"]),
            depth_value=record["dv"],
            stencil_value=record["sv"],
        )
    raise ValueError(f"unknown call record {kind!r}")


def save_trace(trace: Trace, path) -> None:
    """Write a trace as JSONL: one meta line, then one line per frame."""
    with open(path, "w", encoding="utf-8") as fh:
        meta = trace.meta
        fh.write(
            json.dumps(
                {
                    "meta": {
                        "name": meta.name,
                        "api": meta.api.value,
                        "frame_count": meta.frame_count,
                        "width": meta.width,
                        "height": meta.height,
                        "index_size_bytes": meta.index_size_bytes,
                        "engine": meta.engine,
                        "aniso_level": meta.aniso_level,
                        "uses_shaders": meta.uses_shaders,
                    }
                }
            )
            + "\n"
        )
        for frame in trace.frames():
            fh.write(
                json.dumps(
                    {
                        "frame": frame.number,
                        "calls": [_encode_call(c) for c in frame.calls],
                    }
                )
                + "\n"
            )


def load_trace(path) -> Trace:
    """Load a trace written by :func:`save_trace` (fully materialized)."""
    frames: list[Frame] = []
    meta: TraceMeta | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            if "meta" in record:
                m = record["meta"]
                meta = TraceMeta(
                    name=m["name"],
                    api=GraphicsApi(m["api"]),
                    frame_count=m["frame_count"],
                    width=m["width"],
                    height=m["height"],
                    index_size_bytes=m["index_size_bytes"],
                    engine=m["engine"],
                    aniso_level=m["aniso_level"],
                    uses_shaders=m["uses_shaders"],
                )
            else:
                frames.append(
                    Frame(
                        number=record["frame"],
                        calls=[_decode_call(c) for c in record["calls"]],
                    )
                )
    if meta is None:
        raise ValueError(f"{path}: missing meta line")
    return Trace(meta, frames)
