"""Render state machine.

Tracks the pipeline state that the GPU simulator snapshots at each draw:
programs, textures, depth/stencil/blend configuration, masks, culling, and
shader uniforms.  ``SetState`` names map 1:1 to :class:`RenderState` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.commands import (
    ApiCall,
    BindProgram,
    BindTexture,
    Clear,
    Draw,
    SetState,
    SetUniform,
    UploadResource,
)

DEPTH_FUNCS = ("never", "less", "lequal", "equal", "always")
STENCIL_FUNCS = ("always", "equal", "notequal", "never")
STENCIL_OPS = ("keep", "zero", "replace", "incr_wrap", "decr_wrap")
BLEND_MODES = ("replace", "add", "alpha", "modulate")
CULL_MODES = ("none", "back", "front")


@dataclass(frozen=True)
class StencilSide:
    """Stencil operations for one face orientation (two-sided stencil)."""

    sfail: str = "keep"
    zfail: str = "keep"
    zpass: str = "keep"

    def __post_init__(self) -> None:
        for op in (self.sfail, self.zfail, self.zpass):
            if op not in STENCIL_OPS:
                raise ValueError(f"unknown stencil op {op!r}")


@dataclass(frozen=True)
class RenderState:
    """Complete pipeline state snapshot taken at draw time."""

    vertex_program: str | None = None
    fragment_program: str | None = None
    textures: tuple[tuple[int, str], ...] = ()
    depth_test: bool = True
    depth_func: str = "less"
    depth_write: bool = True
    stencil_test: bool = False
    stencil_func: str = "always"
    stencil_ref: int = 0
    stencil_front: StencilSide = field(default_factory=StencilSide)
    stencil_back: StencilSide = field(default_factory=StencilSide)
    stencil_write: bool = True
    blend: str = "replace"
    color_mask: bool = True
    cull: str = "back"
    hierarchical_z: bool = True

    def __post_init__(self) -> None:
        if self.depth_func not in DEPTH_FUNCS:
            raise ValueError(f"unknown depth func {self.depth_func!r}")
        if self.stencil_func not in STENCIL_FUNCS:
            raise ValueError(f"unknown stencil func {self.stencil_func!r}")
        if self.blend not in BLEND_MODES:
            raise ValueError(f"unknown blend mode {self.blend!r}")
        if self.cull not in CULL_MODES:
            raise ValueError(f"unknown cull mode {self.cull!r}")

    def texture(self, unit: int) -> str | None:
        for u, name in self.textures:
            if u == unit:
                return name
        return None

    @property
    def early_z_possible(self) -> bool:
        """True when z/stencil may run before shading (paper Section III.C):
        no alpha test (KIL) and no depth output from the shader — the KIL
        check itself is applied by the pipeline, which knows the program."""
        return True  # refined by the pipeline using program.uses_kill


class StateMachine:
    """Applies API calls to a :class:`RenderState` and collects uniforms."""

    def __init__(self) -> None:
        self.state = RenderState()
        self.uniforms: dict[str, tuple] = {}
        self._textures: dict[int, str] = {}

    def apply(self, call: ApiCall) -> None:
        """Apply a non-draw call; draws do not change state."""
        if isinstance(call, Draw):
            return
        if isinstance(call, BindProgram):
            key = f"{call.stage}_program"
            self.state = replace(self.state, **{key: call.program})
        elif isinstance(call, BindTexture):
            if call.texture is None:
                self._textures.pop(call.unit, None)
            else:
                self._textures[call.unit] = call.texture
            self.state = replace(
                self.state, textures=tuple(sorted(self._textures.items()))
            )
        elif isinstance(call, SetState):
            if not hasattr(self.state, call.name):
                raise ValueError(f"unknown render state {call.name!r}")
            value = call.value
            if call.name in ("stencil_front", "stencil_back") and isinstance(
                value, (tuple, list)
            ):
                value = StencilSide(*value)
            self.state = replace(self.state, **{call.name: value})
        elif isinstance(call, SetUniform):
            self.uniforms[call.name] = call.value
        elif isinstance(call, (UploadResource, Clear)):
            pass  # resource/clear handling is the pipeline's job
        else:
            raise TypeError(f"unknown call type {type(call).__name__}")

    def uniform_matrix(self, name: str) -> np.ndarray | None:
        value = self.uniforms.get(name)
        if value is None:
            return None
        return np.asarray(value, dtype=np.float64).reshape(4, 4)
