"""Graphics-API layer.

Models the OpenGL/Direct3D call streams the paper traced with GLInterceptor
and PIX: draw calls, state changes, resource uploads.  ``ApiTracer`` computes
exactly the API-level statistics of the paper (batches, indices, state calls,
primitive mix, shader instruction counts).
"""

from repro.api.commands import (
    GraphicsApi,
    Draw,
    SetState,
    SetUniform,
    BindProgram,
    BindTexture,
    UploadResource,
    Clear,
    ApiCall,
)
from repro.api.state import RenderState, StateMachine
from repro.api.trace import Frame, Trace, TraceMeta, save_trace, load_trace
from repro.api.tracer import ApiTracer
from repro.api.stats import FrameApiStats, WorkloadApiStats

__all__ = [
    "GraphicsApi",
    "Draw",
    "SetState",
    "SetUniform",
    "BindProgram",
    "BindTexture",
    "UploadResource",
    "Clear",
    "ApiCall",
    "RenderState",
    "StateMachine",
    "Frame",
    "Trace",
    "TraceMeta",
    "save_trace",
    "load_trace",
    "ApiTracer",
    "FrameApiStats",
    "WorkloadApiStats",
]
