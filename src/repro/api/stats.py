"""API-level statistics containers (the GLInterceptor metrics)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.primitives import PrimitiveType


@dataclass
class FrameApiStats:
    """Per-frame API statistics."""

    frame: int
    batches: int = 0
    indices: int = 0
    index_bytes: int = 0
    state_calls: int = 0
    upload_bytes: int = 0
    primitives: dict[PrimitiveType, int] = field(default_factory=dict)
    # Vertex shading work: sum over draws of (indices * program length).
    vertex_instr_weighted: int = 0
    vertex_weight: int = 0
    # Fragment program sizes, weighted per batch that binds a program.
    fragment_instr_weighted: int = 0
    fragment_tex_weighted: int = 0
    fragment_batches: int = 0

    @property
    def primitive_total(self) -> int:
        return sum(self.primitives.values())

    @property
    def avg_vertex_instructions(self) -> float:
        if self.vertex_weight == 0:
            return 0.0
        return self.vertex_instr_weighted / self.vertex_weight

    @property
    def avg_fragment_instructions(self) -> float:
        if self.fragment_batches == 0:
            return 0.0
        return self.fragment_instr_weighted / self.fragment_batches

    @property
    def avg_texture_instructions(self) -> float:
        if self.fragment_batches == 0:
            return 0.0
        return self.fragment_tex_weighted / self.fragment_batches


@dataclass
class WorkloadApiStats:
    """Whole-timedemo aggregation of :class:`FrameApiStats`.

    Exposes every Table III/IV/V/XII metric and the per-frame series behind
    Figures 1, 2, 3 and 8.
    """

    name: str
    index_size_bytes: int
    frames: list[FrameApiStats] = field(default_factory=list)

    def add(self, frame_stats: FrameApiStats) -> None:
        self.frames.append(frame_stats)

    # -- totals ---------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def total_batches(self) -> int:
        return sum(f.batches for f in self.frames)

    @property
    def total_indices(self) -> int:
        return sum(f.indices for f in self.frames)

    # -- Table III ------------------------------------------------------
    @property
    def avg_indices_per_batch(self) -> float:
        batches = self.total_batches
        return self.total_indices / batches if batches else 0.0

    @property
    def avg_indices_per_frame(self) -> float:
        return self.total_indices / self.frame_count if self.frames else 0.0

    def index_bandwidth_bytes_per_s(self, fps: float = 100.0) -> float:
        """CPU->GPU index traffic at a target frame rate (Table III)."""
        return self.avg_indices_per_frame * self.index_size_bytes * fps

    # -- Fig. 3 ---------------------------------------------------------
    @property
    def avg_state_calls_per_frame(self) -> float:
        if not self.frames:
            return 0.0
        return sum(f.state_calls for f in self.frames) / self.frame_count

    # -- Table V --------------------------------------------------------
    @property
    def primitive_share(self) -> dict[PrimitiveType, float]:
        """Share of assembled primitives by topology."""
        totals: dict[PrimitiveType, int] = {}
        for f in self.frames:
            for prim, count in f.primitives.items():
                totals[prim] = totals.get(prim, 0) + count
        grand = sum(totals.values())
        if grand == 0:
            return {}
        return {prim: count / grand for prim, count in totals.items()}

    @property
    def avg_primitives_per_frame(self) -> float:
        if not self.frames:
            return 0.0
        return sum(f.primitive_total for f in self.frames) / self.frame_count

    # -- Table IV -------------------------------------------------------
    @property
    def avg_vertex_instructions(self) -> float:
        weight = sum(f.vertex_weight for f in self.frames)
        if weight == 0:
            return 0.0
        return sum(f.vertex_instr_weighted for f in self.frames) / weight

    # -- Table XII ------------------------------------------------------
    @property
    def avg_fragment_instructions(self) -> float:
        batches = sum(f.fragment_batches for f in self.frames)
        if batches == 0:
            return 0.0
        return sum(f.fragment_instr_weighted for f in self.frames) / batches

    @property
    def avg_texture_instructions(self) -> float:
        batches = sum(f.fragment_batches for f in self.frames)
        if batches == 0:
            return 0.0
        return sum(f.fragment_tex_weighted for f in self.frames) / batches

    @property
    def alu_to_texture_ratio(self) -> float:
        tex = self.avg_texture_instructions
        if tex == 0.0:
            return float("inf")
        return (self.avg_fragment_instructions - tex) / tex

    # -- per-frame series (Figures 1, 2, 3, 8) ---------------------------
    def series(self, metric: str, limit: int | None = 2000) -> list[float]:
        """Per-frame series; the paper plots the first 2000 frames."""
        frames = self.frames[:limit] if limit else self.frames
        getters = {
            "batches": lambda f: float(f.batches),
            "index_mb": lambda f: f.index_bytes / (1024.0 * 1024.0),
            "state_calls": lambda f: float(f.state_calls),
            "fragment_instructions": lambda f: f.avg_fragment_instructions,
            "texture_instructions": lambda f: f.avg_texture_instructions,
            "vertex_instructions": lambda f: f.avg_vertex_instructions,
            "indices": lambda f: float(f.indices),
            "primitives": lambda f: float(f.primitive_total),
        }
        if metric not in getters:
            raise KeyError(f"unknown metric {metric!r}")
        return [getters[metric](f) for f in frames]
