"""GLInterceptor-style API statistics collector.

Consumes a :class:`~repro.api.trace.Trace` and produces the paper's API-level
statistics.  Needs the workload's shader program registry to resolve program
names into instruction counts (Tables IV and XII).
"""

from __future__ import annotations

from typing import Iterable

from repro.api.commands import Draw, UploadResource, is_state_call
from repro.api.state import StateMachine
from repro.api.stats import FrameApiStats, WorkloadApiStats
from repro.api.trace import Frame, Trace
from repro.geometry.primitives import primitive_count
from repro.shader.program import ShaderProgram


class ApiTracer:
    """Streams over trace frames and accumulates API statistics."""

    def __init__(self, programs: dict[str, ShaderProgram] | None = None):
        self._programs = programs or {}

    def trace_stats(self, trace: Trace, max_frames: int | None = None) -> WorkloadApiStats:
        """Collect statistics for a whole trace (optionally truncated)."""
        stats = WorkloadApiStats(
            name=trace.meta.name,
            index_size_bytes=trace.meta.index_size_bytes,
        )
        for frame in trace.frames():
            if max_frames is not None and len(stats.frames) >= max_frames:
                break
            stats.add(self.frame_stats(frame, trace.meta.index_size_bytes))
        return stats

    def frame_stats(self, frame: Frame, index_size_bytes: int) -> FrameApiStats:
        """Collect statistics for one frame's call stream."""
        machine = StateMachine()
        out = FrameApiStats(frame=frame.number)
        for call in frame.calls:
            if isinstance(call, Draw):
                self._record_draw(out, call, machine, index_size_bytes)
            else:
                out.state_calls += 1
                if isinstance(call, UploadResource):
                    out.upload_bytes += call.byte_size
                machine.apply(call)
        return out

    def _record_draw(
        self,
        out: FrameApiStats,
        call: Draw,
        machine: StateMachine,
        index_size_bytes: int,
    ) -> None:
        out.batches += 1
        out.indices += call.index_count
        out.index_bytes += call.index_count * index_size_bytes
        prims = primitive_count(call.index_count, call.primitive)
        out.primitives[call.primitive] = out.primitives.get(call.primitive, 0) + prims

        state = machine.state
        vp = self._programs.get(state.vertex_program or "")
        if vp is not None:
            out.vertex_instr_weighted += call.index_count * vp.instruction_count
            out.vertex_weight += call.index_count
        fp = self._programs.get(state.fragment_program or "")
        if fp is not None:
            out.fragment_batches += 1
            out.fragment_instr_weighted += fp.instruction_count
            out.fragment_tex_weighted += fp.texture_instruction_count

    def multi_trace_stats(
        self, traces: Iterable[Trace]
    ) -> dict[str, WorkloadApiStats]:
        """Convenience: stats for several traces keyed by workload name."""
        return {t.meta.name: self.trace_stats(t) for t in traces}
