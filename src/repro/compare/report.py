"""Rendering: self-contained HTML reports, ASCII fallback, JSON dumps.

The HTML report is a single file with no external references — inline CSS,
inline SVG sparklines — so it can be uploaded as a CI artifact and opened
anywhere.  The ASCII form renders the same delta tables through
:func:`repro.util.tables.format_table` (plus unicode-block sparklines for
the history view) for terminals and CI job summaries.
"""

from __future__ import annotations

import html
import json

from repro.compare.diff import DeltaRow, RunDiff
from repro.compare.meta import machine_fingerprint

#: History keys worth a sparkline, per bench kind, in display order.
HISTORY_KEYS = {
    "pipeline": (
        "per_triangle.fragments_per_s",
        "quadstream.fragments_per_s",
        "fused.fragments_per_s",
        "speedup.fragments_per_s",
        "speedup.fused_fragments_per_s",
        "incremental.speedup",
        "observer.overhead_pct",
        "farm.serial.seconds",
    ),
    "serve": (
        "waves.cold.throughput_rps",
        "waves.warm.throughput_rps",
        "waves.cold.latency_s.p50",
        "waves.warm.latency_s.p99",
        "cache.hit_rate",
        "errors",
    ),
}

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def history_series(
    entries: list[dict], keys: tuple[str, ...] | list[str] | None = None
) -> list[tuple[str, list[float | None]]]:
    """Per-key value trajectories over history entries, oldest first.

    ``keys=None`` selects the curated :data:`HISTORY_KEYS` for whatever
    bench kinds appear; an entry missing a key contributes ``None`` (a gap
    in the sparkline, not a zero).
    """
    if keys is None:
        kinds = []
        for entry in entries:
            kind = entry.get("bench")
            if kind not in kinds:
                kinds.append(kind)
        keys = [
            key
            for kind in kinds
            for key in HISTORY_KEYS.get(kind, ())
        ]
    series: list[tuple[str, list[float | None]]] = []
    for key in keys:
        values = [
            value if isinstance(value, (int, float)) else None
            for value in (
                entry.get("metrics", {}).get(key) for entry in entries
            )
        ]
        if sum(v is not None for v in values) >= 1:
            series.append((key, values))
    return series


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _row_cells(row: DeltaRow) -> list[str]:
    rel = f"{row.rel_pct:+.1f}%" if row.rel_pct is not None else "-"
    status = row.status + (" (advisory)" if row.advisory else "")
    return [row.name, _fmt(row.a), _fmt(row.b), rel, row.klass, status]


# -- ASCII -----------------------------------------------------------------
def ascii_sparkline(values: list[float | None], width: int = 32) -> str:
    """Unicode block sparkline; gaps render as spaces."""
    if len(values) > width:
        values = values[-width:]
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_BLOCKS[3])
        else:
            index = int((value - lo) / span * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[index])
    return "".join(chars)


def _diff_header_lines(diff: RunDiff) -> list[str]:
    lines = [f"A: {diff.label_a}", f"B: {diff.label_b}"]
    for side, meta in (("A", diff.meta_a), ("B", diff.meta_b)):
        if meta:
            rev = str(meta.get("git_rev", "?"))[:12]
            lines.append(
                f"   {side}: rev {rev} @ {meta.get('timestamp_utc', '?')}, "
                f"python {meta.get('python', '?')}, "
                f"{meta.get('cpu_count', '?')} cpu(s), "
                f"native {'off' if meta.get('no_native') else 'on'}"
            )
    if not diff.fingerprint_match:
        lines.append(
            "note: machine fingerprints differ or are unknown — "
            "timing deltas are ADVISORY, not gated"
        )
    counts = diff.counts()
    lines.append(
        f"{counts['compared']} values compared: "
        f"{counts['non_timing']} non-timing delta(s), "
        f"{counts['regressions']} timing regression(s) beyond "
        f"{diff.band_pct:g}%, {counts['rows']} row(s) total"
    )
    if diff.skipped:
        lines.append(
            "sections without both sides (skipped): "
            + ", ".join(diff.skipped)
        )
    return lines


def render_ascii(diff: RunDiff, max_rows: int = 40) -> str:
    """Terminal/CI-summary rendering of a diff."""
    from repro.util.tables import format_table

    out = _diff_header_lines(diff)
    if diff.empty:
        out.append("no differences")
        return "\n".join(out)
    for section in ("identity", "metrics", "stages", "cells"):
        rows = diff.section_rows(section)
        if not rows:
            continue
        shown = rows[:max_rows]
        out.append("")
        out.append(
            format_table(
                ["name", "A", "B", "rel", "class", "status"],
                [_row_cells(row) for row in shown],
                title=f"{section}: {len(rows)} delta(s)",
            )
        )
        if len(rows) > len(shown):
            out.append(f"  ... {len(rows) - len(shown)} more row(s)")
    return "\n".join(out)


def render_history_ascii(
    entries: list[dict], keys: list[str] | None = None
) -> str:
    """Sparkline trajectory of the bench history, one line per metric."""
    if not entries:
        return "no bench history entries"
    series = history_series(entries, keys)
    width = max((len(key) for key, _ in series), default=10)
    out = [
        f"bench history: {len(entries)} run(s), "
        f"{entries[0].get('meta', {}).get('timestamp_utc', '?')} -> "
        f"{entries[-1].get('meta', {}).get('timestamp_utc', '?')}"
    ]
    for key, values in series:
        present = [v for v in values if v is not None]
        spark = ascii_sparkline(values)
        out.append(
            f"  {key:<{width}} {spark} "
            f"last {_fmt(present[-1])} "
            f"(min {_fmt(min(present))}, max {_fmt(max(present))})"
        )
    return "\n".join(out)


# -- JSON ------------------------------------------------------------------
def render_json(diff: RunDiff) -> str:
    return json.dumps(diff.as_dict(), indent=2, sort_keys=True) + "\n"


# -- HTML ------------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; width: 100%; margin: 0.6em 0; }
th, td { text-align: left; padding: 0.25em 0.7em; border-bottom:
         1px solid #e0e0ea; font-variant-numeric: tabular-nums; }
th { background: #f4f4fa; }
code { background: #f4f4fa; padding: 0 0.25em; }
.meta { color: #555; font-size: 0.92em; }
.advisory { background: #fff8e6; border: 1px solid #e8d9a0;
            padding: 0.5em 0.8em; border-radius: 4px; }
.ok { color: #1f7a33; } .bad { color: #b3261e; font-weight: 600; }
.warn { color: #9a6700; } .dim { color: #888; }
.spark { display: flex; gap: 1.5em; flex-wrap: wrap; }
.spark figure { margin: 0; }
.spark figcaption { font-size: 0.85em; color: #555; }
"""

_STATUS_CLASS = {
    "regression": "bad",
    "changed": "bad",
    "added": "warn",
    "removed": "warn",
    "shift": "warn",
    "improvement": "ok",
    "noise": "dim",
}


def sparkline_svg(
    values: list[float | None], width: int = 240, height: int = 44
) -> str:
    """Inline SVG polyline of one metric trajectory (gaps break the line)."""
    present = [v for v in values if v is not None]
    if not present:
        return "<svg></svg>"
    lo, hi = min(present), max(present)
    span = (hi - lo) or 1.0
    pad = 4
    step = (width - 2 * pad) / max(1, len(values) - 1)

    def point(i: int, v: float) -> str:
        x = pad + i * step
        y = height - pad - (v - lo) / span * (height - 2 * pad)
        return f"{x:.1f},{y:.1f}"

    segments: list[list[str]] = [[]]
    for i, value in enumerate(values):
        if value is None:
            if segments[-1]:
                segments.append([])
        else:
            segments[-1].append(point(i, value))
    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} '
        f'{height}" xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    for seg in segments:
        if len(seg) > 1:
            parts.append(
                f'<polyline points="{" ".join(seg)}" fill="none" '
                'stroke="#4355b9" stroke-width="1.6"/>'
            )
        elif len(seg) == 1:
            x, y = seg[0].split(",")
            parts.append(
                f'<circle cx="{x}" cy="{y}" r="2" fill="#4355b9"/>'
            )
    last = [i for i, v in enumerate(values) if v is not None][-1]
    parts.append(
        f'<circle cx="{point(last, values[last]).split(",")[0]}" '
        f'cy="{point(last, values[last]).split(",")[1]}" r="2.6" '
        'fill="#b3261e"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _html_meta_table(diff: RunDiff) -> str:
    fields = ("git_rev", "timestamp_utc", "python", "cpu_count", "no_native")
    rows = []
    for name in fields:
        a = diff.meta_a.get(name)
        b = diff.meta_b.get(name)
        if a is None and b is None:
            continue
        rows.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td><code>{html.escape(_fmt(a))}</code></td>"
            f"<td><code>{html.escape(_fmt(b))}</code></td></tr>"
        )
    if not rows:
        return ""
    return (
        "<table><tr><th>meta</th><th>A</th><th>B</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _html_section_table(section: str, rows: list[DeltaRow]) -> str:
    body = []
    for row in rows:
        status = row.status + (" (advisory)" if row.advisory else "")
        cls = _STATUS_CLASS.get(row.status, "")
        if row.advisory and row.status in ("regression", "changed"):
            cls = "warn"
        rel = f"{row.rel_pct:+.1f}%" if row.rel_pct is not None else "&ndash;"
        body.append(
            f"<tr><td><code>{html.escape(row.name)}</code></td>"
            f"<td>{html.escape(_fmt(row.a))}</td>"
            f"<td>{html.escape(_fmt(row.b))}</td>"
            f"<td>{rel}</td><td>{html.escape(row.klass)}</td>"
            f'<td class="{cls}">{html.escape(status)}</td></tr>'
        )
    return (
        f"<h2>{html.escape(section)} &mdash; {len(rows)} delta(s)</h2>"
        "<table><tr><th>name</th><th>A</th><th>B</th><th>rel</th>"
        "<th>class</th><th>status</th></tr>" + "".join(body) + "</table>"
    )


def _html_history(entries: list[dict], keys: list[str] | None = None) -> str:
    if not entries:
        return ""
    figures = []
    for key, values in history_series(entries, keys):
        present = [v for v in values if v is not None]
        figures.append(
            "<figure>"
            + sparkline_svg(values)
            + f"<figcaption><code>{html.escape(key)}</code><br>"
            f"last {html.escape(_fmt(present[-1]))} &middot; "
            f"min {html.escape(_fmt(min(present)))} &middot; "
            f"max {html.escape(_fmt(max(present)))}"
            "</figcaption></figure>"
        )
    return (
        f"<h2>bench history &mdash; {len(entries)} run(s)</h2>"
        '<div class="spark">' + "".join(figures) + "</div>"
    )


def render_html(
    diff: RunDiff,
    history: list[dict] | None = None,
    history_keys: list[str] | None = None,
) -> str:
    """One self-contained HTML document: header, deltas, sparklines."""
    counts = diff.counts()
    verdict_cls = (
        "bad"
        if counts["non_timing"] or counts["regressions"]
        else "ok"
    )
    verdict = (
        f"{counts['non_timing']} non-timing delta(s), "
        f"{counts['regressions']} timing regression(s) beyond "
        f"{diff.band_pct:g}%"
        if not diff.empty
        else "no differences"
    )
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro compare</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro compare &mdash; cross-run regression report</h1>",
        f'<p class="meta">A: <code>{html.escape(diff.label_a)}</code><br>'
        f'B: <code>{html.escape(diff.label_b)}</code></p>',
        _html_meta_table(diff),
        f'<p class="{verdict_cls}">{html.escape(verdict)} '
        f"({counts['compared']} values compared)</p>",
    ]
    if not diff.fingerprint_match:
        fp_a = machine_fingerprint(diff.meta_a) or "unknown"
        fp_b = machine_fingerprint(diff.meta_b) or "unknown"
        parts.append(
            '<p class="advisory">Machine fingerprints differ or are '
            "unknown &mdash; timing deltas below are advisory and do not "
            f"gate.<br><code>A: {html.escape(fp_a)}</code><br>"
            f"<code>B: {html.escape(fp_b)}</code></p>"
        )
    if diff.skipped:
        parts.append(
            '<p class="meta">sections without both sides (skipped): '
            + html.escape(", ".join(diff.skipped))
            + "</p>"
        )
    for section in ("identity", "metrics", "stages", "cells"):
        rows = diff.section_rows(section)
        if rows:
            parts.append(_html_section_table(section, rows))
    if history:
        parts.append(_html_history(history, history_keys))
    parts.append("</body></html>")
    return "".join(parts) + "\n"


def render_history_html(
    entries: list[dict], keys: list[str] | None = None
) -> str:
    """History-only HTML report (``repro compare --history``)."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro bench history</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro bench history</h1>",
        _html_history(entries, keys) or "<p>no history entries</p>",
        "</body></html>",
    ]
    return "".join(parts) + "\n"
