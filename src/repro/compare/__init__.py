"""repro.compare — cross-run regression explorer.

Loads *runs* from any of five shapes (live probe, git revision,
``BENCH_*.json`` document, bench-history line, span sidecar export) into a
normalized lazily-computed :class:`~repro.compare.runset.RunResults`,
diffs two of them with tolerance classes (bit-identity / banded timing /
informational), and renders the result as ASCII, self-contained HTML, or
JSON.  The same diff feeds the CI ``compare-gate`` via
:func:`~repro.compare.diff.gate`.

Typical use::

    from repro import compare

    a = compare.load_run("HEAD~1")
    b = compare.load_run("live")
    diff = compare.diff_runs(a, b)
    print(compare.render_ascii(diff))

or from the CLI: ``repro compare HEAD~1 HEAD --format html --out report.html``.
"""

from __future__ import annotations

from repro.compare.diff import (
    DEFAULT_BAND_PCT,
    DeltaRow,
    RULES,
    RunDiff,
    classify,
    diff_runs,
    direction,
    gate,
    parse_fail_on,
)
from repro.compare.meta import (
    FINGERPRINT_FIELDS,
    HISTORY_PATH,
    append_history,
    flatten,
    git_rev,
    history_entry,
    load_history,
    machine_fingerprint,
    run_meta,
)
from repro.compare.report import (
    HISTORY_KEYS,
    ascii_sparkline,
    history_series,
    render_ascii,
    render_history_ascii,
    render_history_html,
    render_html,
    render_json,
    sparkline_svg,
)
from repro.compare.runset import (
    LoadOptions,
    ProbeSpec,
    RunResults,
    cells_from_tables,
    from_bench,
    from_history,
    from_live,
    from_rev,
    from_spans,
    load_run,
    resolve_rev,
)

__all__ = [
    "DEFAULT_BAND_PCT",
    "DeltaRow",
    "FINGERPRINT_FIELDS",
    "HISTORY_KEYS",
    "HISTORY_PATH",
    "LoadOptions",
    "ProbeSpec",
    "RULES",
    "RunDiff",
    "RunResults",
    "append_history",
    "ascii_sparkline",
    "cells_from_tables",
    "classify",
    "diff_runs",
    "direction",
    "flatten",
    "from_bench",
    "from_history",
    "from_live",
    "from_rev",
    "from_spans",
    "gate",
    "git_rev",
    "history_entry",
    "history_series",
    "load_history",
    "load_run",
    "machine_fingerprint",
    "parse_fail_on",
    "render_ascii",
    "render_history_ascii",
    "render_history_html",
    "render_html",
    "render_json",
    "resolve_rev",
    "run_meta",
    "sparkline_svg",
]
