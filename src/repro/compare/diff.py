"""Order-stable structural diff of two runs, with tolerance classes.

Every compared value belongs to one of three **tolerance classes**:

* ``exact`` — bit-identity fields: quad fates, framebuffer/image digests,
  event counters, cache hit/miss/access triples, table cells.  Any delta
  is a real behavioural difference — these are what the CI gate fails on.
* ``timing`` — wall-clock-derived fields: seconds, rates, speedups,
  latency percentiles, span self-times.  Deltas are judged against a
  percentage band, directionally (a throughput drop is a *regression*, a
  latency drop an *improvement*), and only when the two runs carry the
  same :func:`~repro.compare.meta.machine_fingerprint`; cross-machine
  timing deltas are downgraded to **advisory** instead of gating.
* ``info`` — execution-strategy bookkeeping (farm scheduling counters,
  gauge maxima, serve cache statistics): reported for context, never
  gated, and excluded from "non-timing deltas" — two runs of the same
  spec at different ``--jobs`` widths legitimately differ here.

Classification is by ordered name rules (:data:`RULES`) plus one semantic
rule: **gauges** merge across workers by maximum, which makes their value
depend on how work was sharded, so any metric known to be a gauge is
``info`` regardless of name.

The diff itself is order-stable: rows are emitted section by section in
sorted key order, so two invocations over the same pair of runs produce
byte-identical reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.compare.meta import machine_fingerprint
from repro.compare.runset import RunResults

#: Sections of a RunResults, in report order.
SECTIONS = ("identity", "metrics", "stages", "cells")

#: Default timing band: |relative delta| beyond this is a regression or an
#: improvement, within it is noise.
DEFAULT_BAND_PCT = 10.0

#: Ordered (class, pattern) rules; first match wins, default is ``exact``.
RULES: tuple[tuple[str, str], ...] = (
    ("timing", r"^farm\.phase\."),
    ("timing", r"\.phases\."),
    ("info", r"^observe\."),
    ("info", r"^farm\.cpu_count$"),
    ("info", r"^(cache|server_stats)\."),
    ("info", r"^backpressure_429s$"),
    ("timing",
     r"(^|\.)(seconds|untraced_seconds|self_seconds|wall_s|avg_job_s)$"),
    ("timing",
     r"(^|\.)(speedup|overhead_pct(_raw)?|throughput_rps|spread"
     r"|max_client_s|min_client_s|share_pct)$"),
    ("timing", r"_per_s$"),
    ("timing", r"\.latency_s\."),
)

#: Directional patterns for timing metrics: +1 higher-is-better,
#: -1 lower-is-better.  Unmatched timing names have no direction — their
#: beyond-band deltas are reported as ``shift`` and never gate.
_HIGHER_BETTER = re.compile(
    r"_per_s$|(^|\.)(speedup|throughput_rps|hit_rate)($|\.)"
)
_LOWER_BETTER = re.compile(
    r"(^|\.)(seconds|untraced_seconds|self_seconds|wall_s|avg_job_s"
    r"|overhead_pct(_raw)?|spread|max_client_s)$|\.latency_s\.|^farm\.phase\."
    r"|\.phases\."
)

_COMPILED_RULES = tuple(
    (klass, re.compile(pattern)) for klass, pattern in RULES
)


def classify(section: str, name: str, metric_type: str | None = None) -> str:
    """Tolerance class of one value: ``exact`` | ``timing`` | ``info``."""
    if section in ("identity", "cells"):
        return "exact"
    if section == "stages":
        if name.endswith(".self_seconds") or name.endswith(".share_pct"):
            return "timing"
        # Span *counts* are deterministic for the pipeline's own spans;
        # farm/job scopes depend on the unit plan (shard width), not on
        # what was computed.
        return "exact" if name.startswith("gpu.") else "info"
    for klass, pattern in _COMPILED_RULES:
        if pattern.search(name):
            return klass
    if metric_type == "gauge":
        return "info"
    return "exact"


def direction(name: str) -> int:
    """+1 if larger is better, -1 if smaller is better, 0 if unknown."""
    if _HIGHER_BETTER.search(name):
        return 1
    if _LOWER_BETTER.search(name):
        return -1
    return 0


@dataclass
class DeltaRow:
    """One differing value between the two runs."""

    section: str  # identity | metrics | stages | cells
    name: str
    a: object
    b: object
    klass: str  # exact | timing | info
    status: str  # changed | added | removed | regression | improvement
    #           # | shift | noise
    delta: float | None = None  # b - a where both are numeric
    rel_pct: float | None = None  # 100 * delta / |a| where defined
    advisory: bool = False  # timing row across differing machines

    def as_dict(self) -> dict:
        return {
            "section": self.section,
            "name": self.name,
            "a": self.a,
            "b": self.b,
            "class": self.klass,
            "status": self.status,
            "delta": self.delta,
            "rel_pct": self.rel_pct,
            "advisory": self.advisory,
        }


@dataclass
class RunDiff:
    """The structural diff of two runs plus the context to render it."""

    label_a: str
    label_b: str
    meta_a: dict
    meta_b: dict
    band_pct: float
    rows: list[DeltaRow] = field(default_factory=list)
    compared: dict = field(default_factory=dict)  # section -> values compared
    skipped: list[str] = field(default_factory=list)  # sections w/o both sides

    @property
    def fingerprint_match(self) -> bool:
        a = machine_fingerprint(self.meta_a)
        b = machine_fingerprint(self.meta_b)
        return a is not None and a == b

    @property
    def empty(self) -> bool:
        return not self.rows

    @property
    def non_timing_deltas(self) -> list[DeltaRow]:
        """Exact-class differences — the bit-identity violations."""
        return [row for row in self.rows if row.klass == "exact"]

    def regressions(self) -> list[DeltaRow]:
        """Non-advisory timing regressions (beyond the band, bad way)."""
        return [
            row
            for row in self.rows
            if row.status == "regression" and not row.advisory
        ]

    def section_rows(self, section: str) -> list[DeltaRow]:
        return [row for row in self.rows if row.section == section]

    def counts(self) -> dict:
        out = {"compared": sum(self.compared.values()), "rows": len(self.rows)}
        for key in ("exact", "timing", "info"):
            out[key] = sum(1 for row in self.rows if row.klass == key)
        out["regressions"] = len(self.regressions())
        out["non_timing"] = len(self.non_timing_deltas)
        return out

    def as_dict(self) -> dict:
        return {
            "a": {"label": self.label_a, "meta": self.meta_a},
            "b": {"label": self.label_b, "meta": self.meta_b},
            "band_pct": self.band_pct,
            "fingerprint_match": self.fingerprint_match,
            "compared": dict(self.compared),
            "skipped": list(self.skipped),
            "counts": self.counts(),
            "rows": [row.as_dict() for row in self.rows],
        }


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _timing_status(name: str, a, b, band_pct: float) -> tuple[str, float | None]:
    if not (_numeric(a) and _numeric(b)):
        return ("changed", None)
    if a == 0:
        return (("noise" if b == 0 else "shift"), None)
    rel = 100.0 * (b - a) / abs(a)
    if abs(rel) <= band_pct:
        return ("noise", rel)
    sign = direction(name)
    if sign == 0:
        return ("shift", rel)
    return (("improvement" if rel * sign > 0 else "regression"), rel)


def _flatten_stages(stages: dict) -> dict:
    flat: dict = {}
    for name in sorted(stages):
        entry = stages[name]
        for fld in sorted(entry):
            flat[f"{name}.{fld}"] = entry[fld]
    return flat


def diff_runs(
    a: RunResults,
    b: RunResults,
    band_pct: float = DEFAULT_BAND_PCT,
    include_cells: bool = False,
    include_noise: bool = True,
) -> RunDiff:
    """Structural diff of two normalized runs.

    A section present in only one run is *skipped* (recorded, not
    diffed) — a bench document has no span timeline, and comparing its
    absence against a live probe would manufacture noise.  ``cells`` is
    opt-in because reading it can trigger table regeneration.

    ``include_noise=False`` drops within-band timing rows from the output
    (the summary counts still include everything compared).
    """
    diff = RunDiff(
        label_a=a.describe(),
        label_b=b.describe(),
        meta_a=dict(a.meta),
        meta_b=dict(b.meta),
        band_pct=band_pct,
    )
    advisory_timing = not diff.fingerprint_match
    sections = [s for s in SECTIONS if include_cells or s != "cells"]
    for section in sections:
        side_a = getattr(a, section)
        side_b = getattr(b, section)
        if section == "stages":
            side_a = _flatten_stages(side_a)
            side_b = _flatten_stages(side_b)
        if not side_a or not side_b:
            if side_a or side_b:
                diff.skipped.append(section)
            continue
        types_a = a.metric_types if section == "metrics" else {}
        types_b = b.metric_types if section == "metrics" else {}
        names = sorted(set(side_a) | set(side_b))
        diff.compared[section] = len(names)
        for name in names:
            klass = classify(
                section, name, types_a.get(name) or types_b.get(name)
            )
            in_a, in_b = name in side_a, name in side_b
            va, vb = side_a.get(name), side_b.get(name)
            advisory = klass == "timing" and advisory_timing
            if not in_a or not in_b:
                status = "added" if not in_a else "removed"
                diff.rows.append(
                    DeltaRow(section, name, va, vb, klass, status,
                             advisory=advisory or klass == "info")
                )
                continue
            if va == vb:
                continue
            delta = (vb - va) if (_numeric(va) and _numeric(vb)) else None
            if klass == "timing":
                status, rel = _timing_status(name, va, vb, band_pct)
                if status == "noise" and not include_noise:
                    continue
            else:
                status = "changed"
                rel = (
                    100.0 * delta / abs(va)
                    if delta is not None and va
                    else None
                )
            diff.rows.append(
                DeltaRow(
                    section, name, va, vb, klass, status,
                    delta=delta,
                    rel_pct=round(rel, 3) if rel is not None else None,
                    advisory=advisory or klass == "info",
                )
            )
    return diff


# -- gating ----------------------------------------------------------------
def parse_fail_on(text: str) -> tuple[str, float]:
    """Parse ``--fail-on``: ``exact`` | ``regression[:N%]`` | ``any``.

    Returns ``(mode, band_pct)``; the band applies to ``regression`` and
    defaults to :data:`DEFAULT_BAND_PCT`.
    """
    mode, _, band = text.strip().partition(":")
    mode = mode.strip().lower()
    if mode not in ("exact", "regression", "any"):
        raise ValueError(
            f"unknown --fail-on mode {mode!r} "
            "(expected exact, regression[:N%], or any)"
        )
    band_pct = DEFAULT_BAND_PCT
    if band:
        try:
            band_pct = float(band.strip().rstrip("%"))
        except ValueError:
            raise ValueError(f"bad --fail-on band {band!r}") from None
        if band_pct <= 0:
            raise ValueError("--fail-on band must be positive")
    return mode, band_pct


def gate(diff: RunDiff, mode: str) -> list[str]:
    """Violation messages for one gating mode; empty means the gate passes.

    * ``exact`` — any bit-identity (exact-class) delta fails;
    * ``regression`` — exact deltas fail, and so do non-advisory timing
      regressions beyond the diff's band;
    * ``any`` — every non-noise row fails (advisory included).
    """
    violations: list[str] = []

    def _describe(row: DeltaRow) -> str:
        extra = f" ({row.rel_pct:+.1f}%)" if row.rel_pct is not None else ""
        return (
            f"{row.section}/{row.name}: {row.status} "
            f"{row.a!r} -> {row.b!r}{extra} [{row.klass}]"
        )

    for row in diff.non_timing_deltas:
        violations.append(_describe(row))
    if mode in ("regression", "any"):
        for row in diff.regressions():
            violations.append(_describe(row))
    if mode == "any":
        for row in diff.rows:
            if row.klass == "exact" or row.status in ("noise", "regression"):
                continue
            violations.append(_describe(row))
    return violations
