"""Normalize anything that "ran" into one lazily-computed ``RunResults``.

The regression explorer diffs *runs*, and a run can live in four shapes:

* a **benchmark document** — ``BENCH_pipeline.json`` / ``BENCH_serve.json``
  (or one line of ``results/bench_history.jsonl``);
* a **span sidecar set** — the ``.jsonl`` timeline ``repro observe
  --export`` writes, whose track headers carry merged metric snapshots;
* a **live probe** — a fresh farm run of one :class:`JobSpec` under the
  observer, executed in a subprocess against the current tree;
* a **git revision** — the same probe, but against ``git archive <rev>``
  unpacked into a temp directory (checkout-to-tempdir + re-run), so
  ``repro compare HEAD~1 HEAD`` measures two actual states of the code.

Each shape is loaded into a :class:`RunResults`: a label, a provenance
``meta`` block, and four measurement sections — flat ``metrics``,
per-stage span self-times (``stages``), the bit-identity fingerprint
(``identity``), and Tables I–XVII cell values (``cells``).  Sections are
**lazy** in the fuzzbench ``ExperimentResults`` style: nothing executes
until a section is first read, and expensive sources (probes, table
regeneration) run exactly once however many sections the diff walks.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

from repro.compare.meta import flatten, git_rev, run_meta

#: Default probe: two simulated frames of the paper's lead workload —
#: small enough to re-run per revision, big enough to touch every stage.
DEFAULT_PROBE_KIND = "sim"
DEFAULT_PROBE_WORKLOAD = "UT2004/Primeval"
DEFAULT_PROBE_FRAMES = 2

#: Reduced frame budgets for Tables I–XVII cell regeneration (CI-sized).
DEFAULT_CELL_BUDGETS = {"api_frames": 8, "sim_frames": 1, "geometry_frames": 3}


@dataclass
class ProbeSpec:
    """What a live/revision probe measures."""

    kind: str = DEFAULT_PROBE_KIND
    workload: str = DEFAULT_PROBE_WORKLOAD
    frames: int = DEFAULT_PROBE_FRAMES
    jobs: int = 1
    shard_frames: int | None = None

    def describe(self) -> str:
        label = f"{self.kind}:{self.workload}@{self.frames}f"
        if self.jobs != 1:
            label += f" --jobs {self.jobs}"
        return label


class RunResults:
    """One normalized run; sections are computed on first access and cached.

    ``loader`` (when given) produces the expensive sections in one shot —
    a subprocess probe, a history parse — and runs at most once.
    ``cells_loader`` is separate because table regeneration is much more
    expensive than a probe and most diffs never read it.
    """

    def __init__(
        self,
        label: str,
        source: str,
        *,
        meta: dict | None = None,
        metrics: dict | None = None,
        metric_types: dict | None = None,
        stages: dict | None = None,
        identity: dict | None = None,
        loader=None,
        cells_loader=None,
    ):
        self.label = label
        self.source = source
        self._loader = loader
        self._cells_loader = cells_loader
        self._loaded = loader is None
        self._data: dict = {}
        for name, value in (
            ("meta", meta),
            ("metrics", metrics),
            ("metric_types", metric_types),
            ("stages", stages),
            ("identity", identity),
        ):
            if value is not None:
                self._data[name] = value
        self._cells: dict | None = None

    # -- lazy section access ---------------------------------------------
    def _section(self, name: str) -> dict:
        if name not in self._data and not self._loaded:
            produced = self._loader() or {}
            self._loaded = True
            for key, value in produced.items():
                self._data.setdefault(key, value)
        return self._data.get(name) or {}

    @property
    def meta(self) -> dict:
        """Provenance block (:func:`repro.compare.meta.run_meta` shape)."""
        return self._section("meta")

    @property
    def metrics(self) -> dict:
        """Flat ``dotted.name -> scalar`` measurements."""
        return self._section("metrics")

    @property
    def metric_types(self) -> dict:
        """``name -> "counter"|"gauge"|"histogram"`` where known."""
        return self._section("metric_types")

    @property
    def stages(self) -> dict:
        """``span name -> {"count": int, "self_seconds": float}``."""
        return self._section("stages")

    @property
    def identity(self) -> dict:
        """Flat bit-identity fingerprint (quad fates, cache triples, ...)."""
        return self._section("identity")

    @property
    def cells(self) -> dict:
        """Tables I–XVII cell values: ``"Table III|row|col" -> measured``."""
        if self._cells is None:
            self._cells = (
                self._cells_loader() if self._cells_loader is not None else {}
            )
        return self._cells

    def describe(self) -> str:
        return f"{self.label} [{self.source}]"


# -- normalization helpers -------------------------------------------------
def stages_from_timeline(tracks: list[dict]) -> dict:
    """Per-name span counts + self-time seconds from an exported timeline."""
    from repro.observe.export import top_spans

    return {
        agg["name"]: {
            "count": agg["count"],
            "self_seconds": round(agg["self_ns"] / 1e9, 6),
        }
        for agg in top_spans(tracks, n=None)
    }


def metrics_from_snapshot(snapshot: dict) -> tuple[dict, dict]:
    """Flatten a :meth:`MetricsRegistry.snapshot` into scalars + types.

    Counters and gauges keep their value under their own name; histograms
    expand to ``<name>.count`` / ``<name>.total`` (bucket vectors add no
    diff signal the totals don't already carry).
    """
    metrics: dict = {}
    types: dict = {}
    for name in sorted(snapshot):
        doc = snapshot[name]
        kind = doc.get("type")
        if kind in ("counter", "gauge"):
            metrics[name] = doc.get("value")
            types[name] = kind
        elif kind == "histogram":
            metrics[f"{name}.count"] = doc.get("count")
            metrics[f"{name}.total"] = doc.get("total")
            types[f"{name}.count"] = "histogram"
            types[f"{name}.total"] = "histogram"
    return metrics, types


def _normalize_probe(doc: dict, label: str, source: str, meta: dict) -> RunResults:
    metrics, types = metrics_from_snapshot(doc.get("metrics") or {})
    return RunResults(
        label,
        source,
        meta=meta,
        metrics=metrics,
        metric_types=types,
        stages=stages_from_timeline(doc.get("timeline") or []),
        identity=flatten(doc.get("identity") or {}, exclude=()),
    )


# -- sources ---------------------------------------------------------------
def from_bench(path: str | os.PathLike, label: str | None = None) -> RunResults:
    """A ``BENCH_*.json`` document (or any JSON object of measurements)."""
    source = pathlib.Path(path)
    doc = json.loads(source.read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{source}: benchmark document must be a JSON object")
    return RunResults(
        label or source.name,
        "bench",
        meta=doc.get("meta") or {},
        metrics=flatten(doc),
    )


def from_history(
    path: str | os.PathLike,
    bench: str | None = None,
    index: int = -1,
    label: str | None = None,
) -> RunResults:
    """One entry of ``results/bench_history.jsonl`` (the last by default)."""
    from repro.compare.meta import load_history

    entries = load_history(path, bench=bench)
    if not entries:
        raise ValueError(
            f"{path}: no history entries"
            + (f" for bench {bench!r}" if bench else "")
        )
    entry = entries[index]
    position = index if index >= 0 else len(entries) + index
    return RunResults(
        label or f"{pathlib.Path(path).name}[{position}]",
        "history",
        meta=entry.get("meta") or {},
        metrics=entry.get("metrics") or {},
    )


def from_spans(path: str | os.PathLike, label: str | None = None) -> RunResults:
    """An ``observe --export`` JSONL timeline + its embedded metric merge."""
    from repro.observe.export import from_jsonl
    from repro.observe.metrics import MetricsRegistry

    source = pathlib.Path(path)
    tracks = from_jsonl(source.read_text())
    registry = MetricsRegistry()
    for track in tracks:
        snapshot = track.get("metrics") or {}
        try:
            registry.merge(snapshot)
        except (TypeError, ValueError, KeyError):
            continue
    metrics, types = metrics_from_snapshot(registry.snapshot())
    return RunResults(
        label or source.name,
        "spans",
        meta={},
        metrics=metrics,
        metric_types=types,
        stages=stages_from_timeline(tracks),
    )


def _run_driver(
    src_root: pathlib.Path,
    probe: ProbeSpec,
    meta: dict,
    label: str,
    source: str,
    env_extra: dict | None = None,
) -> RunResults:
    """Execute the probe driver against ``src_root`` in a subprocess."""
    with tempfile.TemporaryDirectory(prefix="repro-compare-probe-") as tmp:
        driver = pathlib.Path(tmp) / "probe_driver.py"
        out = pathlib.Path(tmp) / "probe.json"
        driver.write_text(_DRIVER_SOURCE)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.setdefault("REPRO_CACHE_DIR", str(pathlib.Path(tmp) / "cache"))
        env.pop("REPRO_OBSERVE", None)  # the driver arms its own tracer
        env.update(env_extra or {})
        proc = subprocess.run(
            [
                sys.executable,
                str(driver),
                probe.kind,
                probe.workload,
                str(probe.frames),
                str(probe.jobs),
                "auto" if probe.shard_frames is None else str(probe.shard_frames),
                str(out),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out.exists():
            tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-8:]
            raise RuntimeError(
                f"probe of {label} failed (exit {proc.returncode}):\n"
                + "\n".join(tail)
            )
        doc = json.loads(out.read_text())
    return _normalize_probe(doc, label, source, meta)


def current_src_root() -> pathlib.Path:
    """The ``src/`` directory the running ``repro`` package was loaded from."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent.parent


def from_live(
    probe: ProbeSpec | None = None,
    label: str | None = None,
    cell_tables: list[str] | None = None,
    cell_budgets: dict | None = None,
) -> RunResults:
    """A fresh probe of the *current* tree (run lazily, in a subprocess)."""
    probe = probe or ProbeSpec()
    meta = run_meta()
    name = label or f"live:{probe.describe()}"

    def loader() -> dict:
        results = _run_driver(current_src_root(), probe, meta, name, "live")
        return dict(results._data)

    return RunResults(
        name,
        "live",
        meta=meta,
        loader=loader,
        cells_loader=(
            (lambda: cells_from_tables(cell_tables, cell_budgets))
            if cell_tables
            else None
        ),
    )


def from_rev(
    rev: str,
    probe: ProbeSpec | None = None,
    repo_root: str | os.PathLike = ".",
    label: str | None = None,
) -> RunResults:
    """Checkout ``rev`` to a temp dir and probe that tree via the farm.

    Requires the revision to contain the post-observe layout
    (``src/repro`` with the farm and span subsystems); older revisions
    still produce the identity section, with stages/metrics empty.
    """
    probe = probe or ProbeSpec()
    resolved = resolve_rev(rev, repo_root)
    if resolved is None:
        raise ValueError(f"{rev!r} is not a git revision")
    name = label or f"{rev}:{probe.describe()}"
    meta = run_meta()
    meta["git_rev"] = resolved

    def loader() -> dict:
        with tempfile.TemporaryDirectory(prefix="repro-compare-rev-") as tmp:
            tree = pathlib.Path(tmp) / "tree"
            tree.mkdir()
            archive = subprocess.run(
                ["git", "archive", resolved],
                cwd=str(repo_root),
                capture_output=True,
            )
            if archive.returncode != 0:
                raise RuntimeError(
                    f"git archive {rev} failed: "
                    f"{archive.stderr.decode(errors='replace').strip()}"
                )
            untar = subprocess.run(
                ["tar", "-x", "-C", str(tree)], input=archive.stdout,
                capture_output=True,
            )
            if untar.returncode != 0:
                raise RuntimeError(f"unpacking git archive {rev} failed")
            src = tree / "src"
            if not (src / "repro").is_dir():
                raise RuntimeError(f"{rev}: no src/repro package in the tree")
            results = _run_driver(src, probe, meta, name, "rev")
            return dict(results._data)

    return RunResults(name, "rev", meta=meta, loader=loader)


def resolve_rev(token: str, repo_root: str | os.PathLike = ".") -> str | None:
    """Full hash for a git revision token, or ``None`` if it isn't one."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", token + "^{commit}"],
            cwd=str(repo_root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def cells_from_tables(
    only: list[str] | None = None, budgets: dict | None = None
) -> dict:
    """Regenerate paper-table cells through the farm; measured values only.

    Keys are ``"<exhibit>|<row label>|<column>"`` so a diff pinpoints the
    exact cell (``"Table III|UT2004/Primeval|idx/batch"``).  Budgets
    default to the CI-sized reduced frame counts.
    """
    from repro.experiments import ExperimentConfig, Runner, tables

    budgets = dict(DEFAULT_CELL_BUDGETS, **(budgets or {}))
    runner = Runner(ExperimentConfig(**budgets))
    names = sorted(only) if only else sorted(tables.ALL_TABLES)
    cells: dict = {}
    for name in names:
        func = tables.ALL_TABLES.get(name)
        if func is None:
            raise ValueError(f"unknown table {name!r}")
        try:
            comparison = func(runner=runner)  # type: ignore[call-arg]
        except TypeError:
            comparison = func()
        headers = comparison.headers
        for row_no, row in enumerate(comparison.rows):
            row_label = str(row[0])
            for col_no in range(1, len(row)):
                column = headers[col_no] if col_no < len(headers) else str(col_no)
                cells[f"{comparison.exhibit}|{row_label}|{column}"] = (
                    comparison.measured(row_no, col_no)
                )
    return cells


# -- source dispatch -------------------------------------------------------
@dataclass
class LoadOptions:
    """How tokens resolve: probe shape, repo root, optional table cells."""

    probe: ProbeSpec = field(default_factory=ProbeSpec)
    repo_root: str | os.PathLike = "."
    cell_tables: list[str] | None = None
    cell_budgets: dict | None = None
    history_bench: str | None = None


def load_run(token: str, options: LoadOptions | None = None) -> RunResults:
    """Resolve one CLI token into a :class:`RunResults`.

    Order of interpretation:

    1. an existing ``.jsonl`` file — span timeline or bench history
       (sniffed from the first parseable line);
    2. an existing ``.json`` file — benchmark document;
    3. ``live`` / ``worktree`` / ``.`` — probe the current tree;
    4. ``<kind>:<workload>@<frames>`` — probe that spec on the current tree;
    5. a git revision — checkout-to-tempdir + probe.
    """
    options = options or LoadOptions()
    path = pathlib.Path(token)
    if path.is_file():
        if path.suffix == ".jsonl":
            first: dict = {}
            for line in path.read_text().splitlines():
                if line.strip():
                    try:
                        first = json.loads(line)
                    except ValueError:
                        first = {}
                    break
            if isinstance(first, dict) and first.get("type") == "track":
                return from_spans(path)
            return from_history(path, bench=options.history_bench)
        return from_bench(path)
    if token in ("live", "worktree", "."):
        return from_live(
            options.probe,
            cell_tables=options.cell_tables,
            cell_budgets=options.cell_budgets,
        )
    if ":" in token and "@" in token:
        probe = _parse_spec_token(token, options.probe)
        if probe is not None:
            return from_live(
                probe,
                cell_tables=options.cell_tables,
                cell_budgets=options.cell_budgets,
            )
    if resolve_rev(token, options.repo_root) is not None:
        return from_rev(token, options.probe, options.repo_root)
    raise ValueError(
        f"cannot resolve {token!r}: not a file, 'live', a "
        f"kind:workload@frames spec, or a git revision"
    )


def _parse_spec_token(token: str, base: ProbeSpec) -> ProbeSpec | None:
    """``sim:UT2004/Primeval@2`` → a probe; None if it doesn't parse."""
    kind, _, rest = token.partition(":")
    workload, _, frames = rest.rpartition("@")
    if kind not in ("api", "sim", "geometry") or not workload:
        return None
    try:
        budget = int(frames)
    except ValueError:
        return None
    return ProbeSpec(
        kind=kind,
        workload=workload,
        frames=budget,
        jobs=base.jobs,
        shard_frames=base.shard_frames,
    )


#: Probe driver, written to a temp file and executed against either the
#: current tree or an archived revision.  Deliberately self-contained and
#: defensive: it must run under *older* code states too, so it only uses
#: long-stable APIs (farm + workloads) and degrades — empty metrics and
#: timeline — when the observe subsystem predates the revision.
_DRIVER_SOURCE = '''\
import hashlib
import json
import sys
import tempfile


def _identity(result):
    if hasattr(result, "frame_stats"):  # SimulationResult
        digest = hashlib.sha256()
        for image in getattr(result, "images", []) or []:
            digest.update(image.tobytes())
        return {
            "frame_stats": [fs.as_dict() for fs in result.frame_stats],
            "caches": {
                name: {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "accesses": getattr(cache, "accesses", None),
                }
                for name, cache in sorted(result.caches.items())
            },
            "images": digest.hexdigest(),
        }
    summary = {}
    for attr in (
        "frame_count", "total_batches", "avg_indices_per_batch",
        "avg_indices_per_frame", "avg_state_calls_per_frame",
        "avg_vertex_instructions", "avg_fragment_instructions",
        "avg_texture_instructions", "alu_to_texture_ratio",
        "avg_primitives_per_frame", "index_size_bytes",
    ):
        if hasattr(result, attr):
            summary[attr] = getattr(result, attr)
    return {"api": summary}


def main():
    kind, workload, frames, jobs, shard, out = sys.argv[1:7]
    frames, jobs = int(frames), int(jobs)
    shard_frames = None if shard == "auto" else int(shard)

    tracer = None
    observe = None
    try:
        from repro import observe as observe_mod

        observe = observe_mod
        observe.metrics.reset()
        tracer = observe.enable(track="main")
    except Exception:
        observe = None

    from repro.farm import ArtifactStore, Farm, JobSpec

    with tempfile.TemporaryDirectory(prefix="repro-probe-store-") as tmp:
        kwargs = dict(store=ArtifactStore(tmp), jobs=jobs, use_cache=True)
        try:
            farm = Farm(shard_frames=shard_frames, **kwargs)
        except TypeError:  # revision predates frame sharding
            farm = Farm(**kwargs)
        try:
            result = farm.run_one(JobSpec(kind, workload, frames))
        finally:
            try:
                farm.close()
            except Exception:
                pass
        doc = {
            "probe": {"kind": kind, "workload": workload, "frames": frames,
                      "jobs": jobs},
            "identity": _identity(result),
            "metrics": {},
            "timeline": [],
        }
        if observe is not None:
            doc["metrics"] = observe.registry().snapshot()
            doc["timeline"] = tracer.timeline()
            observe.disable()
    with open(out, "w") as handle:
        json.dump(doc, handle)


if __name__ == "__main__":
    main()
'''
