"""Run provenance: the ``meta`` block, machine fingerprints, bench history.

Every benchmark document (``BENCH_pipeline.json``, ``BENCH_serve.json``)
is stamped with a :func:`run_meta` block — git revision, UTC timestamp,
python version, cpu count, and whether the native kernels were disabled —
and appended as one line to ``results/bench_history.jsonl`` so the perf
trajectory accumulates instead of being overwritten in place.

The :func:`machine_fingerprint` of a meta block is the part of provenance
that makes *timing* comparable: two runs whose fingerprints differ (other
interpreter, other core count, kernels on vs off) can still be diffed
bit-exactly on their deterministic fields, but their wall-clock deltas are
advisory — :mod:`repro.compare.diff` downgrades them instead of gating.

Nothing in this module imports the rest of the package, so the benchmark
writers (:mod:`repro.experiments.bench`, :mod:`repro.serve.loadtest`) can
stamp documents without pulling the analysis layer in.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys

#: Default history file the bench writers append to.
HISTORY_PATH = pathlib.Path("results") / "bench_history.jsonl"

#: Meta fields that identify *where* a run executed (not when): timing
#: comparisons across differing fingerprints are advisory, never gating.
FINGERPRINT_FIELDS = (
    "platform", "machine", "python", "cpu_count", "no_native"
)


def git_rev(cwd: str | os.PathLike | None = None) -> str:
    """Current git revision, or ``"unknown"`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_meta(cwd: str | os.PathLike | None = None) -> dict:
    """The provenance block stamped into every benchmark document."""
    return {
        "git_rev": git_rev(cwd),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "no_native": os.environ.get("REPRO_NO_NATIVE", "") not in ("", "0"),
    }


def machine_fingerprint(meta: dict | None) -> str | None:
    """Stable string identifying the measuring machine, or ``None``.

    ``None`` (meta absent or incomplete) means "unknown machine" and is
    treated as a fingerprint mismatch: without provenance, timing deltas
    cannot be trusted to be like-for-like.
    """
    if not meta:
        return None
    parts = []
    for field in FINGERPRINT_FIELDS:
        if field not in meta:
            return None
        parts.append(f"{field}={meta[field]}")
    return " ".join(parts)


def flatten(doc, prefix: str = "", exclude: tuple = ("meta",)) -> dict:
    """Dotted-key view of a JSON document's scalar leaves.

    Dicts recurse with ``.``-joined keys, lists with ``[i]`` suffixes;
    scalar leaves (numbers, strings, booleans, null) are kept as-is.  Top
    level ``exclude`` keys (the provenance block by default) are skipped —
    they are compared as provenance, not as measurements.
    """
    flat: dict = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            if not prefix and key in exclude:
                continue
            sub = prefix + ("." if prefix else "") + str(key)
            flat.update(flatten(doc[key], sub, exclude))
    elif isinstance(doc, (list, tuple)):
        for i, value in enumerate(doc):
            flat.update(flatten(value, f"{prefix}[{i}]", exclude))
    else:
        flat[prefix] = doc
    return flat


def history_entry(bench: str, doc: dict) -> dict:
    """One history line: bench kind, provenance, flattened measurements."""
    return {
        "bench": bench,
        "meta": doc.get("meta") or {},
        "metrics": flatten(doc),
    }


def append_history(
    bench: str,
    doc: dict,
    path: str | os.PathLike | None = None,
) -> pathlib.Path:
    """Append one run to the bench-history trajectory (JSONL, one per run)."""
    out = pathlib.Path(path) if path is not None else HISTORY_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(history_entry(bench, doc), sort_keys=True)
    with open(out, "a") as handle:
        handle.write(line + "\n")
    return out


def load_history(
    path: str | os.PathLike | None = None, bench: str | None = None
) -> list[dict]:
    """Parse a history file; optionally filter to one bench kind.

    Unparseable lines (a torn tail from a killed append) are skipped, not
    fatal — history is an append-only log, and the valid prefix is always
    usable.
    """
    source = pathlib.Path(path) if path is not None else HISTORY_PATH
    entries: list[dict] = []
    try:
        text = source.read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if not isinstance(doc, dict) or "metrics" not in doc:
            continue
        if bench is not None and doc.get("bench") != bench:
            continue
        entries.append(doc)
    return entries
