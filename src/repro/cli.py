"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``list``          list the registered workloads (Table I metadata)
``characterize``  API-level statistics for one workload
``simulate``      microarchitectural simulation of one workload
``trace``         dump a workload's API trace to JSONL
``replay``        replay a JSONL trace through the simulator
``tables``        regenerate paper tables (all or selected) into a directory
``figures``       regenerate paper figures (text + CSV) into a directory
``scorecard``     regenerate EXPERIMENTS.md (measured vs paper)
``bench``         pipeline throughput benchmark (writes BENCH_pipeline.json)
``observe``       traced run: export a Chrome-trace/Perfetto timeline,
                  rank spans and draw calls, dump the metrics registry
``farm``          inspect (``status``) or empty (``clear``) the artifact cache
``chaos``         injected-fault recovery suite (crash/hang/corruption/...)
``compare``       cross-run regression explorer: diff two runs (bench
                  documents, history lines, span exports, live probes, git
                  revisions) with tolerance classes, render ASCII/HTML/JSON,
                  optionally gate (``--fail-on``); ``--history`` renders the
                  bench-history trajectory

The measurement-heavy commands (``tables``, ``figures``, ``scorecard``,
``simulate``) run on the execution farm: ``--jobs N`` shards the underlying
measurement runs across worker processes (default: all cores), results are
cached content-addressed under ``.repro-cache/`` (``--cache-dir`` or
``REPRO_CACHE_DIR`` override, ``--no-cache`` to disable), and interrupted
simulations resume from their last checkpointed frame.

Every farm-backed command additionally takes the same execution-mode
flags: ``--incremental``/``--no-incremental`` (draw-level incremental
replay, default ``REPRO_INCREMENTAL``) and ``--shard-frames`` (the farm's
frame-sharding policy).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.api.trace import load_trace, save_trace
from repro.experiments import ExperimentConfig, Runner, figures, tables
from repro.gpu.stats import MemClient
from repro.util.tables import format_table
from repro.workloads import all_workloads, build_workload

#: Which measurement kinds each exhibit reads (for selective prefetching).
_TABLE_KINDS = {
    "table3": "api", "table4": "api", "table5": "api", "table12": "api",
    "table7": "geometry",
    "table8": "sim", "table9": "sim", "table10": "sim", "table11": "sim",
    "table13": "sim", "table14": "sim", "table15": "sim", "table16": "sim",
    "table17": "sim",
}
_FIGURE_KINDS = {
    "figure1": "api", "figure2": "api", "figure3": "api", "figure8": "api",
    "figure5": "geometry", "figure6": "geometry",
    "figure7": "sim",
}


def _cmd_list(args) -> int:
    rows = [
        [
            spec.name,
            spec.api.value,
            spec.engine,
            spec.frames,
            f"{spec.aniso_level}X" if spec.aniso_level else "trilinear",
            "shaders" if spec.uses_shaders else "fixed function",
        ]
        for spec in all_workloads()
    ]
    print(
        format_table(
            ["workload", "API", "engine", "frames", "filtering", "shading"],
            rows,
            title="Registered workloads (paper Table I)",
        )
    )
    return 0


def _cmd_characterize(args) -> int:
    workload = build_workload(args.workload)
    stats = workload.api_stats(frames=args.frames)
    rows = [
        ["frames analyzed", stats.frame_count],
        ["batches/frame", round(stats.total_batches / stats.frame_count)],
        ["indices/batch", round(stats.avg_indices_per_batch)],
        ["indices/frame", round(stats.avg_indices_per_frame)],
        ["index MB/s @100fps",
         round(stats.index_bandwidth_bytes_per_s(100) / 1e6, 1)],
        ["state calls/frame", round(stats.avg_state_calls_per_frame)],
        ["vertex instructions", round(stats.avg_vertex_instructions, 2)],
        ["fragment instructions", round(stats.avg_fragment_instructions, 2)],
        ["texture instructions", round(stats.avg_texture_instructions, 2)],
        ["ALU:TEX ratio", round(stats.alu_to_texture_ratio, 2)],
    ]
    print(format_table(["metric", "value"], rows, title=args.workload))
    return 0


def _cmd_simulate(args) -> int:
    from repro.farm import Farm, JobSpec

    farm = Farm(
        store=_make_store(args),
        jobs=_resolve_jobs(args),
        use_cache=not args.no_cache,
        strict=not args.keep_going,
        shard_frames=args.shard_frames,
        incremental=args.incremental,
    )
    result = farm.run_one(JobSpec("sim", args.workload, args.frames))
    stats = result.stats
    clip, cull, trav = stats.clip_cull_traverse_percent
    fates = stats.quad_fate_percent
    mem = result.memory
    rows = [
        ["frames simulated", stats.frames],
        ["resolution", f"{result.config.width}x{result.config.height}"],
        ["% clipped/culled/traversed",
         f"{clip:.0f} / {cull:.0f} / {trav:.0f}"],
        ["vertex cache hit rate", f"{stats.vertex_cache_hit_rate:.1%}"],
        ["overdraw (raster)", f"{result.overdraw('raster'):.1f}"],
        ["overdraw (blended)", f"{result.overdraw('blended'):.1f}"],
        ["quad efficiency", f"{stats.quad_efficiency_raster:.1%}"],
        ["bilinears/request", f"{stats.bilinears_per_texture_request:.2f}"],
        ["memory MB/frame", f"{mem.bytes_per_frame(stats.frames) / 1e6:.1f}"],
    ]
    rows.extend(
        [f"quad fate {fate.value}", f"{pct:.1f}%"] for fate, pct in fates.items()
    )
    rows.extend(
        [f"traffic {client.value}", f"{mem.traffic_distribution[client]:.1f}%"]
        for client in MemClient
    )
    print(format_table(["metric", "value"], rows, title=args.workload))
    if args.ppm:
        workload2 = build_workload(args.workload, sim=True)
        sim = workload2.simulator()
        sim.run_trace(workload2.trace(frames=1))
        sim.fb.to_ppm(args.ppm)
        print(f"wrote {args.ppm}")
    return 0


def _cmd_trace(args) -> int:
    workload = build_workload(args.workload, sim=args.sim_profile)
    trace = workload.trace(frames=args.frames)
    save_trace(trace, args.output)
    print(f"wrote {args.frames} frames of {args.workload} to {args.output}")
    return 0


def _cmd_replay(args) -> int:
    trace = load_trace(args.trace)
    name = trace.meta.name
    workload = build_workload(name, sim=True)
    sim = workload.simulator()
    result = sim.run_trace(trace)
    print(
        f"replayed {result.stats.frames} frames of {name}: "
        f"{result.stats.fragments_blended} fragments blended, "
        f"{result.memory.total_bytes / 1e6:.1f} MB of memory traffic"
    )
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """The uniform execution-mode flags every farm-backed command takes.

    Same names and defaults everywhere: ``--incremental`` /
    ``--no-incremental`` select draw-level incremental replay (default: the
    ``REPRO_INCREMENTAL`` environment setting, off when unset) and
    ``--shard-frames`` sets the farm's frame-sharding policy.
    """
    parser.add_argument(
        "--incremental",
        dest="incremental",
        action="store_true",
        default=None,
        help="reuse unchanged frames from the draw-level content cache "
        "(bit-identical; default: $REPRO_INCREMENTAL, off when unset)",
    )
    parser.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        help="force full re-simulation of every frame",
    )
    parser.add_argument(
        "--shard-frames",
        type=int,
        default=None,
        help="farm frame-sharding policy (default automatic, 0 off; pin to "
        "a fixed value for results comparable across --jobs widths)",
    )


def _add_farm_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for measurement runs (0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk artifact cache (and checkpointing)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="on permanent job failure, return the completed results plus "
        "a failure report instead of aborting the batch",
    )
    _add_execution_flags(parser)


def _add_measurement_flags(
    parser: argparse.ArgumentParser,
    api_frames: int,
    sim_frames: int,
    geometry_frames: int,
) -> None:
    """The unified measurement interface: ``--frames`` + farm flags.

    ``--frames`` sets every kind's budget at once; the per-kind flags
    refine individual kinds and win over ``--frames`` when both are given.
    """
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frame budget for every measurement kind "
        "(per-kind flags below override)",
    )
    parser.add_argument("--api-frames", type=int, default=None)
    parser.add_argument("--sim-frames", type=int, default=None)
    parser.add_argument("--geometry-frames", type=int, default=None)
    parser.set_defaults(
        _frame_defaults=(api_frames, sim_frames, geometry_frames)
    )
    _add_farm_flags(parser)


def _budget(args, per_kind_value: int | None, default: int) -> int:
    if per_kind_value is not None:
        return per_kind_value
    if args.frames is not None:
        return args.frames
    return default


def _resolve_jobs(args) -> int:
    jobs = getattr(args, "jobs", None)
    return jobs if jobs else (os.cpu_count() or 1)


def _make_store(args):
    from repro.farm import ArtifactStore

    return ArtifactStore(getattr(args, "cache_dir", None))


def _make_runner(args) -> Runner:
    api_default, sim_default, geometry_default = args._frame_defaults
    return Runner(
        ExperimentConfig(
            api_frames=_budget(args, args.api_frames, api_default),
            sim_frames=_budget(args, args.sim_frames, sim_default),
            geometry_frames=_budget(args, args.geometry_frames, geometry_default),
        ),
        jobs=_resolve_jobs(args),
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        strict=not args.keep_going,
        shard_frames=args.shard_frames,
        incremental=args.incremental,
    )


def _prefetch_for(runner: Runner, selected: list[str], kinds: dict) -> None:
    """Batch the selected exhibits' measurement runs through the farm."""
    needed = {kinds[name] for name in selected if name in kinds}
    if not needed:
        return
    runner.prefetch(
        api_names=None if "api" in needed else [],
        sim_names=None if "sim" in needed else [],
        geometry_names=None if "geometry" in needed else [],
    )


def _cmd_tables(args) -> int:
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = _make_runner(args)
    selected = args.only or sorted(tables.ALL_TABLES)
    for name in selected:
        if name not in tables.ALL_TABLES:
            print(f"unknown table {name!r}", file=sys.stderr)
            return 2
    _prefetch_for(runner, selected, _TABLE_KINDS)
    for name in selected:
        func = tables.ALL_TABLES[name]
        try:
            comparison = func(runner=runner)  # type: ignore[call-arg]
        except TypeError:
            comparison = func()
        text = comparison.as_text()
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print(text)
        print()
    return 0


def _cmd_figures(args) -> int:
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = _make_runner(args)
    selected = args.only or sorted(figures.ALL_FIGURES)
    for name in selected:
        if name not in figures.ALL_FIGURES:
            print(f"unknown figure {name!r}", file=sys.stderr)
            return 2
    _prefetch_for(runner, selected, _FIGURE_KINDS)
    for name in selected:
        func = figures.ALL_FIGURES[name]
        try:
            figure = func(runner=runner)  # type: ignore[call-arg]
        except TypeError:
            figure = func()
        (out_dir / f"{name}.txt").write_text(figure.as_text() + "\n")
        (out_dir / f"{name}.csv").write_text(figure.as_csv() + "\n")
        print(figure.as_text())
        print()
    return 0


def _cmd_profile(args) -> int:
    from repro.gpu.profiler import profile_workload

    workload = build_workload(args.workload, sim=True)
    profiles = profile_workload(workload, frames=args.frames)
    profile = profiles[-1]
    rows = [
        [
            d.index,
            d.mesh if len(d.mesh) < 36 else "..." + d.mesh[-33:],
            d.pass_kind,
            d.triangles_traversed,
            d.fragments_rasterized,
            d.fragments_shaded,
            round(d.memory_bytes / 1024.0, 1),
        ]
        for d in profile.heaviest(args.top, by=args.sort)
    ]
    print(
        format_table(
            ["#", "mesh", "pass", "tris", "frags", "shaded", "KB moved"],
            rows,
            title=f"Heaviest {args.top} draws of frame {profile.frame} "
            f"({args.workload}, sorted by {args.sort})",
        )
    )
    kinds = profile.by_pass_kind()
    total = sum(kinds.values()) or 1
    print()
    for kind, nbytes in sorted(kinds.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:14s} {100 * nbytes / total:5.1f}% of draw memory traffic")
    return 0


def _cmd_scorecard(args) -> int:
    from repro.experiments.scorecard import experiments_markdown

    runner = _make_runner(args)
    runner.prefetch()
    markdown = experiments_markdown(runner)
    out = pathlib.Path(args.output)
    out.write_text(markdown + "\n")
    print(f"wrote {out}")
    print(runner.telemetry.summary_line())
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.bench import (
        DEFAULT_WORKLOAD,
        bench_pipeline,
        write_bench,
    )

    doc = bench_pipeline(
        workload=args.workload or DEFAULT_WORKLOAD,
        frames=args.frames,
        farm_frames=args.farm_frames,
        jobs=tuple(args.jobs),
        include_farm=not args.skip_farm,
        repeats=args.repeats,
        incremental_frames=args.incremental_frames,
        include_incremental=args.incremental is not False,
        threads=args.threads,
    )
    out = write_bench(doc, args.out)
    speedup = doc["speedup"]["fragments_per_s"]
    fused_speedup = doc["speedup"]["fused_fragments_per_s"]
    print(
        f"wrote {out}: QuadStream {speedup:.2f}x fragments/s "
        f"({doc['quadstream']['seconds']}s vs "
        f"{doc['per_triangle']['seconds']}s per-triangle)"
    )
    print(
        f"fused: {fused_speedup:.2f}x fragments/s "
        f"({doc['fused']['seconds']}s, threads={doc['fused']['threads']}, "
        f"identical={doc['fused']['identical']})"
    )
    if "farm" in doc:
        farm = doc["farm"]
        print(
            f"farm ({len(farm['workloads'])} workloads x {farm['frames']} "
            f"frames, {farm['cpu_count']} cpu(s)): "
            f"serial {farm['serial']['seconds']}s"
        )
        for width, entry in farm["parallel"].items():
            phases = " ".join(
                f"{name} {seconds}s"
                for name, seconds in entry["phases"].items()
            )
            print(
                f"  --jobs {width}: {entry['seconds']}s, "
                f"{entry['speedup']:.2f}x [{phases}]"
            )
    observer = doc.get("observer")
    if observer:
        print(
            f"observer: {observer['seconds']}s traced "
            f"({observer['spans']} spans), "
            f"{observer['overhead_pct']:+.1f}% vs untraced"
        )
    incremental = doc.get("incremental")
    if incremental:
        print(
            f"incremental ({incremental['frames']} frames): "
            f"full {incremental['full']['seconds']}s, "
            f"cold {incremental['cold']['seconds']}s, "
            f"warm {incremental['warm']['seconds']}s "
            f"({incremental['speedup']:.2f}x, hit rate "
            f"{incremental['warm']['hit_rate']:.0%}, "
            f"identical={incremental['identical']})"
        )
    failed = False
    if (
        args.max_observer_overhead is not None
        and observer
        and observer["overhead_pct"] > args.max_observer_overhead
    ):
        print(
            f"FAIL: observer overhead {observer['overhead_pct']:+.1f}% above "
            f"allowed {args.max_observer_overhead:.1f}%",
            file=sys.stderr,
        )
        failed = True
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_fused_speedup is not None:
        if not doc["fused"]["identical"]:
            print(
                "FAIL: fused path diverged from the per-triangle reference",
                file=sys.stderr,
            )
            failed = True
        if fused_speedup < args.min_fused_speedup:
            print(
                f"FAIL: fused speedup {fused_speedup:.2f}x below required "
                f"{args.min_fused_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_farm_speedup is not None and "farm" in doc:
        widest = max(doc["farm"]["parallel"], key=int, default=None)
        farm_speedup = (
            doc["farm"]["parallel"][widest]["speedup"] if widest else 0.0
        )
        if farm_speedup < args.min_farm_speedup:
            print(
                f"FAIL: farm speedup {farm_speedup:.2f}x at --jobs {widest} "
                f"below required {args.min_farm_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_incremental_speedup is not None:
        if not incremental:
            print(
                "FAIL: --min-incremental-speedup given but the incremental "
                "block was not measured (--no-incremental?)",
                file=sys.stderr,
            )
            failed = True
        else:
            if not incremental["identical"]:
                print(
                    "FAIL: incremental replay diverged from full "
                    "re-simulation",
                    file=sys.stderr,
                )
                failed = True
            if incremental["speedup"] < args.min_incremental_speedup:
                print(
                    f"FAIL: warm incremental speedup "
                    f"{incremental['speedup']:.2f}x below required "
                    f"{args.min_incremental_speedup:.2f}x",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


def _cmd_microbench(args) -> int:
    """GPUBench-style scenario benches plus fused-kernel wall timings."""
    from repro.gpu.config import GpuConfig
    from repro.microbench import ALL_MICROBENCHES, FUSED_MICROBENCHES

    registry = {**ALL_MICROBENCHES, **FUSED_MICROBENCHES}
    names = args.only or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown microbench(es): {', '.join(unknown)}", file=sys.stderr)
        return 2
    config = GpuConfig(width=args.width, height=args.height)
    print(
        f"{'bench':<22} {'metric':<20} {'events':>10} {'ev/cycle':>9} "
        f"{'bottleneck':<12} {'seconds':>8} {'ev/s':>12}"
    )
    for name in names:
        r = registry[name](config)
        seconds = f"{r.seconds:.4f}" if r.seconds else "-"
        rate = f"{r.events_per_second:,.0f}" if r.seconds else "-"
        per_cycle = f"{r.events_per_cycle:.2f}" if r.cycles_per_frame else "-"
        print(
            f"{r.name:<22} {r.metric:<20} {r.events:>10,} {per_cycle:>9} "
            f"{r.bottleneck:<12} {seconds:>8} {rate:>12}"
        )
    return 0


def _cmd_observe(args) -> int:
    """Traced run → Chrome-trace/JSONL export, top spans, metrics dump."""
    from repro import observe
    from repro.farm import Farm, JobSpec
    from repro.farm.telemetry import FarmTelemetry
    from repro.gpu.profiler import records_from_timeline

    observe.metrics.reset()
    tracer = observe.enable(track="main")
    try:
        # The farm's phase accounting goes straight into the process-wide
        # registry, so the summary line and the metrics dump share counters.
        farm = Farm(
            store=_make_store(args),
            jobs=_resolve_jobs(args),
            use_cache=not args.no_cache,
            strict=not args.keep_going,
            shard_frames=args.shard_frames,
            incremental=args.incremental,
            telemetry=FarmTelemetry(registry=observe.registry()),
        )
        with farm:
            farm.run_one(JobSpec(args.kind, args.workload, args.frames))
        timeline = tracer.timeline(observe.registry().snapshot())
    finally:
        observe.disable()

    printed = False
    if args.export:
        out = observe.write_export(args.export, timeline, clock=args.clock)
        print(
            f"wrote {out}: {len(timeline)} track(s), "
            f"{sum(len(t['spans']) for t in timeline)} span(s), "
            f"clock={args.clock}"
            + (
                " (open at https://ui.perfetto.dev)"
                if out.suffix != ".jsonl"
                else ""
            )
        )
        printed = True
    if args.timeline:
        print(observe.ascii_timeline(timeline))
        printed = True
    if args.top_spans:
        print(observe.format_top_spans(timeline, args.top_spans))
        printed = True
    if args.top_draws:
        records = records_from_timeline(timeline)
        records.sort(key=lambda r: getattr(r, args.sort), reverse=True)
        rows = [
            [
                r.frame,
                r.index,
                r.mesh,
                r.pass_kind,
                r.triangles_traversed,
                r.fragments_shaded,
                getattr(r, args.sort),
            ]
            for r in records[: args.top_draws]
        ]
        print(
            format_table(
                ["frame", "draw", "mesh", "pass", "tris", "frags", args.sort],
                rows,
                title=f"Top {len(rows)} draws by {args.sort}",
            )
        )
        printed = True
    if args.metrics:
        print(observe.format_metrics(observe.registry()))
        printed = True
    if not printed:
        print(farm.telemetry.summary_line())
        print(observe.format_top_spans(timeline, 10))
    return 0


def _cmd_chaos(args) -> int:
    code = 0
    if args.suite in ("farm", "all"):
        from repro.farm.chaos import run_chaos

        code = max(code, run_chaos(seed=args.seed, jobs=args.jobs,
                                   only=args.only))
    if args.suite in ("serve", "all"):
        from repro.serve.chaos import run_serve_chaos

        code = max(
            code,
            run_serve_chaos(
                seed=args.seed, only=args.only, artifacts_dir=args.artifacts
            ),
        )
    return code


def _cmd_farm(args) -> int:
    store = _make_store(args)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} file(s) from {store.root}")
        return 0
    entries = store.entries()
    rows = [
        [
            m.get("kind", "?"),
            m.get("workload", "?"),
            m.get("frames", "?"),
            m["key"][:12],
            f"{m['bytes'] / 1024:.0f}",
            f"{m['wall_s']:.1f}" if m.get("wall_s") is not None else "-",
        ]
        for m in entries
    ]
    print(
        format_table(
            ["kind", "workload", "frames", "key", "KB", "wall s"],
            rows,
            title=f"Artifact cache at {store.root}",
        )
    )
    checkpoints = store.checkpoints()
    saved = sum(m["wall_s"] or 0.0 for m in entries)
    print()
    print(
        f"{len(entries)} artifact(s), {store.total_bytes() / 1e6:.1f} MB, "
        f"~{saved:.0f}s of compute banked; "
        f"{len(checkpoints)} in-flight checkpoint(s)"
    )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ReproServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        lanes=args.lanes,
        queue_depth=args.queue_depth,
        quota_bytes=(
            int(args.quota_mb * 1e6) if args.quota_mb is not None else None
        ),
        cache_dir=args.cache_dir,
        verbose_events=args.verbose_events,
        incremental=args.incremental,
        shard_frames=args.shard_frames,
        default_deadline_s=args.default_deadline,
        journal=not args.no_journal,
        lane_hang_s=args.lane_hang,
        request_timeout_s=args.request_timeout,
    )
    server = ReproServer(config)

    async def _run() -> None:
        await server.start()
        print(
            f"repro serve listening on http://{config.host}:{server.port} "
            f"({config.lanes} lane(s), queue depth {config.queue_depth}, "
            f"cache {server.store.root})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted")
    return 0


def _cmd_loadtest(args) -> int:
    from repro.serve import check_loadtest, run_loadtest

    doc = run_loadtest(
        clients=args.clients,
        requests_per_client=args.requests,
        unique=args.unique,
        kind=args.kind,
        workload=args.workload,
        frames=args.frames,
        lanes=args.lanes,
        queue_depth=args.queue_depth,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        out=args.out,
    )
    print(
        f"{doc['requests']} requests from {doc['clients']} clients: "
        f"{doc['errors']} error(s), {doc['dropped']} dropped, "
        f"cache hit rate {doc['cache']['hit_rate']}, "
        f"{doc['backpressure_429s']} backpressure 429(s)"
    )
    for name, wave in doc["waves"].items():
        latency = wave["latency_s"]
        print(
            f"  {name}: p50 {latency['p50']}s p99 {latency['p99']}s "
            f"throughput {wave['throughput_rps']} req/s "
            f"fairness spread {wave['fairness']['spread']}"
        )
    if "path" in doc:
        print(f"wrote {doc['path']}")
    problems = check_loadtest(doc)
    for problem in problems:
        print(f"LOADTEST FAIL: {problem}")
    return 1 if problems else 0


def _cmd_compare(args) -> int:
    from repro import compare

    if args.history:
        entries = compare.load_history(args.history_file, bench=args.bench)
        if not entries:
            print("no bench history entries", file=sys.stderr)
            return 2
        if args.format == "html":
            rendered = compare.render_history_html(entries)
        elif args.format == "json":
            import json as _json

            rendered = _json.dumps(entries, indent=2, sort_keys=True) + "\n"
        else:
            rendered = compare.render_history_ascii(entries) + "\n"
        if args.out:
            pathlib.Path(args.out).write_text(rendered)
            print(compare.render_history_ascii(entries))
            print(f"wrote {args.out}")
        else:
            print(rendered, end="")
        return 0

    if len(args.runs) != 2:
        print(
            "compare needs exactly two runs (or --history); got "
            f"{len(args.runs)}",
            file=sys.stderr,
        )
        return 2

    band = args.band
    mode = None
    if args.fail_on:
        try:
            mode, fail_band = compare.parse_fail_on(args.fail_on)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if band is None:
            band = fail_band
    if band is None:
        band = compare.DEFAULT_BAND_PCT

    probe = compare.ProbeSpec(
        kind=args.kind,
        workload=args.workload,
        frames=args.frames,
        jobs=args.jobs,
        shard_frames=args.shard_frames,
    )
    options = compare.LoadOptions(
        probe=probe,
        cell_tables=args.tables,
        history_bench=args.bench,
    )
    try:
        run_a = compare.load_run(args.runs[0], options)
        run_b = compare.load_run(args.runs[1], options)
        diff = compare.diff_runs(
            run_a,
            run_b,
            band_pct=band,
            include_cells=bool(args.tables),
            include_noise=not args.no_noise,
        )
    except (ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.format == "html":
        history = compare.load_history(args.history_file, bench=args.bench)
        rendered = compare.render_html(diff, history=history or None)
    elif args.format == "json":
        rendered = compare.render_json(diff)
    else:
        rendered = compare.render_ascii(diff) + "\n"
    if args.out:
        pathlib.Path(args.out).write_text(rendered)
        print(compare.render_ascii(diff))
        print(f"wrote {args.out}")
    else:
        print(rendered, end="")
        if args.format != "ascii":
            print(compare.render_ascii(diff), file=sys.stderr)

    if mode is not None:
        violations = compare.gate(diff, mode)
        if violations:
            print(
                f"COMPARE GATE FAIL ({args.fail_on}): "
                f"{len(violations)} violation(s)",
                file=sys.stderr,
            )
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print(f"compare gate ok ({args.fail_on})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workload Characterization of 3D Games (IISWC 2006) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads").set_defaults(
        func=_cmd_list
    )

    p = sub.add_parser("characterize", help="API-level statistics")
    p.add_argument("workload")
    p.add_argument("--frames", type=int, default=120)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("simulate", help="microarchitectural simulation")
    p.add_argument("workload")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--ppm", help="also write a rendered frame here")
    _add_farm_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("trace", help="dump a workload trace to JSONL")
    p.add_argument("workload")
    p.add_argument("output")
    p.add_argument("--frames", type=int, default=4)
    p.add_argument("--sim-profile", action="store_true")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("replay", help="replay a JSONL trace")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("profile", help="per-draw profiler (NVPerfHUD-style)")
    p.add_argument("workload")
    p.add_argument("--frames", type=int, default=2)
    p.add_argument("--top", type=int, default=12)
    p.add_argument(
        "--sort",
        default="memory_bytes",
        choices=["memory_bytes", "fragments_rasterized", "fragments_shaded",
                 "triangles_traversed", "bilinear_samples"],
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "scorecard", help="regenerate EXPERIMENTS.md (measured vs paper)"
    )
    p.add_argument("--output", default="EXPERIMENTS.md")
    _add_measurement_flags(p, api_frames=120, sim_frames=6, geometry_frames=60)
    p.set_defaults(func=_cmd_scorecard)

    for name, func, help_text in (
        ("tables", _cmd_tables, "regenerate paper tables"),
        ("figures", _cmd_figures, "regenerate paper figures"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--out-dir", default="results")
        p.add_argument("--only", nargs="*", help="subset, e.g. table3 table9")
        _add_measurement_flags(
            p, api_frames=120, sim_frames=4, geometry_frames=60
        )
        p.set_defaults(func=func)

    p = sub.add_parser(
        "bench", help="pipeline throughput benchmark (BENCH_pipeline.json)"
    )
    p.add_argument("--workload", default=None, help="benchmark workload")
    p.add_argument("--frames", type=int, default=1)
    p.add_argument("--farm-frames", type=int, default=2)
    p.add_argument(
        "--jobs",
        type=int,
        nargs="+",
        default=[2, 4],
        help="parallel farm widths to measure (serial is always measured)",
    )
    p.add_argument("--skip-farm", action="store_true")
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per path (the fastest run is kept)",
    )
    p.add_argument("--out", default="BENCH_pipeline.json")
    p.add_argument(
        "--threads",
        type=int,
        default=1,
        help="tile-band worker threads for the fused path measurement "
        "(results are bit-identical at any count)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if QuadStream fragments/s falls below this "
        "multiple of the per-triangle path",
    )
    p.add_argument(
        "--min-fused-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the fused path's fragments/s falls below "
        "this multiple of the per-triangle path (or diverges from it)",
    )
    p.add_argument(
        "--min-farm-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the farm speedup at the widest --jobs value "
        "falls below this multiple of the serial farm run",
    )
    p.add_argument(
        "--max-observer-overhead",
        type=float,
        default=None,
        help="fail (exit 1) if the traced run is more than this many "
        "percent slower than the untraced run",
    )
    p.add_argument(
        "--incremental-frames",
        type=int,
        default=20,
        help="timedemo length for the incremental cold/warm measurement",
    )
    p.add_argument(
        "--min-incremental-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the warm incremental replay is not at least "
        "this many times faster than full re-simulation (or diverges)",
    )
    _add_execution_flags(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "microbench",
        help="GPUBench-style stage microbenchmarks + fused-kernel timings",
    )
    p.add_argument("--width", type=int, default=256)
    p.add_argument("--height", type=int, default=192)
    p.add_argument(
        "--only",
        nargs="*",
        help="subset, e.g. fill_rate arena_fill fused_zstencil_pass",
    )
    p.set_defaults(func=_cmd_microbench)

    p = sub.add_parser(
        "observe",
        help="traced run: export a timeline, rank spans/draws, dump metrics",
    )
    p.add_argument("workload")
    p.add_argument("--frames", type=int, default=2)
    p.add_argument(
        "--kind", choices=["sim", "api", "geometry"], default="sim"
    )
    p.add_argument(
        "--export",
        default=None,
        help="write the merged timeline: .json = Chrome-trace/Perfetto, "
        ".jsonl = line records",
    )
    p.add_argument(
        "--clock",
        choices=["logical", "wall"],
        default="logical",
        help="export clock: 'logical' (event sequence, bit-stable across "
        "reruns) or 'wall' (real durations for Perfetto viewing)",
    )
    p.add_argument(
        "--timeline", action="store_true", help="print an ASCII timeline"
    )
    p.add_argument(
        "--top-spans",
        type=int,
        default=0,
        metavar="N",
        help="print the N heaviest span names by total wall time",
    )
    p.add_argument(
        "--top-draws",
        type=int,
        default=0,
        metavar="N",
        help="print the N heaviest draw calls (from gpu.draw spans)",
    )
    p.add_argument(
        "--sort",
        default="memory_bytes",
        choices=["memory_bytes", "fragments_rasterized", "fragments_shaded",
                 "triangles_traversed", "bilinear_samples"],
        help="ranking attribute for --top-draws",
    )
    p.add_argument(
        "--metrics", action="store_true", help="dump the metrics registry"
    )
    _add_farm_flags(p)
    p.set_defaults(func=_cmd_observe)

    p = sub.add_parser(
        "chaos",
        help="run the injected-fault recovery suite "
        "(crash, hang, corruption, ENOSPC, ...)",
    )
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument(
        "--jobs", type=int, default=2, help="farm width inside each scenario"
    )
    p.add_argument(
        "--only", nargs="*", help="subset of scenarios, e.g. crash hang"
    )
    p.add_argument(
        "--suite",
        choices=["farm", "serve", "all"],
        default="farm",
        help="which suite: farm faults, serve durability, or both",
    )
    p.add_argument(
        "--artifacts",
        default=None,
        help="directory to copy serve journals + failure reports into",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("farm", help="inspect or clear the artifact cache")
    p.add_argument("action", choices=["status", "clear"])
    p.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.set_defaults(func=_cmd_farm)

    p = sub.add_parser(
        "serve",
        help="characterization service: HTTP + WebSocket over the farm",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642, help="0 = ephemeral")
    p.add_argument(
        "--lanes", type=int, default=2, help="concurrent execution lanes"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="per-client queue bound before 429 backpressure",
    )
    p.add_argument(
        "--quota-mb",
        type=float,
        default=None,
        help="artifact cache quota in MB (LRU eviction; default unlimited)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--verbose-events",
        action="store_true",
        help="stream draw/stage-level spans too (default: coarse progress)",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="deadline (s) applied to submissions that do not request one",
    )
    p.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the crash-recovery job journal",
    )
    p.add_argument(
        "--lane-hang",
        type=float,
        default=30.0,
        help="heartbeat staleness (s) before the watchdog fails a lane's job",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        help="seconds a connection may take to deliver a request head (408)",
    )
    _add_execution_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "compare",
        help="diff two runs (bench docs, history, span exports, live "
        "probes, git revisions) with tolerance classes",
    )
    p.add_argument(
        "runs",
        nargs="*",
        metavar="RUN",
        help="two run tokens: a BENCH_*.json document, a history/span "
        ".jsonl, 'live', kind:workload@frames, or a git revision",
    )
    p.add_argument(
        "--format", choices=["ascii", "html", "json"], default="ascii"
    )
    p.add_argument(
        "--out",
        default=None,
        help="write the rendered report here (ASCII summary still printed)",
    )
    p.add_argument(
        "--fail-on",
        default=None,
        metavar="SPEC",
        help="gate and exit 1 on violations: exact | regression[:N%%] | any",
    )
    p.add_argument(
        "--band",
        type=float,
        default=None,
        help="timing noise band in percent (default 10, or the "
        "--fail-on band)",
    )
    p.add_argument(
        "--no-noise",
        action="store_true",
        help="drop within-band timing rows from the report",
    )
    p.add_argument(
        "--kind",
        choices=["sim", "api", "geometry"],
        default="sim",
        help="probe kind for live/revision runs",
    )
    p.add_argument(
        "--workload",
        default="UT2004/Primeval",
        help="probe workload for live/revision runs",
    )
    p.add_argument(
        "--frames", type=int, default=2, help="probe frame budget"
    )
    p.add_argument(
        "--jobs", type=int, default=1, help="probe farm width"
    )
    p.add_argument(
        "--shard-frames",
        type=int,
        default=None,
        help="probe frame-sharding policy (pin for cross-width compares)",
    )
    p.add_argument(
        "--tables",
        nargs="*",
        default=None,
        help="also regenerate and diff these paper tables' cells "
        "(expensive; e.g. table3 table9)",
    )
    p.add_argument(
        "--bench",
        choices=["pipeline", "serve"],
        default=None,
        help="filter history entries to one bench kind",
    )
    p.add_argument(
        "--history",
        action="store_true",
        help="render the bench-history trajectory instead of diffing",
    )
    p.add_argument(
        "--history-file",
        default=None,
        help="history path (default results/bench_history.jsonl)",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "loadtest",
        help="drive the serve layer with concurrent clients "
        "(BENCH_serve.json)",
    )
    p.add_argument(
        "--clients", type=int, default=200, help="concurrent client threads"
    )
    p.add_argument(
        "--requests", type=int, default=3, help="requests per client"
    )
    p.add_argument(
        "--unique",
        type=int,
        default=6,
        help="distinct specs in the request pool (the rest dedupe)",
    )
    p.add_argument(
        "--kind", choices=["sim", "api", "geometry"], default="api"
    )
    p.add_argument("--workload", default="UT2004/Primeval")
    p.add_argument("--frames", type=int, default=1)
    p.add_argument(
        "--lanes", type=int, default=2, help="lanes for the in-process server"
    )
    p.add_argument("--queue-depth", type=int, default=8)
    p.add_argument(
        "--host",
        default=None,
        help="target a running server instead of booting one in-process",
    )
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--out", default="BENCH_serve.json")
    p.set_defaults(func=_cmd_loadtest)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
