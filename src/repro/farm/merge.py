"""Deterministic recombination of frame-sharded measurement results.

A run sharded into contiguous frame slices (see :meth:`JobSpec.shard
<repro.farm.job.JobSpec.shard>`) produces one partial result per slice;
this module folds them back into the exact result a serial run produces:

* **counters** — every :class:`~repro.gpu.stats.FrameGpuStats` field and
  quad-fate bucket is additive, so the run totals are the fold of the
  per-frame records (:func:`repro.gpu.stats.merge_frames`);
* **memory traffic** — per-client byte counts are additive;
* **caches** — hit/miss/access counts are additive across slices, and the
  *contents* after the last slice equal a serial run's final contents,
  because every frame opens with a full clear that drops z/color/texture
  cache data (frame coherence is what makes slices independent);
* **images** — each slice renders its own frames; concatenation in frame
  order is the serial sequence.

Slice boundaries are inferred from the frame numbers carried by the
results themselves, which makes the merge a pure function of its inputs:
it is associative (merging merged halves equals merging all slices) and
order-invariant (slices may arrive in any order), properties
``tests/test_merge.py`` checks directly.  Inputs are never mutated.

Incremental replay (:mod:`repro.farm.drawcache`) composes transparently:
a slice whose frames were reused from the draw cache is shaped exactly
like a freshly simulated slice — same per-frame records, same memory
deltas, and the same end-of-slice cache contents (reuse installs the
recorded contents) — so reused and fresh slices fold together in any
order under the same invariants.
"""

from __future__ import annotations

import copy
from typing import Any, Sequence

from repro.api.stats import WorkloadApiStats
from repro.gpu.memory import MemoryController
from repro.gpu.pipeline import SimulationResult
from repro.gpu.stats import merge_frames


class MergeError(ValueError):
    """The given partial results do not tile one contiguous frame range."""


def _check_contiguous(label: str, frame_numbers: list[int]) -> None:
    for prev, cur in zip(frame_numbers, frame_numbers[1:]):
        if cur != prev + 1:
            raise MergeError(
                f"{label}: frame {cur} follows frame {prev}; shards must "
                "tile one contiguous frame range with no gaps or overlaps"
            )


def merge_simulations(parts: Sequence[SimulationResult]) -> SimulationResult:
    """Fold simulation slices (any order) into the serial-run result."""
    if not parts:
        raise MergeError("nothing to merge")
    for part in parts:
        if not part.frame_stats:
            raise MergeError("cannot merge an empty simulation slice")
    ordered = sorted(parts, key=lambda p: p.frame_stats[0].frame)
    first = ordered[0]
    for part in ordered[1:]:
        if part.config != first.config:
            raise MergeError("simulation slices ran under different configs")

    frame_stats = [fs for part in ordered for fs in part.frame_stats]
    _check_contiguous("simulation", [fs.frame for fs in frame_stats])

    memory = MemoryController()
    for part in ordered:
        for client, nbytes in part.memory.reads.items():
            memory.reads[client] += nbytes
        for client, nbytes in part.memory.writes.items():
            memory.writes[client] += nbytes

    # The last slice's cache state *is* the serial end state (each frame
    # starts from dropped contents); only the whole-run counters need the
    # other slices' contributions.  Copy before patching — inputs stay
    # untouched so a part can participate in several merges.
    caches = copy.deepcopy(ordered[-1].caches)
    for name, cache in caches.items():
        cache.hits = sum(p.caches[name].hits for p in ordered)
        cache.misses = sum(p.caches[name].misses for p in ordered)
        cache.accesses = sum(p.caches[name].accesses for p in ordered)

    return SimulationResult(
        stats=merge_frames(frame_stats),
        frame_stats=frame_stats,
        memory=memory,
        caches=caches,
        config=first.config,
        images=[image for part in ordered for image in part.images],
    )


def merge_api_stats(parts: Sequence[WorkloadApiStats]) -> WorkloadApiStats:
    """Fold API-statistics slices (any order) into the whole-demo stats."""
    if not parts:
        raise MergeError("nothing to merge")
    for part in parts:
        if not part.frames:
            raise MergeError("cannot merge an empty API-statistics slice")
    ordered = sorted(parts, key=lambda p: p.frames[0].frame)
    first = ordered[0]
    for part in ordered[1:]:
        if (part.name, part.index_size_bytes) != (
            first.name,
            first.index_size_bytes,
        ):
            raise MergeError("API slices describe different workloads")
    merged = WorkloadApiStats(
        name=first.name, index_size_bytes=first.index_size_bytes
    )
    for part in ordered:
        for frame in part.frames:
            merged.add(frame)
    _check_contiguous("api", [f.frame for f in merged.frames])
    return merged


def merge_results(parts: Sequence[Any]) -> Any:
    """Type-dispatching merge; single slices pass through unchanged."""
    if not parts:
        raise MergeError("nothing to merge")
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(p, SimulationResult) for p in parts):
        return merge_simulations(parts)
    if all(isinstance(p, WorkloadApiStats) for p in parts):
        return merge_api_stats(parts)
    raise MergeError(
        "cannot merge mixed or unknown result types: "
        + ", ".join(sorted({type(p).__name__ for p in parts}))
    )
