"""Job scheduler: shard measurement runs across worker processes.

Execution policy, in order:

1. **Cache probe** — jobs whose artifact is already on disk are satisfied
   without running anything.
2. **Parallel execution** — remaining jobs are sharded across a
   ``ProcessPoolExecutor`` (``--jobs N``, default ``os.cpu_count()``).
   Every job runs in its own process with a fresh simulator, so parallel
   results are bit-identical to serial ones.
3. **Crash/timeout recovery** — a worker crash breaks the whole pool, so
   the round's unfinished jobs are requeued into a fresh pool; after
   ``retries`` broken rounds a job falls back to serial in-parent
   execution.  A per-job timeout kills the pool's workers and requeues the
   same way.  Exceptions *raised* by a job (as opposed to crashes) are
   deterministic and surface immediately as :class:`FarmError`.
4. **Serial fallback** — if the pool cannot be created at all (restricted
   environments), or ``jobs=1``, everything runs in-process.

Workers both persist their artifact and return it, so a completed job's
work survives even if the parent dies while collecting results.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

from repro.farm.checkpoint import build_job_workload, run_checkpointed
from repro.farm.job import JobSpec
from repro.farm.store import ArtifactStore
from repro.farm.telemetry import FarmTelemetry


class FarmError(RuntimeError):
    """A job failed permanently (exhausted retries and fallback)."""


@dataclass
class JobOutcome:
    """Worker return envelope: the artifact plus execution telemetry."""

    result: Any
    wall_s: float
    from_cache: bool = False


def run_job(
    job: JobSpec, cache_dir: str | None = None, checkpoint_every: int = 1
) -> JobOutcome:
    """Compute one job end-to-end (the worker-process entry point).

    Probes the cache first so retried or restarted workers never redo
    finished work, and persists the artifact before returning so the result
    survives a parent crash.
    """
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    if store is not None:
        cached = store.load(job)
        if cached is not None:
            return JobOutcome(cached, 0.0, from_cache=True)
    start = time.perf_counter()
    if job.kind == "api":
        workload = build_job_workload(job)
        result = workload.api_stats(frames=job.frames)
    else:
        result = run_checkpointed(job, store, checkpoint_every)
    wall_s = time.perf_counter() - start
    if store is not None:
        try:
            store.save(job, result, wall_s=wall_s)
        except OSError:
            pass  # read-only cache dir: the computation still succeeded
    return JobOutcome(result, wall_s)


class Farm:
    """Runs batches of :class:`JobSpec` through cache, pool, and fallback."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int | None = None,
        use_cache: bool = True,
        retries: int = 2,
        timeout: float | None = None,
        checkpoint_every: int = 1,
        telemetry: FarmTelemetry | None = None,
    ):
        self.store = store if store is not None else ArtifactStore()
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.retries = max(1, int(retries))
        self.timeout = timeout
        self.checkpoint_every = checkpoint_every
        self.telemetry = telemetry if telemetry is not None else FarmTelemetry()

    @property
    def cache_dir(self) -> str | None:
        """Store root handed to workers; ``None`` disables caching."""
        return str(self.store.root) if self.use_cache else None

    # -- public API -----------------------------------------------------
    def run_one(self, job: JobSpec, worker: Callable = run_job) -> Any:
        return self.run([job], worker=worker)[job]

    def run(
        self, jobs: list[JobSpec], worker: Callable = run_job
    ) -> dict[JobSpec, Any]:
        """Execute ``jobs`` (deduplicated) and return ``{job: result}``."""
        results: dict[JobSpec, Any] = {}
        pending: list[JobSpec] = []
        for job in jobs:
            if job in results or job in pending:
                continue
            if self.use_cache:
                start = time.perf_counter()
                cached = self.store.load(job)
                if cached is not None:
                    results[job] = cached
                    self.telemetry.record(
                        job.describe(),
                        job.key(),
                        "cache",
                        time.perf_counter() - start,
                    )
                    continue
            pending.append(job)

        if not pending:
            return results
        if self.jobs <= 1 or len(pending) == 1:
            self._run_serial(pending, worker, results, source="serial")
        else:
            self._run_parallel(pending, worker, results)
        return results

    # -- execution strategies -------------------------------------------
    def _harvest(
        self,
        job: JobSpec,
        outcome: Any,
        results: dict,
        source: str,
        attempts: int,
        parent_wall: float,
    ) -> None:
        if isinstance(outcome, JobOutcome):
            wall = outcome.wall_s if not outcome.from_cache else parent_wall
            if outcome.from_cache:
                source = "cache"
            results[job] = outcome.result
        else:  # custom worker returning a bare value
            wall = parent_wall
            results[job] = outcome
        self.telemetry.record(job.describe(), job.key(), source, wall, attempts)

    def _run_serial(
        self,
        batch: list[JobSpec],
        worker: Callable,
        results: dict,
        source: str,
        attempts: dict[JobSpec, int] | None = None,
    ) -> None:
        for job in batch:
            start = time.perf_counter()
            outcome = worker(job, self.cache_dir, self.checkpoint_every)
            self._harvest(
                job,
                outcome,
                results,
                source,
                (attempts or {}).get(job, 0) + 1,
                time.perf_counter() - start,
            )

    def _run_parallel(
        self, batch: list[JobSpec], worker: Callable, results: dict
    ) -> None:
        attempts = dict.fromkeys(batch, 0)
        remaining = list(batch)
        fallback: list[JobSpec] = []
        while remaining:
            round_jobs, remaining = remaining, []
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(round_jobs))
                )
            except (OSError, ValueError):  # no multiprocessing available
                fallback.extend(round_jobs)
                break
            broken = False
            try:
                futures = [
                    (
                        job,
                        pool.submit(
                            worker, job, self.cache_dir, self.checkpoint_every
                        ),
                    )
                    for job in round_jobs
                ]
                for job, future in futures:
                    start = time.perf_counter()
                    try:
                        outcome = future.result(
                            timeout=0 if broken else self.timeout
                        )
                    except FutureTimeout:
                        broken = True
                        self._kill_workers(pool)
                        self._requeue(job, attempts, remaining, fallback)
                    except (BrokenProcessPool, CancelledError):
                        broken = True
                        self._requeue(job, attempts, remaining, fallback)
                    except KeyboardInterrupt:
                        self._kill_workers(pool)
                        raise
                    except Exception as exc:
                        raise FarmError(
                            f"job {job.describe()} raised "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    else:
                        attempts[job] += 1
                        self._harvest(
                            job,
                            outcome,
                            results,
                            "parallel",
                            attempts[job],
                            time.perf_counter() - start,
                        )
            finally:
                pool.shutdown(wait=not broken, cancel_futures=True)
        if fallback:
            try:
                self._run_serial(
                    fallback, worker, results, "fallback", attempts
                )
            except Exception as exc:
                raise FarmError(
                    f"{len(fallback)} job(s) failed after {self.retries} "
                    f"pool attempts and a serial fallback"
                ) from exc

    def _requeue(
        self,
        job: JobSpec,
        attempts: dict[JobSpec, int],
        remaining: list[JobSpec],
        fallback: list[JobSpec],
    ) -> None:
        attempts[job] += 1
        if attempts[job] >= self.retries:
            fallback.append(job)
        else:
            remaining.append(job)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        for proc in (getattr(pool, "_processes", None) or {}).values():
            try:
                proc.kill()
            except OSError:
                pass
