"""Job scheduler: shard measurement runs across worker processes.

Execution policy, in order:

1. **Cache probe** — jobs whose artifact is already on disk (and passes the
   checksum + invariant gauntlet, see :mod:`repro.farm.store`) are satisfied
   without running anything.
2. **Parallel execution** — remaining jobs are sharded across a
   ``ProcessPoolExecutor`` (``--jobs N``, default ``os.cpu_count()``).
   Every job runs in its own process with a fresh simulator, so parallel
   results are bit-identical to serial ones.
3. **Crash/hang/exception recovery** — a worker crash breaks the whole
   pool, so the round's unfinished jobs are requeued into a fresh pool; a
   round that outlives its deadline (``timeout`` seconds per job, scaled by
   the number of queue waves so a job waiting behind slow siblings is never
   killed spuriously) has its workers killed and its unfinished jobs
   requeued; exceptions *raised* by a job are requeued the same way (they
   may be transient).  Requeue rounds are separated by exponential backoff
   with deterministic jitter.  After ``retries`` failed attempts a job
   falls back to serial in-parent execution.
4. **Serial fallback** — if the pool cannot be created at all (restricted
   environments), or ``jobs=1``, everything runs in-process.
5. **Failure accounting** — a job that still fails after the serial
   fallback is *permanently failed*: its full cause chain is recorded in
   telemetry and a :class:`FailureReport`.  With ``strict=True`` (the
   default) the batch raises :class:`FarmError` after every job has been
   given its chance; with ``strict=False`` the completed results are
   returned and the report is left on :attr:`Farm.last_report`.

Workers both persist their artifact and return it, so a completed job's
work survives even if the parent dies while collecting results.  Fresh and
cached results alike are checked against the pipeline conservation
invariants (:mod:`repro.farm.invariants`) before they are handed out.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.farm import faults
from repro.farm.checkpoint import build_job_workload, run_checkpointed
from repro.farm.invariants import validate_result
from repro.farm.job import JobSpec
from repro.farm.store import ArtifactStore
from repro.farm.telemetry import FarmTelemetry


class FarmError(RuntimeError):
    """One or more jobs failed permanently (retries and fallback exhausted).

    Carries the :class:`FailureReport` with every failed job's cause chain.
    """

    def __init__(self, message: str, report: "FailureReport | None" = None):
        super().__init__(message)
        self.report = report


@dataclass
class JobFailure:
    """One permanently failed job and everything that went wrong with it."""

    job: JobSpec
    causes: tuple[str, ...]

    def describe(self) -> str:
        chain = " ; then ".join(self.causes) if self.causes else "unknown cause"
        return f"{self.job.describe()}: {chain}"


@dataclass
class FailureReport:
    """Outcome summary of one :meth:`Farm.run` batch."""

    failures: list[JobFailure] = field(default_factory=list)
    completed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_jobs(self) -> list[JobSpec]:
        return [failure.job for failure in self.failures]

    def summary(self) -> str:
        if self.ok:
            return f"all {self.completed} job(s) completed"
        lines = [
            f"{len(self.failures)} job(s) failed permanently, "
            f"{self.completed} completed:"
        ]
        lines += [f"  {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)


@dataclass
class JobOutcome:
    """Worker return envelope: the artifact plus execution telemetry."""

    result: Any
    wall_s: float
    from_cache: bool = False


def run_job(
    job: JobSpec, cache_dir: str | None = None, checkpoint_every: int = 1
) -> JobOutcome:
    """Compute one job end-to-end (the worker-process entry point).

    Probes the cache first so retried or restarted workers never redo
    finished work, and persists the artifact before returning so the result
    survives a parent crash.  Fault-injection hooks fire here so the chaos
    suite can kill, hang, or trip the worker at a controlled point.
    """
    faults.reset_native_if_planned()
    faults.on_job_start(job.describe())
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    if store is not None:
        cached = store.load(job)
        if cached is not None:
            return JobOutcome(cached, 0.0, from_cache=True)
    start = time.perf_counter()
    if job.kind == "api":
        workload = build_job_workload(job)
        result = workload.api_stats(frames=job.frames)
    else:
        result = run_checkpointed(job, store, checkpoint_every)
    wall_s = time.perf_counter() - start
    if store is not None:
        try:
            store.save(job, result, wall_s=wall_s)
        except OSError:
            pass  # full or read-only cache dir: the computation still succeeded
    return JobOutcome(result, wall_s)


class Farm:
    """Runs batches of :class:`JobSpec` through cache, pool, and fallback."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int | None = None,
        use_cache: bool = True,
        retries: int = 2,
        timeout: float | None = None,
        checkpoint_every: int = 1,
        telemetry: FarmTelemetry | None = None,
        strict: bool = True,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
    ):
        self.store = store if store is not None else ArtifactStore()
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.retries = max(1, int(retries))
        self.timeout = timeout
        self.checkpoint_every = checkpoint_every
        self.telemetry = telemetry if telemetry is not None else FarmTelemetry()
        self.strict = strict
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.last_report = FailureReport()

    @property
    def cache_dir(self) -> str | None:
        """Store root handed to workers; ``None`` disables caching."""
        return str(self.store.root) if self.use_cache else None

    # -- public API -----------------------------------------------------
    def run_one(self, job: JobSpec, worker: Callable = run_job) -> Any:
        results = self.run([job], worker=worker)
        if job not in results:  # only reachable with strict=False
            raise FarmError(self.last_report.summary(), self.last_report)
        return results[job]

    def run(
        self, jobs: list[JobSpec], worker: Callable = run_job
    ) -> dict[JobSpec, Any]:
        """Execute ``jobs`` (deduplicated) and return ``{job: result}``.

        With ``strict=True`` a permanent job failure raises
        :class:`FarmError` — after every other job has run to completion,
        so one bad job never discards its siblings' work.  With
        ``strict=False`` the completed subset is returned and the
        :class:`FailureReport` is available on :attr:`last_report`.
        """
        report = FailureReport()
        self.last_report = report
        causes: dict[JobSpec, list[str]] = {}
        results: dict[JobSpec, Any] = {}
        pending: list[JobSpec] = []
        for job in jobs:
            if job in results or job in pending:
                continue
            if self.use_cache:
                start = time.perf_counter()
                cached = self.store.load(job)
                if cached is not None:
                    results[job] = cached
                    self.telemetry.record(
                        job.describe(),
                        job.key(),
                        "cache",
                        time.perf_counter() - start,
                    )
                    continue
            pending.append(job)

        if pending:
            if self.jobs <= 1 or len(pending) == 1:
                failed = self._run_serial(
                    pending, worker, results, source="serial", causes=causes
                )
                self._record_failures(report, failed, causes)
            else:
                self._run_parallel(pending, worker, results, causes, report)

        report.completed = len(results)
        if report.failures and self.strict:
            raise FarmError(report.summary(), report)
        return results

    # -- failure bookkeeping --------------------------------------------
    @staticmethod
    def _note(causes: dict[JobSpec, list[str]], job: JobSpec, cause: str) -> None:
        causes.setdefault(job, []).append(cause)

    def _record_failures(
        self,
        report: FailureReport,
        failed: list[JobSpec],
        causes: dict[JobSpec, list[str]],
    ) -> None:
        for job in failed:
            chain = tuple(causes.get(job, ()))
            report.failures.append(JobFailure(job, chain))
            self.telemetry.record_failure(job.describe(), job.key(), chain)

    def _validate(self, job: JobSpec, outcome: Any) -> list[str]:
        result = outcome.result if isinstance(outcome, JobOutcome) else outcome
        return validate_result(job, result)

    def _backoff(self, round_no: int, round_jobs: list[JobSpec]) -> None:
        """Exponential backoff with deterministic jitter between requeues.

        The jitter is seeded from the round's job keys, so a given batch
        always waits the same amount — reruns stay reproducible while
        distinct batches still desynchronize.
        """
        if self.backoff_base <= 0:
            return
        delay = min(self.backoff_max, self.backoff_base * (2 ** (round_no - 1)))
        seed = ",".join(sorted(job.key() for job in round_jobs)) + f"#{round_no}"
        digest = int(hashlib.sha256(seed.encode()).hexdigest()[:8], 16)
        time.sleep(delay * (0.5 + (digest % 1000) / 1000.0))

    # -- execution strategies -------------------------------------------
    def _harvest(
        self,
        job: JobSpec,
        outcome: Any,
        results: dict,
        source: str,
        attempts: int,
        parent_wall: float,
        causes: tuple[str, ...] = (),
    ) -> None:
        if isinstance(outcome, JobOutcome):
            wall = outcome.wall_s if not outcome.from_cache else parent_wall
            if outcome.from_cache:
                source = "cache"
            results[job] = outcome.result
        else:  # custom worker returning a bare value
            wall = parent_wall
            results[job] = outcome
        self.telemetry.record(
            job.describe(), job.key(), source, wall, attempts, causes
        )

    def _run_serial(
        self,
        batch: list[JobSpec],
        worker: Callable,
        results: dict,
        source: str,
        attempts: dict[JobSpec, int] | None = None,
        causes: dict[JobSpec, list[str]] | None = None,
    ) -> list[JobSpec]:
        """Run ``batch`` in-process; returns the jobs that failed."""
        attempts = attempts if attempts is not None else {}
        causes = causes if causes is not None else {}
        failed: list[JobSpec] = []
        for job in batch:
            start = time.perf_counter()
            try:
                outcome = worker(job, self.cache_dir, self.checkpoint_every)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempts[job] = attempts.get(job, 0) + 1
                self._note(causes, job, f"{source}: {type(exc).__name__}: {exc}")
                failed.append(job)
                continue
            attempts[job] = attempts.get(job, 0) + 1
            violations = self._validate(job, outcome)
            if violations:
                self._note(
                    causes,
                    job,
                    f"{source}: invariant violation: " + "; ".join(violations),
                )
                failed.append(job)
                continue
            self._harvest(
                job,
                outcome,
                results,
                source,
                attempts[job],
                time.perf_counter() - start,
                tuple(causes.get(job, ())),
            )
        return failed

    def _run_parallel(
        self,
        batch: list[JobSpec],
        worker: Callable,
        results: dict,
        causes: dict[JobSpec, list[str]],
        report: FailureReport,
    ) -> None:
        attempts = dict.fromkeys(batch, 0)
        remaining = list(batch)
        fallback: list[JobSpec] = []
        round_no = 0
        while remaining:
            round_jobs, remaining = remaining, []
            round_no += 1
            if round_no > 1:
                self._backoff(round_no - 1, round_jobs)
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(round_jobs))
                )
            except (OSError, ValueError):  # no multiprocessing available
                fallback.extend(round_jobs)
                break
            try:
                futures = {
                    pool.submit(
                        worker, job, self.cache_dir, self.checkpoint_every
                    ): job
                    for job in round_jobs
                }
                self._collect_round(
                    pool, futures, attempts, results, remaining, fallback, causes
                )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        if fallback:
            failed = self._run_serial(
                fallback, worker, results, "fallback", attempts, causes
            )
            self._record_failures(report, failed, causes)

    def _collect_round(
        self,
        pool: ProcessPoolExecutor,
        futures: dict,
        attempts: dict[JobSpec, int],
        results: dict,
        remaining: list[JobSpec],
        fallback: list[JobSpec],
        causes: dict[JobSpec, list[str]],
    ) -> None:
        """Harvest one pool round under a shared deadline.

        The deadline is ``timeout`` seconds *per queue wave*
        (``ceil(jobs / workers)``), measured from round start — so the
        clock covers execution, not position in the collection order, and
        a job that queued behind slow siblings is never killed spuriously.
        Finished futures are always harvested before the deadline is
        enforced, so completed work survives even an expired round.
        """
        deadline = None
        if self.timeout is not None:
            workers = getattr(pool, "_max_workers", None) or 1
            waves = max(1, math.ceil(len(futures) / workers))
            deadline = time.monotonic() + self.timeout * waves
        round_start = time.monotonic()
        pending = set(futures)
        while pending:
            budget = None
            if deadline is not None:
                budget = max(0.0, deadline - time.monotonic())
            done, pending = wait(
                pending, timeout=budget, return_when=FIRST_COMPLETED
            )
            if not done:  # deadline expired with jobs still in flight
                self._kill_workers(pool)
                for future in pending:
                    job = futures[future]
                    self._note(
                        causes,
                        job,
                        f"hung (round deadline of {self.timeout:g}s/job "
                        "exceeded); workers killed",
                    )
                    self._requeue(job, attempts, remaining, fallback)
                return
            for future in done:
                job = futures[future]
                try:
                    outcome = future.result()
                except (BrokenProcessPool, CancelledError):
                    self._note(causes, job, "worker process died (pool broken)")
                    self._requeue(job, attempts, remaining, fallback)
                except KeyboardInterrupt:
                    self._kill_workers(pool)
                    raise
                except Exception as exc:
                    self._note(causes, job, f"{type(exc).__name__}: {exc}")
                    self._requeue(job, attempts, remaining, fallback)
                else:
                    attempts[job] += 1
                    violations = self._validate(job, outcome)
                    if violations:
                        self._note(
                            causes,
                            job,
                            "invariant violation: " + "; ".join(violations),
                        )
                        self._requeue(
                            job, attempts, remaining, fallback, count=False
                        )
                        continue
                    self._harvest(
                        job,
                        outcome,
                        results,
                        "parallel",
                        attempts[job],
                        time.monotonic() - round_start,
                        tuple(causes.get(job, ())),
                    )

    def _requeue(
        self,
        job: JobSpec,
        attempts: dict[JobSpec, int],
        remaining: list[JobSpec],
        fallback: list[JobSpec],
        count: bool = True,
    ) -> None:
        if count:
            attempts[job] += 1
        if attempts[job] >= self.retries:
            fallback.append(job)
        else:
            remaining.append(job)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        for proc in (getattr(pool, "_processes", None) or {}).values():
            try:
                proc.kill()
            except OSError:
                pass
