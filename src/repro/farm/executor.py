"""Job scheduler: shard measurement runs across worker processes.

Execution policy, in order:

1. **Cache probe** — jobs whose artifact is already on disk (and passes the
   checksum + invariant gauntlet, see :mod:`repro.farm.store`) are satisfied
   without running anything.
2. **Frame sharding** — an under-subscribed batch (fewer pending jobs than
   workers) is split into contiguous frame slices
   (:meth:`~repro.farm.job.JobSpec.shard`), so even ``run_one`` of a single
   long timedemo uses every worker.  Shard results are recombined by
   :mod:`repro.farm.merge` bit-identically to a serial run — the per-frame
   full clear makes frame ranges independent (see
   :mod:`repro.farm.checkpoint`), and ``tests/test_merge.py`` checks the
   equality on every engine.
3. **Warm parallel execution** — execution units run on a persistent
   ``ProcessPoolExecutor`` (``--jobs N``, default ``os.cpu_count()``; the
   effective worker and shard width is capped at ``os.cpu_count()`` unless
   ``oversubscribe=True``, so a small box never runs slower in parallel
   than serial) that lives for the whole :class:`Farm`, spanning retry
   rounds *and*
   consecutive :meth:`Farm.run` calls; it is torn down only when broken by
   a worker death / kill (or by :meth:`Farm.close`).  Workers precompile
   the native kernels at init and keep generated traces in an in-process
   LRU, so only the first job in a worker pays those costs.
4. **Zero-copy transport** — workers persist their (large) result into the
   content-addressed store and ship back only the artifact key plus a few
   scalars; the parent materializes from disk at harvest, memory-mapping
   rendered frames instead of pushing them through the result pipe.
5. **Crash/hang/exception recovery** — a worker crash breaks the pool, so
   the round's unfinished units are requeued and the pool is rebuilt; a
   round that outlives its deadline (``timeout`` seconds per unit, scaled
   by the number of queue waves so a unit waiting behind slow siblings is
   never killed spuriously) has its workers killed and its unfinished
   units requeued; exceptions *raised* by a unit are requeued the same way
   (they may be transient).  Only units that actually *started* (their
   worker touched a start beacon) are charged an attempt — a unit still
   queued when a sibling broke the pool is requeued for free, so narrow
   pools never starve queued jobs of real tries.  Requeue rounds are
   separated by exponential backoff with deterministic jitter.  After
   ``retries`` failed attempts a unit falls back to serial in-parent
   execution.
6. **Serial fallback** — if the pool cannot be created at all (restricted
   environments), or ``jobs=1``, everything runs in-process.
7. **Failure accounting** — a job that still fails after the serial
   fallback is *permanently failed*: its full cause chain (including its
   shards') is recorded in telemetry and a :class:`FailureReport`.  With
   ``strict=True`` (the default) the batch raises :class:`FarmError` after
   every job has been given its chance; with ``strict=False`` the
   completed results are returned and the report is left on
   :attr:`Farm.last_report`.

Workers persist their artifact before returning, so a completed unit's
work survives even if the parent dies while collecting results.  Fresh and
cached results alike are checked against the pipeline conservation
invariants (:mod:`repro.farm.invariants`) before they are handed out, and
merged jobs are validated again as a whole.
"""

from __future__ import annotations

import dataclasses
import math
import os
import shutil
import tempfile
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import observe
from repro.farm import faults
from repro.farm.checkpoint import job_trace, run_api_job, run_checkpointed
from repro.farm.invariants import validate_result
from repro.farm.job import JobSpec
from repro.farm.locks import backoff_delay
from repro.farm.merge import MergeError, merge_results
from repro.farm.store import ArtifactStore
from repro.farm.telemetry import FarmTelemetry


class FarmError(RuntimeError):
    """One or more jobs failed permanently (retries and fallback exhausted).

    Carries the :class:`FailureReport` with every failed job's cause chain.
    """

    def __init__(self, message: str, report: "FailureReport | None" = None):
        super().__init__(message)
        self.report = report


@dataclass
class JobFailure:
    """One permanently failed job and everything that went wrong with it."""

    job: JobSpec
    causes: tuple[str, ...]

    def describe(self) -> str:
        chain = " ; then ".join(self.causes) if self.causes else "unknown cause"
        return f"{self.job.describe()}: {chain}"


@dataclass
class FailureReport:
    """Outcome summary of one :meth:`Farm.run` batch."""

    failures: list[JobFailure] = field(default_factory=list)
    completed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_jobs(self) -> list[JobSpec]:
        return [failure.job for failure in self.failures]

    def summary(self) -> str:
        if self.ok:
            return f"all {self.completed} job(s) completed"
        lines = [
            f"{len(self.failures)} job(s) failed permanently, "
            f"{self.completed} completed:"
        ]
        lines += [f"  {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)


@dataclass
class JobOutcome:
    """Worker return envelope: the artifact plus execution telemetry.

    With ``stored=True`` the worker persisted the result under ``key`` and
    ``result`` is ``None`` — the parent materializes it from the shared
    store at harvest time instead of receiving it over the result pipe.
    ``phases`` carries worker-side timing (``trace``, ``simulate``) for the
    farm's phase breakdown.
    """

    result: Any
    wall_s: float
    from_cache: bool = False
    stored: bool = False
    key: str | None = None
    phases: dict[str, float] = field(default_factory=dict)


def incremental_default() -> bool:
    """Resolve the ``REPRO_INCREMENTAL`` environment override (off default)."""
    value = os.environ.get("REPRO_INCREMENTAL", "").strip().lower()
    return value in ("1", "true", "yes", "on")


def run_job(
    job: JobSpec,
    cache_dir: str | None = None,
    checkpoint_every: int = 1,
    incremental: bool = False,
) -> JobOutcome:
    """Compute one job end-to-end (the worker-process entry point).

    Probes the cache first so retried or restarted workers never redo
    finished work, and persists the artifact before returning so the result
    survives a parent crash.  The timedemo is resolved through the shared
    trace store / worker-local cache (:func:`repro.farm.checkpoint
    .job_trace`), so it is generated once per demo, not once per shard.
    ``incremental=True`` routes sim/geometry replay through the draw-level
    content cache (:mod:`repro.farm.drawcache`) — bit-identical, and never
    part of the job's artifact key.  Fault-injection hooks fire here so the
    chaos suite can kill, hang, or trip the worker at a controlled point.
    """
    faults.reset_native_if_planned()
    faults.on_job_start(job.describe())
    # Per-unit tracing scope: in a pool worker this installs a fresh tracer
    # (buffer contents depend only on this unit's work, never on which
    # worker ran it); in the parent it is just a span on the live tracer.
    scope = observe.UnitScope(job.describe())
    if scope.fresh:
        observe.metrics.reset()
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    outcome: JobOutcome | None = None
    try:
        if store is not None:
            cached = store.load(job)
            if cached is not None:
                outcome = JobOutcome(
                    cached, 0.0, from_cache=True, key=job.key()
                )
                return outcome
        phases: dict[str, float] = {}
        start = time.perf_counter()
        trace = job_trace(job, store)
        phases["trace"] = time.perf_counter() - start
        mark = time.perf_counter()
        if job.kind == "api":
            result = run_api_job(job, store, trace=trace)
        else:
            result = run_checkpointed(
                job, store, checkpoint_every, trace=trace,
                incremental=incremental,
            )
        phases["simulate"] = time.perf_counter() - mark
        wall_s = time.perf_counter() - start
        if store is not None:
            try:
                store.save(job, result, wall_s=wall_s)
            except OSError:
                pass  # full or read-only cache: the computation still succeeded
        outcome = JobOutcome(result, wall_s, key=job.key(), phases=phases)
        return outcome
    finally:
        payload = scope.finish(
            metrics=observe.registry().snapshot() if scope.fresh else None
        )
        if (
            payload is not None
            and store is not None
            and isinstance(outcome, JobOutcome)
            and not outcome.from_cache
        ):
            store.save_spans(job, payload)


def _pool_entry(
    worker: Callable,
    job: JobSpec,
    cache_dir: str | None,
    checkpoint_every: int,
    started_beacon: str | None = None,
    incremental: bool = False,
):
    """Pool-side wrapper: run the worker, strip stored results for transport.

    When the standard worker persisted its result, only the envelope (key
    plus scalars) crosses the process boundary; the parent reloads —
    memory-mapping rendered frames — from the store.  Custom workers and
    unsaved results (no cache dir, unwritable volume) pass through whole.
    ``incremental`` is forwarded to the standard worker only — custom
    workers keep their three-argument contract.

    The *started_beacon* file is touched before the worker runs: if this
    unit later comes back :class:`BrokenProcessPool`, the parent uses the
    beacon to tell the crash victim (it ran — charge a retry attempt) from
    units that were still queued behind it (collateral — requeue free).
    """
    if started_beacon is not None:
        try:
            open(started_beacon, "w").close()
        except OSError:
            pass  # parent falls back to charging the attempt
    if worker is run_job:
        outcome = worker(job, cache_dir, checkpoint_every, incremental)
    else:
        outcome = worker(job, cache_dir, checkpoint_every)
    if (
        worker is run_job
        and cache_dir is not None
        and isinstance(outcome, JobOutcome)
        and outcome.result is not None
        and ArtifactStore(cache_dir).contains(job)
    ):
        return dataclasses.replace(outcome, result=None, stored=True)
    return outcome


def _worker_init() -> None:
    """Warm-pool worker initializer: pay one-time costs before any job.

    Re-arms fault injection for this process, then probes (and if needed
    compiles) the native kernels so the first job scheduled on this worker
    doesn't serialize behind a compiler run.
    """
    faults.reset_native_if_planned()
    try:
        from repro.gpu import _native

        _native.available()
    except Exception:
        pass  # the pure-Python pipeline works without the accelerator


class Farm:
    """Runs batches of :class:`JobSpec` through cache, pool, and fallback."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int | None = None,
        use_cache: bool = True,
        retries: int = 2,
        timeout: float | None = None,
        checkpoint_every: int = 1,
        telemetry: FarmTelemetry | None = None,
        strict: bool = True,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        shard_frames: int | None = None,
        oversubscribe: bool = False,
        incremental: bool | None = None,
    ):
        self.store = store if store is not None else ArtifactStore()
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        #: Worker/shard width actually used: ``--jobs`` capped by the
        #: machine's core count.  On a 1-core box, ``--jobs 4`` used to
        #: *lose* to serial (4 processes competing for 1 core, plus 4-way
        #: shard merges) — capped, the pool runs one worker and shards are
        #: never planned wider than the hardware.  ``oversubscribe=True``
        #: restores the uncapped width (shard-planning tests, experiments).
        self.width = (
            self.jobs
            if oversubscribe
            else max(1, min(self.jobs, os.cpu_count() or 1))
        )
        self.use_cache = use_cache
        self.retries = max(1, int(retries))
        self.timeout = timeout
        self.checkpoint_every = checkpoint_every
        self.telemetry = telemetry if telemetry is not None else FarmTelemetry()
        self.strict = strict
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        #: ``None`` = shard automatically when the batch under-subscribes
        #: the pool; ``0`` = never shard; ``k`` = split every shardable job
        #: into (up to) ``k`` frame slices.
        self.shard_frames = shard_frames
        #: Draw-level incremental replay for sim/geometry jobs.  ``None``
        #: resolves the ``REPRO_INCREMENTAL`` env override; an execution
        #: strategy only — results and artifact keys are unchanged, so it
        #: is never part of job identity.
        self.incremental = (
            incremental_default() if incremental is None else bool(incremental)
        )
        self.last_report = FailureReport()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._beacon_dir: str | None = None

    @property
    def cache_dir(self) -> str | None:
        """Store root handed to workers; ``None`` disables caching."""
        return str(self.store.root) if self.use_cache else None

    # -- warm pool lifecycle --------------------------------------------
    def _ensure_pool(self, units: int) -> ProcessPoolExecutor | None:
        """The persistent worker pool, created lazily on first need.

        The pool spans retry rounds and :meth:`run` calls — spawn and
        native-kernel warmup are paid once per :class:`Farm`, not once per
        round.  Creation happens *after* any fault plan is installed in
        the parent environment (pools are lazy), so forked workers inherit
        it.  Returns ``None`` where multiprocessing is unavailable.
        """
        if self._pool is not None:
            return self._pool
        start = time.perf_counter()
        try:
            from repro.gpu import _native

            _native.available()  # compile once here; forked workers inherit
        except Exception:
            pass
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.width, max(1, units)),
                initializer=_worker_init,
            )
        except (OSError, ValueError):  # no multiprocessing available
            return None
        self._pool = pool
        self._pool_finalizer = weakref.finalize(
            self, pool.shutdown, wait=False, cancel_futures=True
        )
        self.telemetry.add_phase("spawn", time.perf_counter() - start)
        return pool

    def _discard_pool(self) -> None:
        """Tear the pool down (broken worker, kill, or explicit close)."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Release the warm pool; the farm remains usable (it re-warms)."""
        self._discard_pool()

    def __enter__(self) -> "Farm":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- shard planning --------------------------------------------------
    def _plan_units(
        self, pending: list[JobSpec], worker: Callable
    ) -> dict[JobSpec, tuple[JobSpec, ...]]:
        """Map each pending job to the execution units that will run it.

        Sharding applies only to the standard worker (custom workers have
        their own contracts).  Automatic policy: split when the batch has
        fewer jobs than the pool has workers — the classic long-timedemo /
        few-workloads shape where whole-job parallelism leaves workers
        idle.  A saturated batch is left unsharded: slicing it would only
        add merge work.
        """
        if worker is not run_job or self.shard_frames == 0:
            return {job: (job,) for job in pending}
        if self.shard_frames:
            # An explicit pin wins over the width cap: exports pinned for
            # determinism must plan identically on any host.
            pieces = self.shard_frames
        elif self.width > 1 and len(pending) < self.width:
            pieces = math.ceil(self.width / len(pending))
        else:
            pieces = 1
        return {job: job.shard(pieces) for job in pending}

    # -- public API -----------------------------------------------------
    def run_one(self, job: JobSpec, worker: Callable = run_job) -> Any:
        results = self.run([job], worker=worker)
        if job not in results:  # only reachable with strict=False
            raise FarmError(self.last_report.summary(), self.last_report)
        return results[job]

    def run(
        self, jobs: list[JobSpec], worker: Callable = run_job
    ) -> dict[JobSpec, Any]:
        """Execute ``jobs`` (deduplicated) and return ``{job: result}``.

        With ``strict=True`` a permanent job failure raises
        :class:`FarmError` — after every other job has run to completion,
        so one bad job never discards its siblings' work.  With
        ``strict=False`` the completed subset is returned and the
        :class:`FailureReport` is available on :attr:`last_report`.
        """
        report = FailureReport()
        self.last_report = report
        causes: dict[JobSpec, list[str]] = {}
        results: dict[JobSpec, Any] = {}
        pending: list[JobSpec] = []
        run_span = observe.span("farm.run", "farm")
        if run_span:
            run_span.set("jobs", len(jobs))
        try:
            with observe.span("farm.probe", "farm") as probe_span:
                for job in jobs:
                    if job in results or job in pending:
                        continue
                    if self.use_cache:
                        start = time.perf_counter()
                        cached = self.store.load(job)
                        if cached is not None:
                            results[job] = cached
                            self.telemetry.record(
                                job.describe(),
                                job.key(),
                                "cache",
                                time.perf_counter() - start,
                            )
                            continue
                    pending.append(job)
                if probe_span:
                    probe_span.set("hits", len(results))
                    probe_span.set("misses", len(pending))

            if pending:
                plan = self._plan_units(pending, worker)
                units = [unit for job in pending for unit in plan[job]]
                if self.jobs <= 1 or len(units) == 1:
                    failed = self._run_serial(
                        pending, worker, results, source="serial", causes=causes
                    )
                    self._record_failures(report, failed, causes)
                else:
                    unit_results: dict[JobSpec, Any] = {}
                    self._run_units(units, worker, unit_results, causes)
                    self._assemble(
                        pending, plan, unit_results, results, causes, report
                    )
        finally:
            if run_span:
                run_span.__exit__(None, None, None)

        report.completed = len(results)
        if report.failures and self.strict:
            raise FarmError(report.summary(), report)
        return results

    # -- shard assembly --------------------------------------------------
    def _assemble(
        self,
        pending: list[JobSpec],
        plan: dict[JobSpec, tuple[JobSpec, ...]],
        unit_results: dict[JobSpec, Any],
        results: dict[JobSpec, Any],
        causes: dict[JobSpec, list[str]],
        report: FailureReport,
    ) -> None:
        """Recombine unit results into parent-job results.

        A sharded parent whose every slice completed is merged
        (:func:`repro.farm.merge.merge_results`), re-validated as a whole
        run, and persisted under the *parent* key so the next batch
        cache-hits it directly.  Any failed slice fails the parent, with
        the slice's cause chain folded into the parent's.
        """
        failed: list[JobSpec] = []
        for parent in pending:
            units = plan[parent]
            missing = [unit for unit in units if unit not in unit_results]
            if missing:
                if len(units) > 1:
                    for unit in missing:
                        for cause in causes.get(unit, ["unknown cause"]):
                            self._note(
                                causes, parent, f"{unit.describe()}: {cause}"
                            )
                failed.append(parent)
                continue
            if len(units) == 1:
                results[parent] = unit_results[units[0]]
                continue
            start = time.perf_counter()
            merge_span = observe.span("farm.merge", "farm")
            if merge_span:
                merge_span.set("job", parent.describe())
                merge_span.set("units", len(units))
            try:
                try:
                    merged = merge_results(
                        [unit_results[unit] for unit in units]
                    )
                except MergeError as exc:
                    self._note(causes, parent, f"shard merge failed: {exc}")
                    failed.append(parent)
                    continue
                violations = validate_result(parent, merged)
                if violations:
                    self._note(
                        causes,
                        parent,
                        "merged result invariant violation: "
                        + "; ".join(violations),
                    )
                    failed.append(parent)
                    continue
                if self.use_cache:
                    try:
                        self.store.save(parent, merged)
                    except OSError:
                        pass
                wall = time.perf_counter() - start
                self.telemetry.add_phase("merge", wall)
                results[parent] = merged
                self.telemetry.record(
                    parent.describe(),
                    parent.key(),
                    "merge",
                    wall,
                    1,
                    tuple(causes.get(parent, ())),
                )
            finally:
                if merge_span:
                    merge_span.__exit__(None, None, None)
        self._record_failures(report, failed, causes)

    # -- failure bookkeeping --------------------------------------------
    @staticmethod
    def _note(causes: dict[JobSpec, list[str]], job: JobSpec, cause: str) -> None:
        causes.setdefault(job, []).append(cause)

    def _record_failures(
        self,
        report: FailureReport,
        failed: list[JobSpec],
        causes: dict[JobSpec, list[str]],
    ) -> None:
        for job in failed:
            chain = tuple(causes.get(job, ()))
            report.failures.append(JobFailure(job, chain))
            self.telemetry.record_failure(job.describe(), job.key(), chain)

    def _validate(self, job: JobSpec, outcome: Any) -> list[str]:
        result = outcome.result if isinstance(outcome, JobOutcome) else outcome
        return validate_result(job, result)

    def _backoff(self, round_no: int, round_jobs: list[JobSpec]) -> None:
        """Exponential backoff with deterministic jitter between requeues.

        The jitter is seeded from the round's job keys, so a given batch
        always waits the same amount — reruns stay reproducible while
        distinct batches still desynchronize.
        """
        seed = ",".join(sorted(job.key() for job in round_jobs)) + f"#{round_no}"
        delay = backoff_delay(round_no, self.backoff_base, self.backoff_max, seed)
        if delay > 0:
            time.sleep(delay)

    # -- execution strategies -------------------------------------------
    def _harvest(
        self,
        job: JobSpec,
        outcome: Any,
        results: dict,
        source: str,
        attempts: int,
        parent_wall: float,
        causes: tuple[str, ...] = (),
    ) -> None:
        if isinstance(outcome, JobOutcome):
            wall = outcome.wall_s if not outcome.from_cache else parent_wall
            if outcome.from_cache:
                source = "cache"
            results[job] = outcome.result
            for phase, seconds in outcome.phases.items():
                self.telemetry.add_phase(phase, seconds)
        else:  # custom worker returning a bare value
            wall = parent_wall
            results[job] = outcome
        self.telemetry.record(
            job.describe(), job.key(), source, wall, attempts, causes
        )

    def _run_serial(
        self,
        batch: list[JobSpec],
        worker: Callable,
        results: dict,
        source: str,
        attempts: dict[JobSpec, int] | None = None,
        causes: dict[JobSpec, list[str]] | None = None,
    ) -> list[JobSpec]:
        """Run ``batch`` in-process; returns the jobs that failed."""
        attempts = attempts if attempts is not None else {}
        causes = causes if causes is not None else {}
        failed: list[JobSpec] = []
        for job in batch:
            start = time.perf_counter()
            try:
                if worker is run_job:
                    outcome = worker(
                        job, self.cache_dir, self.checkpoint_every,
                        self.incremental,
                    )
                else:
                    outcome = worker(job, self.cache_dir, self.checkpoint_every)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempts[job] = attempts.get(job, 0) + 1
                self._note(causes, job, f"{source}: {type(exc).__name__}: {exc}")
                failed.append(job)
                continue
            attempts[job] = attempts.get(job, 0) + 1
            violations = self._validate(job, outcome)
            if violations:
                self._note(
                    causes,
                    job,
                    f"{source}: invariant violation: " + "; ".join(violations),
                )
                failed.append(job)
                continue
            self._harvest(
                job,
                outcome,
                results,
                source,
                attempts[job],
                time.perf_counter() - start,
                tuple(causes.get(job, ())),
            )
        return failed

    def _run_units(
        self,
        batch: list[JobSpec],
        worker: Callable,
        results: dict,
        causes: dict[JobSpec, list[str]],
    ) -> list[JobSpec]:
        """Run execution units on the warm pool; returns the failed ones.

        The pool persists across retry rounds (and :meth:`run` calls) —
        it is discarded and rebuilt only when a worker death or a deadline
        kill breaks it.
        """
        attempts = dict.fromkeys(batch, 0)
        remaining = list(batch)
        fallback: list[JobSpec] = []
        round_no = 0
        while remaining:
            round_jobs, remaining = remaining, []
            round_no += 1
            if round_no > 1:
                self._backoff(round_no - 1, round_jobs)
            pool = self._ensure_pool(len(round_jobs))
            if pool is None:  # no multiprocessing available
                fallback.extend(round_jobs)
                break
            beacons = self._clear_beacons(round_jobs)
            futures: dict = {}
            try:
                for job in round_jobs:
                    futures[
                        pool.submit(
                            _pool_entry,
                            worker,
                            job,
                            self.cache_dir,
                            self.checkpoint_every,
                            beacons.get(job),
                            self.incremental,
                        )
                    ] = job
            except (BrokenProcessPool, RuntimeError):
                self._discard_pool()
                submitted = set(futures.values())
                for job in round_jobs:
                    if job not in submitted:
                        self._note(causes, job, "pool rejected submission")
                        self._requeue(
                            job,
                            attempts,
                            remaining,
                            fallback,
                            count=self._unit_started(job),
                        )
            if futures:
                self._collect_round(
                    pool, futures, attempts, results, remaining, fallback, causes
                )
        if fallback:
            return self._run_serial(
                fallback, worker, results, "fallback", attempts, causes
            )
        return []

    def _collect_round(
        self,
        pool: ProcessPoolExecutor,
        futures: dict,
        attempts: dict[JobSpec, int],
        results: dict,
        remaining: list[JobSpec],
        fallback: list[JobSpec],
        causes: dict[JobSpec, list[str]],
    ) -> None:
        """Harvest one pool round under a shared deadline.

        The deadline is ``timeout`` seconds *per queue wave*
        (``ceil(jobs / workers)``), measured from round start — so the
        clock covers execution, not position in the collection order, and
        a job that queued behind slow siblings is never killed spuriously.
        Finished futures are always harvested before the deadline is
        enforced, so completed work survives even an expired round.
        """
        deadline = None
        if self.timeout is not None:
            workers = getattr(pool, "_max_workers", None) or 1
            waves = max(1, math.ceil(len(futures) / workers))
            deadline = time.monotonic() + self.timeout * waves
        round_start = time.monotonic()
        pending = set(futures)
        while pending:
            budget = None
            if deadline is not None:
                budget = max(0.0, deadline - time.monotonic())
            done, pending = wait(
                pending, timeout=budget, return_when=FIRST_COMPLETED
            )
            if not done:  # deadline expired with jobs still in flight
                self._kill_workers(pool)
                self._discard_pool()
                for future in pending:
                    job = futures[future]
                    if self._unit_started(job):
                        self._note(
                            causes,
                            job,
                            f"hung (round deadline of {self.timeout:g}s/job "
                            "exceeded); workers killed",
                        )
                        self._requeue(job, attempts, remaining, fallback)
                    else:
                        self._note(
                            causes,
                            job,
                            "queued behind a hung sibling; requeued unchanged",
                        )
                        self._requeue(
                            job, attempts, remaining, fallback, count=False
                        )
                return
            for future in done:
                job = futures[future]
                try:
                    outcome = future.result()
                except (BrokenProcessPool, CancelledError):
                    self._discard_pool()
                    if self._unit_started(job):
                        self._note(
                            causes, job, "worker process died (pool broken)"
                        )
                        self._requeue(job, attempts, remaining, fallback)
                    else:
                        # The unit never reached a worker — a sibling broke
                        # the pool while it sat in the queue.  Requeue it
                        # without spending one of its attempts, else a
                        # 1-worker pool starves queued jobs of real tries
                        # and feeds them untested to the in-parent fallback.
                        self._note(
                            causes,
                            job,
                            "pool broke before the unit started; "
                            "requeued unchanged",
                        )
                        self._requeue(
                            job, attempts, remaining, fallback, count=False
                        )
                except KeyboardInterrupt:
                    self._kill_workers(pool)
                    self._discard_pool()
                    raise
                except Exception as exc:
                    self._note(causes, job, f"{type(exc).__name__}: {exc}")
                    self._requeue(job, attempts, remaining, fallback)
                else:
                    attempts[job] += 1
                    mark = time.perf_counter()
                    outcome, load_error = self._materialize(job, outcome)
                    if load_error is not None:
                        self._note(causes, job, load_error)
                        self._requeue(
                            job, attempts, remaining, fallback, count=False
                        )
                        continue
                    violations = self._validate(job, outcome)
                    if violations:
                        self._note(
                            causes,
                            job,
                            "invariant violation: " + "; ".join(violations),
                        )
                        self._requeue(
                            job, attempts, remaining, fallback, count=False
                        )
                        continue
                    self.telemetry.add_phase(
                        "harvest", time.perf_counter() - mark
                    )
                    if (
                        isinstance(outcome, JobOutcome)
                        and not outcome.from_cache
                        and self.use_cache
                    ):
                        observe.absorb_job(self.store, job)
                    self._harvest(
                        job,
                        outcome,
                        results,
                        "parallel",
                        attempts[job],
                        time.monotonic() - round_start,
                        tuple(causes.get(job, ())),
                    )

    def _materialize(self, job: JobSpec, outcome: Any):
        """Reload a stored (zero-copy) outcome from the shared store.

        Returns ``(outcome, error)``.  The store load re-verifies the
        checksum and memory-maps rendered frames; a damaged artifact is
        quarantined there and reported here as a retryable error, so
        on-disk corruption between worker save and parent harvest degrades
        to a recompute.
        """
        if not (
            isinstance(outcome, JobOutcome)
            and outcome.stored
            and outcome.result is None
        ):
            return outcome, None
        loaded = self.store.load(job)
        if loaded is None:
            return None, (
                "stored artifact unreadable at harvest (quarantined)"
            )
        return dataclasses.replace(outcome, result=loaded, stored=False), None

    # -- start beacons ---------------------------------------------------
    def _clear_beacons(
        self, round_jobs: list[JobSpec]
    ) -> dict[JobSpec, str | None]:
        """Fresh per-unit beacon paths for one pool round.

        Workers touch their beacon just before running the unit
        (:func:`_pool_entry`); after a broken round the parent reads them
        to separate the crash victim from units that never started.  Stale
        beacons from earlier rounds are removed here so a unit is never
        judged by a previous round's run.  Returns ``{job: None}`` when no
        scratch directory can be made — attempt accounting then degrades
        to charging every unit, the pre-beacon behaviour.
        """
        if self._beacon_dir is None:
            try:
                self._beacon_dir = tempfile.mkdtemp(prefix="repro-farm-")
            except OSError:
                return dict.fromkeys(round_jobs)
            weakref.finalize(
                self, shutil.rmtree, self._beacon_dir, ignore_errors=True
            )
        beacons: dict[JobSpec, str | None] = {}
        for job in round_jobs:
            path = os.path.join(self._beacon_dir, f"{job.key()}.started")
            try:
                os.unlink(path)
            except OSError:
                pass
            beacons[job] = path
        return beacons

    def _unit_started(self, job: JobSpec) -> bool:
        """Did this unit's worker begin executing in the current round?"""
        if self._beacon_dir is None:
            return True  # beacons unavailable; assume it ran
        return os.path.exists(
            os.path.join(self._beacon_dir, f"{job.key()}.started")
        )

    def _requeue(
        self,
        job: JobSpec,
        attempts: dict[JobSpec, int],
        remaining: list[JobSpec],
        fallback: list[JobSpec],
        count: bool = True,
    ) -> None:
        if count:
            attempts[job] += 1
        if attempts[job] >= self.retries:
            fallback.append(job)
        else:
            remaining.append(job)

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        for proc in (getattr(pool, "_processes", None) or {}).values():
            try:
                proc.kill()
            except OSError:
                pass
