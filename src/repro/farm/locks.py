"""Cross-process coordination: advisory file locks and deterministic backoff.

One ``.repro-cache`` directory is routinely shared by several processes —
a ``repro serve`` instance and a CLI run, two serve instances behind a
port, pool workers persisting shards while the parent evicts over quota.
Every individual file write in the store is already atomic (temp file +
``os.replace``), but *multi-file* critical sections are not: LRU eviction
reads recency then unlinks a family, quarantine moves a family aside and
appends to ``REASONS.log``, the serve journal appends lifecycle records.
Interleaving two of those can evict a family another process just touched
or tear a journal line.

:class:`FileLock` wraps those sections in an advisory ``fcntl.flock``
exclusive lock on a dedicated lock file (the locked files themselves are
never opened for locking — they get renamed and deleted, which would
silently detach an fd-based lock).  Advisory means every writer must opt
in, which all store/journal paths now do; readers stay lock-free because
atomic replace already gives them a consistent view of any single file.

**Lock hierarchy** (acquire strictly in this order, outermost first)::

    journal  >  drawcache  >  trace  >  store

A holder of an inner lock must never acquire an outer one — e.g. the
drawcache save path may take ``store`` (via quarantine) while holding
``drawcache``, but store maintenance never reaches back into the journal.
No current code path holds more than two, and the ordering makes the
pairing deadlock-free by construction.

On platforms without ``fcntl`` the lock degrades to a process-local
:class:`threading.Lock` — single-process correctness is preserved and the
cross-process guarantee is documented as best-effort there.

The module also hosts :func:`backoff_delay`, the farm's capped exponential
backoff with deterministic jitter.  It lived inline in the executor's
retry loop; the serve client's connect/submit retry and the journal's
lock acquisition want the identical policy, so it is shared from here
(stdlib-only, like :mod:`repro.farm.faults`, to stay import-cycle free).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time

try:  # pragma: no cover - always present on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Whether real cross-process locking is available on this platform.
HAVE_FLOCK = fcntl is not None


class LockTimeout(OSError):
    """The lock could not be acquired within the caller's deadline."""


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    seed_text: str = "",
) -> float:
    """Capped exponential backoff with deterministic jitter, in seconds.

    ``attempt`` counts from 1.  The jitter factor (0.5x-1.5x) is drawn from
    a SHA-256 of ``seed_text``, so a given retry sequence always waits the
    same amounts — reruns stay reproducible — while distinct callers (two
    clients, two batches) still desynchronize instead of thundering back
    in lock-step.
    """
    if base <= 0:
        return 0.0
    delay = min(cap, base * (2 ** (max(1, attempt) - 1)))
    digest = int(hashlib.sha256(seed_text.encode()).hexdigest()[:8], 16)
    return delay * (0.5 + (digest % 1000) / 1000.0)


class FileLock:
    """An advisory exclusive lock on ``path`` (context manager).

    The lock file is created on first use and never deleted (deleting a
    lock file while another process holds its fd reintroduces the race the
    lock exists to close).  Not reentrant: acquiring a held instance
    raises.  ``timeout=None`` blocks indefinitely; a number raises
    :class:`LockTimeout` after that many seconds.
    """

    def __init__(self, path, timeout: float | None = 30.0):
        self.path = os.fspath(path)
        self.timeout = timeout
        self._fd: int | None = None
        #: Serializes threads of this process on one instance; cross-process
        #: exclusion is the flock itself (per-fd, so two instances in one
        #: process also exclude each other through the kernel).
        self._thread_lock = threading.Lock()

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if not self._thread_lock.acquire(
            timeout=-1 if self.timeout is None else self.timeout
        ):
            raise LockTimeout(f"lock {self.path} busy in-process")
        fd = None
        try:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            if fcntl is not None:
                deadline = (
                    None
                    if self.timeout is None
                    else time.monotonic() + self.timeout
                )
                attempt = 0
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        attempt += 1
                        if (
                            deadline is not None
                            and time.monotonic() >= deadline
                        ):
                            raise LockTimeout(
                                f"lock {self.path} not acquired within "
                                f"{self.timeout:g}s"
                            ) from None
                        time.sleep(
                            min(
                                0.1,
                                backoff_delay(
                                    attempt, 0.002, 0.05, self.path
                                ),
                            )
                        )
            self._fd = fd
            return self
        except BaseException:
            if fd is not None:
                os.close(fd)
            self._thread_lock.release()
            raise

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()
