"""Draw-level content addressing: frame-coherent incremental simulation.

Consecutive timedemo frames are highly similar, and re-running a demo (a
longer budget, another ``--jobs`` width, a warm CI pass) re-simulates call
streams that have not changed at all.  This module extends the farm's
content addressing from whole runs (:meth:`repro.farm.job.JobSpec.key`)
down to individual draws: while a trace replays, a running SHA-256 over
the canonically-encoded call stream yields one key per draw and one per
frame, chained onto

* a **base fingerprint** (workload spec, seed, profile, GPU config, code
  version — :meth:`JobSpec.draw_base_fingerprint`), shared by every shard
  and every demo length of the same workload, and
* the **bound state** at frame entry (render state, uniforms, texture
  bindings — everything the API state machine carries across frames).

A frame whose key is already in the :class:`DrawCache` is *reused*: its
recorded statistics, quad fates, per-client memory traffic, and cache
hit/miss contributions are applied as deltas and its end-of-frame cache
contents installed, instead of re-simulating — turning O(frames × draws)
cost into O(changed draws).  Reuse is bit-identical to full simulation by
construction:

* **Granularity is the frame.**  The z/color/texture cache streams depend
  on every preceding access of the frame, so the first changed draw
  invalidates the rest of its frame; per-draw keys (and the per-draw
  framebuffer-region footprints recorded alongside) localize the delta
  and guard against key collisions, but replay restarts at the frame
  boundary.
* **Only framebuffer-independent frames participate.**  A frame is
  *storable* only if it opens with a full clear (color+depth+stencil
  before any draw) — the same property that makes frame shards
  bit-identical to serial runs — and *reusable* only if the next frame
  in this run opens with one too (or the slice ends), so a freshly
  simulated successor never reads framebuffer state the reused frame
  did not write.
* **Invalidation is structural.**  Any change to the bound state, the
  call stream, the workload spec, the GPU config, or the code version
  lands in the key, so stale entries are simply never found; a record
  whose stored per-draw keys disagree with the current stream (or whose
  bytes fail the SHA-256 sidecar check, or whose counter deltas violate
  conservation) is quarantined via the store's never-reuse semantics and
  the frame recomputed.

Persistent entries live under ``<cache_root>/drawcache/<frame_key>.pkl``
with JSON SHA-256 sidecars, mirroring :mod:`repro.farm.store`; with no
store the cache is memory-only (intra-run reuse still applies).  The
``drawcache.{hits,misses,invalidations}`` metric family and
``gpu.frame.reuse`` spans surface reuse behaviour through
:mod:`repro.observe`.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pathlib
import pickle
from dataclasses import dataclass, field

from repro.api.commands import Clear, Draw
from repro.api.trace import Frame, Trace, _encode_call
from repro.farm.job import JobSpec, _canonical
from repro.farm.store import ArtifactStore, _atomic_write, UNPICKLE_ERRORS
from repro.gpu.stats import FrameGpuStats, MemClient
from repro.observe import metrics as obs_metrics
from repro.observe import spans as obs_spans

#: Names of the simulator caches whose streams a record carries, matching
#: the ``caches`` dict of :class:`~repro.gpu.pipeline.SimulationResult`.
CACHE_NAMES = ("zstencil", "color", "texture_l0", "texture_l1")


# -- keys ---------------------------------------------------------------
def entry_state_doc(machine) -> dict:
    """Canonical document of everything the state machine carries across
    frames: the bound render state (programs, textures, depth/stencil/
    blend modes) and the uniform values."""
    return {
        "state": _canonical(machine.state),
        "uniforms": {
            name: _canonical(value)
            for name, value in sorted(machine.uniforms.items())
        },
    }


def frame_keys(
    base_key: str, machine, frame: Frame
) -> tuple[str, tuple[str, ...]]:
    """``(frame_key, per-draw keys)`` for ``frame`` entered via ``machine``.

    A running SHA-256 over the canonically-encoded call stream, seeded with
    the base key and the frame-entry bound state.  The digest at each
    ``Draw`` is that draw's key — draw N's key covers the entry state and
    every call up to and including the draw, which is exactly the input
    surface of its simulation within the frame.  The digest after the last
    call is the frame key.  Frame numbers are deliberately excluded: two
    content-identical frames at different timedemo positions (or in shards
    at different ``--jobs`` widths) share keys.
    """
    digest = hashlib.sha256(base_key.encode())
    digest.update(
        json.dumps(entry_state_doc(machine), sort_keys=True).encode()
    )
    draw_keys: list[str] = []
    for call in frame.calls:
        digest.update(json.dumps(_encode_call(call), sort_keys=True).encode())
        if isinstance(call, Draw):
            draw_keys.append(digest.hexdigest()[:24])
    return digest.hexdigest()[:24], tuple(draw_keys)


def opens_with_full_clear(frame: Frame) -> bool:
    """True when the frame resets the whole framebuffer before drawing.

    The first Clear must hit color, depth, and stencil and precede every
    draw — the frame-independence property the shard scheduler relies on
    (see :meth:`repro.gpu.pipeline.GpuSimulator.run_trace`), and the
    precondition for reusing a frame without replaying its framebuffer
    writes.
    """
    for call in frame.calls:
        if isinstance(call, Clear):
            return bool(call.color and call.depth and call.stencil)
        if isinstance(call, Draw):
            return False
    return False


# -- records ------------------------------------------------------------
@dataclass
class FrameRecord:
    """Everything one simulated frame contributed, as reusable deltas.

    ``cache_deltas`` holds per-cache ``(hits, misses, accesses)`` counter
    deltas and ``cache_states`` the end-of-frame cache contents (the
    ``__getstate__`` form), so a reused frame both advances the counters
    and leaves the caches exactly where a fresh simulation would — which
    the shard-merge layer's last-slice cache semantics require.
    ``draw_regions`` records each draw's framebuffer footprint
    ``(x0, y0, x1, y1, quads)`` on the vectorized path (``None`` entries
    for culled-empty or reference-path draws) — the conservative
    region-dependency evidence behind the frame-granularity rule.
    """

    frame_key: str
    draw_keys: tuple[str, ...]
    fstats: FrameGpuStats
    memory_reads: dict[MemClient, int]
    memory_writes: dict[MemClient, int]
    cache_deltas: dict[str, tuple[int, int, int]]
    cache_states: dict[str, dict]
    draw_regions: tuple = ()
    image: "object | None" = None  # np.ndarray when captured with images

    def violations(self) -> list[str]:
        """Conservation checks a record must pass before it is reused."""
        problems: list[str] = []
        for name in CACHE_NAMES:
            if name not in self.cache_deltas or name not in self.cache_states:
                problems.append(f"cache {name} missing")
                continue
            hits, misses, accesses = self.cache_deltas[name]
            if min(hits, misses, accesses) < 0 or hits + misses != accesses:
                problems.append(
                    f"cache {name} delta violates hits+misses==accesses"
                )
        if any(n < 0 for n in self.memory_reads.values()) or any(
            n < 0 for n in self.memory_writes.values()
        ):
            problems.append("negative memory delta")
        if len(self.fstats.quad_fates) and min(
            self.fstats.quad_fates.values()
        ) < 0:
            problems.append("negative quad-fate count")
        return problems


class DrawCache:
    """Draw-level record store with the artifact store's trust model.

    In-memory always; persistent under ``<root>/drawcache/`` when built
    over an :class:`ArtifactStore` — ``<frame_key>.pkl`` records with
    ``<frame_key>.json`` SHA-256 sidecars, atomic writes, and corrupt
    entries quarantined (never reused, never silently deleted) exactly
    like artifacts.  ``base_key`` scopes every lookup: records from
    other workloads/configs/code versions can share the directory but
    can never match.
    """

    def __init__(self, store: ArtifactStore | None, base_key: str):
        self.store = store
        self.base_key = base_key
        self._memory: dict[str, FrameRecord] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def directory(self) -> pathlib.Path | None:
        return self.store.drawcache_dir if self.store is not None else None

    def record_path(self, frame_key: str) -> pathlib.Path:
        return self.directory / f"{frame_key}.pkl"

    def meta_path(self, frame_key: str) -> pathlib.Path:
        return self.directory / f"{frame_key}.json"

    # -- accounting ------------------------------------------------------
    def _count(self, counter: str) -> None:
        setattr(self, counter, getattr(self, counter) + 1)
        obs_metrics.registry().counter(f"drawcache.{counter}").inc()

    def invalidate(self, frame_key: str, reason: str) -> None:
        """Drop (and quarantine, when persistent) a bad entry."""
        self._count("invalidations")
        self._memory.pop(frame_key, None)
        if self.store is not None:
            self.store.quarantine(
                [self.record_path(frame_key), self.meta_path(frame_key)],
                f"drawcache {frame_key}: {reason}",
            )

    # -- load / save -----------------------------------------------------
    def load(self, frame_key: str) -> FrameRecord | None:
        """The stored record for ``frame_key``, or ``None``.

        Runs the artifact gauntlet: SHA-256 sidecar check, guarded
        unpickle, base-key scope check, and :meth:`FrameRecord.violations`
        conservation checks.  Anything that fails is quarantined and
        reported as a miss.  Does *not* bump hit/miss counters — only the
        runner knows whether a miss was even reusable.
        """
        record = self._memory.get(frame_key)
        if record is not None:
            return record
        if self.store is None:
            return None
        path = self.record_path(frame_key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        meta: dict = {}
        try:
            meta = json.loads(self.meta_path(frame_key).read_text())
        except (OSError, json.JSONDecodeError):
            pass
        expected = meta.get("sha256")
        if expected is None or hashlib.sha256(blob).hexdigest() != expected:
            self.invalidate(frame_key, "record checksum mismatch")
            return None
        if meta.get("base") != self.base_key:
            # Same frame key under another base fingerprint is a SHA-256
            # collision or tampering — either way, untrustworthy.
            self.invalidate(frame_key, "record base-key mismatch")
            return None
        try:
            record = pickle.loads(blob)
        except UNPICKLE_ERRORS as exc:
            self.invalidate(
                frame_key, f"record undecodable ({type(exc).__name__}: {exc})"
            )
            return None
        if not isinstance(record, FrameRecord) or record.frame_key != frame_key:
            self.invalidate(frame_key, "record identity mismatch")
            return None
        problems = record.violations()
        if problems:
            self.invalidate(frame_key, "; ".join(problems))
            return None
        self._memory[frame_key] = record
        return record

    def save(self, record: FrameRecord) -> None:
        self._memory[record.frame_key] = record
        if self.store is None:
            return
        try:
            blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            # The record + sidecar pair must land together: a concurrent
            # quota sweep or quarantine move interleaving between the two
            # writes would leave a record whose checksum never verifies.
            # LockTimeout is an OSError, so a contended lock degrades to
            # memory-only exactly like a full volume does.
            with self.store.lock("drawcache", timeout=10.0):
                _atomic_write(self.record_path(record.frame_key), blob)
                meta = {
                    "sha256": hashlib.sha256(blob).hexdigest(),
                    "base": self.base_key,
                    "frame_key": record.frame_key,
                    "draws": len(record.draw_keys),
                }
                _atomic_write(
                    self.meta_path(record.frame_key), json.dumps(meta).encode()
                )
        except OSError:
            pass  # full/read-only volume: run on memory-only

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def job_drawcache(job: JobSpec, store: ArtifactStore | None) -> DrawCache:
    """The draw cache a job's execution shares with its sibling shards."""
    return DrawCache(store, job.draw_base_key())


# -- incremental replay -------------------------------------------------
@dataclass
class IncrementalReport:
    """Per-run reuse accounting (mirrored by the metric family)."""

    frames_reused: int = 0
    frames_simulated: int = 0
    draws_reused: int = 0
    draws_simulated: int = 0
    invalidations: int = 0
    per_frame: list[str] = field(default_factory=list)


def run_trace_incremental(
    sim,
    trace: Trace,
    cache: DrawCache,
    max_frames: int | None = None,
    fragment_stages: bool = True,
    keep_images: int = 0,
    resume: bool = False,
    on_frame=None,
    start_frame: int = 0,
    report: IncrementalReport | None = None,
):
    """Drop-in :meth:`~repro.gpu.pipeline.GpuSimulator.run_trace` with reuse.

    Same contract and bit-identical results (statistics, quad fates, cache
    streams, memory traffic, images): frames whose keys are in ``cache``
    apply their recorded contributions, everything else simulates fresh and
    is recorded.  The skip/fast-forward/shard semantics match ``run_trace``
    exactly, so shards at any ``--jobs`` width compute identical keys and
    share one cache.
    """
    images: list = []
    if resume:
        skip = start_frame + sim.frames_completed
        forward = 0
    else:
        skip = 0
        forward = start_frame
    frames = list(trace.frames())
    run_span = obs_spans.span("gpu.run", "gpu")
    try:
        for index, frame in enumerate(frames):
            if skip > 0:
                skip -= 1
                continue
            if forward > 0:
                forward -= 1
                sim._fast_forward(frame)
                continue
            if max_frames is not None and sim.frames_completed >= max_frames:
                break
            frame_key, draw_keys = frame_keys(
                cache.base_key, sim.machine, frame
            )
            needs_image = len(images) < keep_images
            storable = opens_with_full_clear(frame)
            last = index + 1 >= len(frames) or (
                max_frames is not None
                and sim.frames_completed + 1 >= max_frames
            )
            reusable = storable and (
                last or opens_with_full_clear(frames[index + 1])
            )
            record = cache.load(frame_key) if reusable else None
            if record is not None and record.draw_keys != draw_keys:
                cache.invalidate(frame_key, "per-draw key mismatch")
                record = None
            if record is not None and needs_image and record.image is None:
                record = None  # captured without images; must resimulate
            if record is not None:
                reuse_span = obs_spans.span("gpu.frame.reuse", "gpu")
                fstats = sim.apply_frame_record(record, frame)
                if reuse_span:
                    reuse_span.set("frame", frame.number)
                    reuse_span.set("frame_key", frame_key)
                    reuse_span.set("draws", len(record.draw_keys))
                    sim._publish_frame_metrics(fstats)
                    reuse_span.__exit__(None, None, None)
                cache._count("hits")
                if report is not None:
                    report.frames_reused += 1
                    report.draws_reused += len(record.draw_keys)
                if needs_image:
                    images.append(copy.deepcopy(record.image))
            else:
                fstats, capture = sim.run_frame_captured(
                    frame,
                    fragment_stages=fragment_stages,
                    capture_image=needs_image,
                )
                cache._count("misses")
                if report is not None:
                    report.frames_simulated += 1
                    report.draws_simulated += len(draw_keys)
                if needs_image:
                    images.append(capture["image"])
                if storable:
                    cache.save(
                        FrameRecord(
                            frame_key=frame_key,
                            draw_keys=draw_keys,
                            fstats=copy.deepcopy(fstats),
                            **capture,
                        )
                    )
            if on_frame is not None:
                on_frame(sim, sim.frames_completed)
    finally:
        if run_span:
            run_span.set("frames", sim.frames_completed)
            run_span.set("start_frame", start_frame)
            run_span.set("frames_reused", cache.hits)
            obs_metrics.registry().gauge("gpu.memory_bytes").set(
                int(sim.memory.total_bytes)
            )
            run_span.__exit__(None, None, None)
    if report is not None:
        report.invalidations = cache.invalidations
    return sim.result(images=images)
