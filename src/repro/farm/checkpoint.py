"""Frame-level checkpoint/resume for simulation jobs.

A simulation is a strict frame-by-frame recurrence: every frame's result
depends on the framebuffer, cache, and statistics state left by the frames
before it.  That makes mid-run sharding impossible but checkpointing easy —
the whole :class:`~repro.gpu.pipeline.GpuSimulator` pickles cleanly, so the
farm snapshots it at frame boundaries and an interrupted run restarts from
the last completed frame instead of frame zero.  Because the snapshot *is*
the complete pipeline state, a resumed run is bit-identical to an
uninterrupted one (covered by ``tests/test_farm.py``).
"""

from __future__ import annotations

import dataclasses

from repro.farm import faults
from repro.farm.job import JobSpec
from repro.farm.store import ArtifactStore
from repro.gpu.pipeline import SimulationResult
from repro.workloads.generator import GameWorkload


def build_job_workload(job: JobSpec) -> GameWorkload:
    """Construct the workload a job measures, honoring its seed override."""
    from repro.workloads.registry import workload as lookup

    spec = lookup(job.workload)
    if job.seed is not None:
        spec = dataclasses.replace(spec, seed=job.seed)
    return GameWorkload(spec, sim=job.sim_profile)


def run_checkpointed(
    job: JobSpec,
    store: ArtifactStore | None,
    checkpoint_every: int = 1,
    on_frame=None,
) -> SimulationResult:
    """Execute a sim/geometry job, checkpointing every N completed frames.

    With a store, an existing checkpoint for this job key is loaded and the
    trace replay skips the frames it already contains.  The checkpoint is
    deleted once the run completes (the artifact supersedes it).
    ``on_frame`` is an extra per-frame hook the tests use to inject
    interrupts.
    """
    workload = build_job_workload(job)
    checkpointing = store is not None and checkpoint_every > 0

    sim = store.load_checkpoint(job) if checkpointing else None
    resume = sim is not None
    if sim is None:
        sim = workload.simulator(job.config)

    if sim.frames_completed >= job.frames:
        result = sim.result()
    else:

        def hook(simulator, frames_done: int) -> None:
            if (
                checkpointing
                and frames_done < job.frames
                and frames_done % checkpoint_every == 0
            ):
                try:
                    store.save_checkpoint(job, simulator)
                except OSError:
                    pass  # full/read-only cache dir: run on without snapshots
            faults.on_frame(job.describe(), frames_done)
            if on_frame is not None:
                on_frame(simulator, frames_done)

        result = sim.run_trace(
            workload.trace(frames=job.frames),
            max_frames=job.frames,
            fragment_stages=job.fragment_stages,
            resume=resume,
            on_frame=hook,
        )

    if checkpointing:
        store.clear_checkpoint(job)
    return result
