"""Frame-level checkpoint/resume and shared-trace resolution for jobs.

A simulation is a strict frame-by-frame recurrence *within* a frame, but
every generated frame opens with a full clear that resets the framebuffer
and drops all cross-frame cache contents, so frame ranges of one timedemo
are independent: the farm shards a run into contiguous slices (see
:meth:`repro.farm.job.JobSpec.shard`) and each worker fast-forwards the API
state machine over the frames before its slice, then simulates only its
own.  Checkpointing stays for recovery inside a slice — the whole
:class:`~repro.gpu.pipeline.GpuSimulator` pickles cleanly, so an
interrupted worker restarts from the last completed frame instead of frame
zero, bit-identically (covered by ``tests/test_farm.py``).

Trace generation is the other shared cost: every shard (and the API run of
the same demo) replays the *same* call stream, so :func:`job_trace`
resolves it through a worker-local LRU and the store's shared trace files
(:meth:`repro.farm.store.ArtifactStore.load_trace`) instead of regenerating
it per job.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.api.trace import Trace
from repro.api.tracer import ApiTracer
from repro.api.stats import WorkloadApiStats
from repro.farm import faults
from repro.farm.job import JobSpec
from repro.farm.store import ArtifactStore
from repro.gpu.pipeline import SimulationResult
from repro.workloads.generator import GameWorkload


def build_job_workload(job: JobSpec) -> GameWorkload:
    """Construct the workload a job measures, honoring its seed override."""
    from repro.workloads.registry import workload as lookup

    spec = lookup(job.workload)
    if job.seed is not None:
        spec = dataclasses.replace(spec, seed=job.seed)
    return GameWorkload(spec, sim=job.sim_profile)


#: Worker-local cache of materialized timedemos, keyed by
#: :meth:`JobSpec.trace_key`.  Lives for the life of the (warm, reused)
#: pool worker, so consecutive shards of one run pay for trace generation
#: or trace-file parsing once, not once per shard.
_TRACE_CACHE: "OrderedDict[str, Trace]" = OrderedDict()
_TRACE_CACHE_MAX = 4


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def job_trace(job: JobSpec, store: ArtifactStore | None = None) -> Trace:
    """The full-length timedemo ``job``'s frame slice is cut from.

    Resolution order: worker-local LRU → the store's shared trace file →
    generate (and publish to the store for the other workers).  A store
    that cannot be written to (full disk, read-only volume) degrades to
    per-worker generation rather than failing the job.
    """
    key = job.trace_key()
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        _TRACE_CACHE.move_to_end(key)
        return trace
    trace = store.load_trace(job) if store is not None else None
    if trace is None:
        trace = build_job_workload(job).trace(frames=job.total_frames)
        trace = trace.materialize()
        if store is not None:
            try:
                store.save_trace(job, trace)
            except OSError:
                pass
    _TRACE_CACHE[key] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


def run_api_job(
    job: JobSpec,
    store: ArtifactStore | None = None,
    trace: Trace | None = None,
) -> WorkloadApiStats:
    """Collect API statistics for ``job``'s frame slice of the shared trace.

    API frames are analyzed with a fresh state machine per frame (see
    :meth:`repro.api.tracer.ApiTracer.frame_stats`), so a slice needs no
    fast-forward at all — just the right frames of the right timedemo.
    """
    workload = build_job_workload(job)
    if trace is None:
        trace = job_trace(job, store)
    if job.is_shard:
        frames = list(trace.frames())
        frames = frames[job.frame_offset : job.frame_offset + job.frames]
        trace = Trace(trace.meta, frames)
    tracer = ApiTracer(workload.programs)
    return tracer.trace_stats(trace, max_frames=job.frames)


def run_checkpointed(
    job: JobSpec,
    store: ArtifactStore | None,
    checkpoint_every: int = 1,
    on_frame=None,
    trace: Trace | None = None,
    incremental: bool = False,
) -> SimulationResult:
    """Execute a sim/geometry job, checkpointing every N completed frames.

    With a store, an existing checkpoint for this job key is loaded and the
    trace replay skips the frames it already contains.  The checkpoint is
    deleted once the run completes (the artifact supersedes it).
    ``on_frame`` is an extra per-frame hook the tests use to inject
    interrupts.

    For a frame shard, the replay fast-forwards the API state machine over
    the ``job.frame_offset`` frames before the slice (no simulation work)
    and then simulates ``job.frames`` frames of the shared timedemo.

    ``incremental=True`` replays the slice through the draw-level content
    cache (:mod:`repro.farm.drawcache`): frames whose keys are already
    recorded apply their stored contributions instead of re-simulating,
    bit-identically.  An execution strategy only — it never changes the
    job's identity, artifact key, or result.
    """
    workload = build_job_workload(job)
    checkpointing = store is not None and checkpoint_every > 0

    sim = store.load_checkpoint(job) if checkpointing else None
    resume = sim is not None
    if sim is None:
        sim = workload.simulator(job.config)

    if sim.frames_completed >= job.frames:
        result = sim.result()
    else:
        if trace is None:
            trace = job_trace(job, store)

        def hook(simulator, frames_done: int) -> None:
            if (
                checkpointing
                and frames_done < job.frames
                and frames_done % checkpoint_every == 0
            ):
                try:
                    store.save_checkpoint(job, simulator)
                except OSError:
                    pass  # full/read-only cache dir: run on without snapshots
            faults.on_frame(job.describe(), frames_done)
            if on_frame is not None:
                on_frame(simulator, frames_done)

        if incremental:
            from repro.farm.drawcache import job_drawcache, run_trace_incremental

            result = run_trace_incremental(
                sim,
                trace,
                job_drawcache(job, store),
                max_frames=job.frames,
                fragment_stages=job.fragment_stages,
                resume=resume,
                start_frame=job.frame_offset,
                on_frame=hook,
            )
        else:
            result = sim.run_trace(
                trace,
                max_frames=job.frames,
                fragment_stages=job.fragment_stages,
                resume=resume,
                start_frame=job.frame_offset,
                on_frame=hook,
            )

    if checkpointing:
        store.clear_checkpoint(job)
    return result
