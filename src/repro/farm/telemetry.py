"""Per-job wall-time, cache, and failure-cause accounting for farm runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observe import metrics as obs_metrics
from repro.observe import spans as obs_spans
from repro.observe.metrics import MetricsRegistry
from repro.util.tables import format_table

#: Registry namespace for phase wall-time counters (seconds).
PHASE_PREFIX = "farm.phase."


@dataclass
class JobRecord:
    """How one job was satisfied."""

    job: str  # JobSpec.describe()
    key: str
    source: str  # "cache" | "parallel" | "serial" | "fallback"
    wall_s: float
    attempts: int = 1
    causes: tuple[str, ...] = ()  # transient failures overcome on the way


@dataclass
class FailureRecord:
    """A job that failed permanently, with its chronological cause chain."""

    job: str
    key: str
    causes: tuple[str, ...] = ()


@dataclass
class FarmTelemetry:
    """Aggregated over one farm invocation (or one Runner lifetime)."""

    records: list[JobRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    #: Phase accounting lives in a metrics registry (one per telemetry
    #: instance by default so concurrent Farms never collide; the ``repro
    #: observe`` CLI passes the process-wide registry in so ``farm status``
    #: lines and metric dumps read the very same counters).
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def add_phase(self, phase: str, seconds: float) -> None:
        """Accumulate seconds for an execution phase: ``spawn`` (pool
        creation), ``trace`` (timedemo generation/parse), ``simulate``
        (pipeline work), ``harvest`` (store reload + validation), ``merge``
        (shard assembly)."""
        self.registry.counter(PHASE_PREFIX + phase).inc(seconds)
        # While tracing, mirror into the process-wide registry so span
        # exports carry phase totals even for a privately-registered farm.
        shared = obs_metrics.registry()
        if obs_spans.enabled() and self.registry is not shared:
            shared.counter(PHASE_PREFIX + phase).inc(seconds)

    @property
    def phases(self) -> dict[str, float]:
        """``{phase: seconds}`` view over the registry (sorted by name)."""
        return {
            name[len(PHASE_PREFIX):]: metric.value
            for name, metric in self.registry.items(PHASE_PREFIX)
        }

    def record(
        self,
        job,
        key: str,
        source: str,
        wall_s: float,
        attempts: int = 1,
        causes: tuple[str, ...] = (),
    ) -> None:
        self.records.append(JobRecord(job, key, source, wall_s, attempts, causes))

    def record_failure(
        self, job, key: str, causes: tuple[str, ...] = ()
    ) -> None:
        self.failures.append(FailureRecord(job, key, causes))

    # -- counters -------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def cache_misses(self) -> int:
        return len(self.records) - self.cache_hits

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    @property
    def retries(self) -> int:
        return sum(r.attempts - 1 for r in self.records)

    @property
    def failed(self) -> int:
        return len(self.failures)

    # -- rendering ------------------------------------------------------
    def summary_line(self) -> str:
        line = (
            f"farm: {len(self.records)} jobs, {self.cache_hits} cache hits, "
            f"{self.cache_misses} executed, {self.retries} retries, "
            f"{self.total_wall_s:.1f}s job wall time"
        )
        if self.failures:
            line += f", {self.failed} FAILED"
        if self.phases:
            line += " [" + " ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(self.phases.items())
            ) + "]"
        return line

    def summary_table(self, title: str = "Farm job summary") -> str:
        rows = [
            [
                r.job,
                r.key[:12],
                r.source,
                f"{r.wall_s:.2f}",
                r.attempts,
                r.causes[-1] if r.causes else "",
            ]
            for r in self.records
        ]
        rows += [
            [
                f.job,
                f.key[:12],
                "FAILED",
                "-",
                len(f.causes),
                f.causes[-1] if f.causes else "",
            ]
            for f in self.failures
        ]
        return format_table(
            ["job", "key", "source", "wall s", "attempts", "last cause"],
            rows,
            title=title,
        )
