"""Execution farm: parallel, cached, resumable, fault-tolerant measurement runs.

Every exhibit in the repository bottoms out in one of three measurement
kinds — API statistics, full-pipeline simulation, or geometry-only
simulation — over one of the twelve Table-I workloads.  The farm turns each
such run into a content-addressed :class:`~repro.farm.job.JobSpec`, executes
batches of jobs across worker processes (:class:`~repro.farm.executor.Farm`),
persists the results in an on-disk :class:`~repro.farm.store.ArtifactStore`
(``.repro-cache/`` by default, ``REPRO_CACHE_DIR`` override), and checkpoints
long simulations frame-by-frame so an interrupted run resumes where it
stopped instead of starting over.

A run larger than the batch is parallel-sharded in *frames*: contiguous
slices of one timedemo execute as independent jobs (every generated frame
opens with a full clear, making frame ranges independent) and are folded
back bit-identically by :mod:`repro.farm.merge`.  Workers are warm — one
process pool lives for the whole :class:`~repro.farm.executor.Farm` — and
results travel zero-copy: workers persist artifacts and return keys, the
parent memory-maps the heavy payloads back in at harvest.

The cache key covers everything that can change a result: workload spec,
seed, frame budget, GPU configuration, and a hash of the ``repro`` source
tree — so stale artifacts are impossible by construction and ``farm clear``
is an optimization, never a correctness requirement.  On top of the key,
every artifact carries a SHA-256 checksum and is re-validated against the
pipeline's conservation invariants (:mod:`repro.farm.invariants`) on load;
corrupt files are quarantined, never reused.  The recovery machinery —
crash/hang/exception retry with deterministic backoff, checkpoint resume,
graceful degradation via ``Farm(strict=False)`` and
:class:`~repro.farm.executor.FailureReport` — is itself exercised by the
seeded fault-injection layer (:mod:`repro.farm.faults`) and the
``repro chaos`` end-to-end suite (:mod:`repro.farm.chaos`).
"""

from repro.farm.executor import (
    FailureReport,
    Farm,
    FarmError,
    JobFailure,
    run_job,
)
from repro.farm.faults import FaultPlan, FaultSpec, TransientFault
from repro.farm.invariants import validate_result
from repro.farm.job import JobSpec, api_job, geometry_job, sim_job
from repro.farm.merge import (
    MergeError,
    merge_api_stats,
    merge_results,
    merge_simulations,
)
from repro.farm.store import ArtifactStore, default_cache_dir
from repro.farm.telemetry import FailureRecord, FarmTelemetry, JobRecord
from repro.farm.version import code_version

__all__ = [
    "ArtifactStore",
    "FailureRecord",
    "FailureReport",
    "Farm",
    "FarmError",
    "FarmTelemetry",
    "FaultPlan",
    "FaultSpec",
    "JobFailure",
    "JobRecord",
    "JobSpec",
    "MergeError",
    "TransientFault",
    "api_job",
    "code_version",
    "default_cache_dir",
    "geometry_job",
    "merge_api_stats",
    "merge_results",
    "merge_simulations",
    "run_job",
    "sim_job",
    "validate_result",
]
