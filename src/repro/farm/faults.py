"""Deterministic fault injection for the execution farm.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries that the
farm's recovery machinery can be tested against: worker crashes, hangs,
transient exceptions, corrupted artifacts and checkpoints, unwritable cache
directories (``ENOSPC``/``EROFS``), and native-kernel compile failures.  The
plan is activated by serializing it into the ``REPRO_FAULTS`` environment
variable, so worker processes spawned by the pool inherit it without any
extra plumbing; once-only semantics (``times``) are accounted with marker
files in a shared state directory, so a fault fires a deterministic number
of times *across* processes, not per process.

This module deliberately imports nothing from the rest of :mod:`repro` at
module level: it is used from both the farm layer and from
``repro.gpu._native`` (the compiled-kernel loader), and a stdlib-only
surface keeps that free of import cycles.

Injection points (all no-ops when no plan is installed):

* :func:`on_job_start` — worker entry (``run_job``): crash / hang /
  transient exception before any work happens;
* :func:`on_frame` — frame boundaries inside checkpointed simulations:
  the same three faults, targeted at a chosen frame index;
* :func:`corrupt_file` — artifact / checkpoint bytes after a successful
  write (truncation or a seeded bit flip, *after* the checksum sidecar is
  written, modelling on-disk corruption);
* :func:`check_writable` — raises ``OSError`` (``ENOSPC`` or ``EROFS``)
  at the top of store writes, modelling a full or read-only cache volume;
* :func:`native_compile_fault` — makes the optional C accelerator report
  itself unbuildable, forcing the pure-Python fallback.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import pathlib
import random
import tempfile
import time
from dataclasses import asdict, dataclass, field

#: Environment variable a serialized plan is installed under (inherited by
#: pool worker processes).
ENV_VAR = "REPRO_FAULTS"

#: Every fault class the injector knows how to perform.
FAULT_KINDS = (
    "crash",  # os._exit(13) — hard worker death, breaks the pool
    "hang",  # sleep for hang_s — exercises the per-round timeout
    "exception",  # raise TransientFault — exercises exception retry
    "corrupt_artifact",  # damage artifact bytes after save
    "corrupt_checkpoint",  # damage checkpoint bytes after save
    "corrupt_trace",  # damage shared-trace bytes after save
    "unwritable",  # store writes raise ENOSPC / EROFS
    "native_compile",  # the C accelerator fails to build/load
)


class TransientFault(RuntimeError):
    """The exception an ``exception`` fault raises (retryable by design)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do, where, and how many times.

    ``match`` is a substring filter on the injection-site label (usually
    ``JobSpec.describe()`` — empty matches everything); ``times`` caps how
    often the fault fires across all processes (``0`` = unlimited);
    ``frame`` restricts crash/hang/exception faults to one frame boundary
    (``None`` restricts them to the job-entry site instead).
    """

    kind: str
    match: str = ""
    times: int = 1
    frame: int | None = None
    hang_s: float = 30.0
    mode: str = "truncate"  # corruption flavor: "truncate" | "bitflip"
    error: str = "ENOSPC"  # unwritable flavor: "ENOSPC" | "EROFS"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded batch of faults plus the shared firing-count state dir."""

    faults: tuple[FaultSpec, ...]
    seed: int = 0
    state_dir: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": self.state_dir,
                "faults": [asdict(spec) for spec in self.faults],
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(blob: str) -> "FaultPlan":
        doc = json.loads(blob)
        return FaultPlan(
            faults=tuple(FaultSpec(**spec) for spec in doc["faults"]),
            seed=doc.get("seed", 0),
            state_dir=doc.get("state_dir", ""),
        )


# -- plan installation -------------------------------------------------------

#: Lazily parsed plan, cached against the raw env value so repeated firing
#: checks in hot paths cost one ``os.environ`` read.
_cached: tuple[str | None, FaultPlan | None] = (None, None)


def active() -> FaultPlan | None:
    """The installed plan, or ``None`` (the overwhelmingly common case)."""
    global _cached
    raw = os.environ.get(ENV_VAR)
    if _cached[0] != raw:
        plan = None
        if raw:
            try:
                plan = FaultPlan.from_json(raw)
            except (ValueError, KeyError, TypeError):
                plan = None  # malformed plan: inject nothing
        _cached = (raw, plan)
    return _cached[1]


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` for this process and every child it spawns.

    Allocates the marker state directory if the plan doesn't carry one.
    """
    if not plan.state_dir:
        plan = FaultPlan(
            plan.faults, plan.seed, tempfile.mkdtemp(prefix="repro-faults-")
        )
    else:
        os.makedirs(plan.state_dir, exist_ok=True)
    os.environ[ENV_VAR] = plan.to_json()
    return plan


def uninstall() -> None:
    os.environ.pop(ENV_VAR, None)


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """Context manager: install ``plan``, yield it, restore the old state."""
    previous = os.environ.get(ENV_VAR)
    installed = install(plan)
    try:
        yield installed
    finally:
        if previous is None:
            uninstall()
        else:
            os.environ[ENV_VAR] = previous


# -- firing ------------------------------------------------------------------


def _claim(plan: FaultPlan, index: int, spec: FaultSpec) -> bool:
    """Atomically claim one firing slot for ``spec`` (cross-process)."""
    if spec.times <= 0:
        return True  # unlimited: no accounting needed
    if not plan.state_dir:
        return False
    for slot in range(spec.times):
        marker = pathlib.Path(plan.state_dir) / f"fired-{index}-{slot}"
        try:
            fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def fire(kind: str, label: str = "", frame: int | None = None) -> FaultSpec | None:
    """Return the first matching, still-armed fault of ``kind``, claiming it.

    ``frame=None`` selects job-entry faults; an integer selects faults
    targeted at exactly that frame boundary.
    """
    plan = active()
    if plan is None:
        return None
    for index, spec in enumerate(plan.faults):
        if spec.kind != kind:
            continue
        if spec.match and spec.match not in label:
            continue
        if (spec.frame is None) != (frame is None):
            continue
        if spec.frame is not None and spec.frame != frame:
            continue
        if _claim(plan, index, spec):
            return spec
    return None


def _perform(spec: FaultSpec | None, label: str) -> None:
    if spec is None:
        return
    if spec.kind == "crash":
        os._exit(13)
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return
    if spec.kind == "exception":
        raise TransientFault(f"injected transient fault at {label!r}")


def on_job_start(label: str) -> None:
    """Crash / hang / transient-exception injection at worker entry."""
    if active() is None:
        return
    for kind in ("crash", "hang", "exception"):
        _perform(fire(kind, label), label)


def on_frame(label: str, frame: int) -> None:
    """The same three faults, at a simulation frame boundary."""
    if active() is None:
        return
    for kind in ("crash", "hang", "exception"):
        _perform(fire(kind, label, frame=frame), label)


def corrupt_file(kind: str, path: pathlib.Path, label: str = "") -> bool:
    """Damage ``path`` in place if a matching corruption fault is armed.

    ``truncate`` keeps the first half of the file; ``bitflip`` flips one
    bit at a position drawn deterministically from the plan seed and the
    file name.  Returns whether corruption happened.
    """
    plan = active()
    if plan is None:
        return False
    spec = fire(kind, label or path.name)
    if spec is None:
        return False
    try:
        data = path.read_bytes()
    except OSError:
        return False
    if not data:
        return False
    if spec.mode == "bitflip":
        rng = random.Random(f"{plan.seed}:{path.name}")
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 << rng.randrange(8))
        data = data[:position] + bytes([flipped]) + data[position + 1 :]
    else:
        data = data[: len(data) // 2]
    try:
        path.write_bytes(data)
    except OSError:
        return False
    return True


def check_writable(label: str = "") -> None:
    """Raise ``OSError`` if an ``unwritable`` fault is armed for ``label``."""
    if active() is None:
        return
    spec = fire("unwritable", label)
    if spec is None:
        return
    code = errno.EROFS if spec.error == "EROFS" else errno.ENOSPC
    raise OSError(code, f"injected {spec.error} fault: {os.strerror(code)}")


def native_compile_fault() -> bool:
    """Whether the native-kernel build is currently fault-disabled."""
    return active() is not None and fire("native_compile", "native") is not None


def reset_native_if_planned() -> None:
    """Re-probe the native accelerator when a plan targets its build.

    Pool workers are usually forked, so they inherit the parent's cached
    probe result; clearing it at worker entry lets a ``native_compile``
    fault take effect inside the worker regardless of parent state.
    """
    plan = active()
    if plan is None or not any(s.kind == "native_compile" for s in plan.faults):
        return
    from repro.gpu import _native

    _native._reset()
