"""Persistent, content-addressed artifact store for measurement results.

Layout under the cache root (``.repro-cache/`` by default,
``REPRO_CACHE_DIR`` override)::

    artifacts/<key>.pkl     pickled WorkloadApiStats / SimulationResult
    artifacts/<key>.json    metadata sidecar (job, wall time, code version)
    checkpoints/<key>.ckpt  pickled mid-run simulator state (sim jobs)

Writes are atomic (temp file + ``os.replace``) so a killed process never
leaves a half-written artifact, and keys embed the full invalidation
surface (see :meth:`repro.farm.job.JobSpec.key`), so a load either returns
the exact result the job would recompute or nothing.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import tempfile
import time
from typing import Any

from repro.farm.job import JobSpec
from repro.farm.version import code_version

#: Default cache directory name, relative to the current working directory.
DEFAULT_DIRNAME = ".repro-cache"


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root: ``REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return pathlib.Path(override) if override else pathlib.Path(DEFAULT_DIRNAME)


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Disk cache keyed by job content hash, with hit/miss accounting."""

    def __init__(self, root: pathlib.Path | str | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- paths ----------------------------------------------------------
    @property
    def artifact_dir(self) -> pathlib.Path:
        return self.root / "artifacts"

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.root / "checkpoints"

    def artifact_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.pkl"

    def meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.json"

    def checkpoint_path(self, job: JobSpec) -> pathlib.Path:
        return self.checkpoint_dir / f"{job.key()}.ckpt"

    # -- artifacts ------------------------------------------------------
    def load(self, job: JobSpec) -> Any | None:
        """The stored result for ``job``, or ``None`` on miss/corruption."""
        path = self.artifact_path(job)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, job: JobSpec, result: Any, wall_s: float | None = None) -> None:
        _atomic_write(
            self.artifact_path(job), pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )
        meta = {
            "key": job.key(),
            "kind": job.kind,
            "workload": job.workload,
            "frames": job.frames,
            "seed": job.seed,
            "wall_s": wall_s,
            "code": code_version(),
            "created": time.time(),
        }
        _atomic_write(self.meta_path(job), json.dumps(meta, indent=1).encode())

    def contains(self, job: JobSpec) -> bool:
        return self.artifact_path(job).exists()

    # -- checkpoints ----------------------------------------------------
    def load_checkpoint(self, job: JobSpec) -> Any | None:
        path = self.checkpoint_path(job)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def save_checkpoint(self, job: JobSpec, state: Any) -> None:
        _atomic_write(
            self.checkpoint_path(job),
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def clear_checkpoint(self, job: JobSpec) -> None:
        try:
            self.checkpoint_path(job).unlink()
        except OSError:
            pass

    # -- inspection / maintenance ---------------------------------------
    def entries(self) -> list[dict]:
        """Metadata for every stored artifact, newest first."""
        metas: list[dict] = []
        if not self.artifact_dir.is_dir():
            return metas
        for path in self.artifact_dir.glob("*.json"):
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            pkl = path.with_suffix(".pkl")
            meta["bytes"] = pkl.stat().st_size if pkl.exists() else 0
            metas.append(meta)
        metas.sort(key=lambda m: m.get("created") or 0, reverse=True)
        return metas

    def checkpoints(self) -> list[pathlib.Path]:
        if not self.checkpoint_dir.is_dir():
            return []
        return sorted(self.checkpoint_dir.glob("*.ckpt"))

    def total_bytes(self) -> int:
        return sum(m["bytes"] for m in self.entries())

    def clear(self) -> int:
        """Delete every artifact and checkpoint; returns files removed."""
        removed = 0
        for directory in (self.artifact_dir, self.checkpoint_dir):
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
