"""Persistent, content-addressed artifact store for measurement results.

Layout under the cache root (``.repro-cache/`` by default,
``REPRO_CACHE_DIR`` override)::

    artifacts/<key>.pkl        pickled WorkloadApiStats / SimulationResult
    artifacts/<key>.json       metadata sidecar (job, wall time, SHA-256)
    checkpoints/<key>.ckpt     pickled mid-run simulator state (sim jobs)
    checkpoints/<key>.meta.json  checkpoint SHA-256 sidecar
    quarantine/                corrupt files moved aside, never reused

Writes are atomic (temp file + ``os.replace``) so a killed process never
leaves a half-written artifact, and keys embed the full invalidation
surface (see :meth:`repro.farm.job.JobSpec.key`), so a load either returns
the exact result the job would recompute or nothing.

Loads trust nothing: the pickle bytes are checked against the SHA-256
recorded in the sidecar at save time, decoding catches the whole family of
exceptions truncated or garbage bytes can raise, and decoded results are
passed through :func:`repro.farm.invariants.validate_result`.  Anything
that fails is moved into ``quarantine/`` (with the reason logged) and
reported as a miss — corruption is preserved as evidence and recomputed
around, never silently reused and never silently deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from typing import Any

from repro.farm import faults
from repro.farm.invariants import validate_result
from repro.farm.job import JobSpec
from repro.farm.version import code_version

#: Default cache directory name, relative to the current working directory.
DEFAULT_DIRNAME = ".repro-cache"

#: Everything unpickling truncated/garbage/foreign bytes is known to raise.
#: ``MemoryError`` belongs here: a corrupted length prefix can demand an
#: absurd allocation long before any opcode fails to parse.
UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ValueError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    MemoryError,
    UnicodeDecodeError,
)


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root: ``REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return pathlib.Path(override) if override else pathlib.Path(DEFAULT_DIRNAME)


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Disk cache keyed by job content hash, with hit/miss accounting."""

    def __init__(self, root: pathlib.Path | str | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # -- paths ----------------------------------------------------------
    @property
    def artifact_dir(self) -> pathlib.Path:
        return self.root / "artifacts"

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.root / "checkpoints"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    def artifact_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.pkl"

    def meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.json"

    def checkpoint_path(self, job: JobSpec) -> pathlib.Path:
        return self.checkpoint_dir / f"{job.key()}.ckpt"

    def checkpoint_meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.checkpoint_dir / f"{job.key()}.meta.json"

    # -- quarantine ------------------------------------------------------
    def quarantine(self, paths: list[pathlib.Path], reason: str) -> None:
        """Move corrupt files aside so they are never loaded again.

        Best effort by design: on an unwritable volume the files cannot be
        moved *or* deleted, but the caller already treats them as a miss,
        and the checksum/decode gauntlet will reject them again next time.
        """
        self.quarantined += 1
        names = [p.name for p in paths if p.exists()]
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        for path in paths:
            try:
                if path.exists():
                    os.replace(path, self.quarantine_dir / path.name)
            except OSError:
                pass
        try:
            with (self.quarantine_dir / "REASONS.log").open("a") as log:
                log.write(f"{time.time():.0f} {','.join(names) or '?'}: {reason}\n")
        except OSError:
            pass

    def quarantined_files(self) -> list[pathlib.Path]:
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            p for p in self.quarantine_dir.iterdir() if p.name != "REASONS.log"
        )

    # -- artifacts ------------------------------------------------------
    def _read_meta(self, job: JobSpec) -> dict:
        try:
            return json.loads(self.meta_path(job).read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def load(self, job: JobSpec, validate: bool = True) -> Any | None:
        """The stored result for ``job``, or ``None`` on miss/corruption.

        Corrupt or invariant-violating artifacts are quarantined (see
        :meth:`quarantine`) — a bad artifact is never returned and never
        left in place to be trusted by a later load.
        """
        path = self.artifact_path(job)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        meta = self._read_meta(job)
        expected = meta.get("sha256")
        if expected is not None:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != expected:
                self.quarantine(
                    [path, self.meta_path(job)],
                    f"artifact checksum mismatch ({digest[:12]} != "
                    f"{expected[:12]}) for {job.describe()}",
                )
                self.misses += 1
                return None
        try:
            result = pickle.loads(blob)
        except UNPICKLE_ERRORS as exc:
            self.quarantine(
                [path, self.meta_path(job)],
                f"artifact undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            self.misses += 1
            return None
        if validate:
            violations = validate_result(job, result)
            if violations:
                self.quarantine(
                    [path, self.meta_path(job)],
                    f"artifact invariant violation for {job.describe()}: "
                    + "; ".join(violations),
                )
                self.misses += 1
                return None
        self.hits += 1
        return result

    def save(self, job: JobSpec, result: Any, wall_s: float | None = None) -> None:
        faults.check_writable(f"artifact:{job.describe()}")
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.artifact_path(job), blob)
        meta = {
            "key": job.key(),
            "kind": job.kind,
            "workload": job.workload,
            "frames": job.frames,
            "seed": job.seed,
            "wall_s": wall_s,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "code": code_version(),
            "created": time.time(),
        }
        _atomic_write(self.meta_path(job), json.dumps(meta, indent=1).encode())
        faults.corrupt_file(
            "corrupt_artifact", self.artifact_path(job), job.describe()
        )

    def contains(self, job: JobSpec) -> bool:
        return self.artifact_path(job).exists()

    # -- checkpoints ----------------------------------------------------
    def load_checkpoint(self, job: JobSpec) -> Any | None:
        """The checkpointed simulator for ``job``, or ``None``.

        Verified against the SHA-256 sidecar like artifacts; a corrupt
        checkpoint is quarantined and the caller restarts from frame zero
        (which is always correct, just slower).
        """
        path = self.checkpoint_path(job)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        expected = None
        try:
            expected = json.loads(self.checkpoint_meta_path(job).read_text()).get(
                "sha256"
            )
        except (OSError, json.JSONDecodeError):
            pass
        if expected is not None and hashlib.sha256(blob).hexdigest() != expected:
            self.quarantine(
                [path, self.checkpoint_meta_path(job)],
                f"checkpoint checksum mismatch for {job.describe()}",
            )
            return None
        try:
            return pickle.loads(blob)
        except UNPICKLE_ERRORS as exc:
            self.quarantine(
                [path, self.checkpoint_meta_path(job)],
                f"checkpoint undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            return None

    def save_checkpoint(self, job: JobSpec, state: Any) -> None:
        faults.check_writable(f"checkpoint:{job.describe()}")
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.checkpoint_path(job), blob)
        meta = {"sha256": hashlib.sha256(blob).hexdigest(), "created": time.time()}
        _atomic_write(self.checkpoint_meta_path(job), json.dumps(meta).encode())
        faults.corrupt_file(
            "corrupt_checkpoint", self.checkpoint_path(job), job.describe()
        )

    def clear_checkpoint(self, job: JobSpec) -> None:
        for path in (self.checkpoint_path(job), self.checkpoint_meta_path(job)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- inspection / maintenance ---------------------------------------
    def entries(self) -> list[dict]:
        """Metadata for every stored artifact, newest first."""
        metas: list[dict] = []
        if not self.artifact_dir.is_dir():
            return metas
        for path in self.artifact_dir.glob("*.json"):
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            pkl = path.with_suffix(".pkl")
            meta["bytes"] = pkl.stat().st_size if pkl.exists() else 0
            metas.append(meta)
        metas.sort(key=lambda m: m.get("created") or 0, reverse=True)
        return metas

    def checkpoints(self) -> list[pathlib.Path]:
        if not self.checkpoint_dir.is_dir():
            return []
        return sorted(self.checkpoint_dir.glob("*.ckpt"))

    def total_bytes(self) -> int:
        return sum(m["bytes"] for m in self.entries())

    def clear(self) -> int:
        """Delete every artifact, checkpoint, and quarantined file."""
        removed = 0
        for directory in (
            self.artifact_dir,
            self.checkpoint_dir,
            self.quarantine_dir,
        ):
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
