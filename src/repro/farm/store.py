"""Persistent, content-addressed artifact store for measurement results.

Layout under the cache root (``.repro-cache/`` by default,
``REPRO_CACHE_DIR`` override)::

    artifacts/<key>.pkl        pickled WorkloadApiStats / SimulationResult
    artifacts/<key>.json       metadata sidecar (job, wall time, SHA-256)
    artifacts/<key>.npy        rendered frames, stripped out of the pickle
                               and memory-mapped back in on load
    checkpoints/<key>.ckpt     pickled mid-run simulator state (sim jobs)
    checkpoints/<key>.meta.json  checkpoint SHA-256 sidecar
    traces/<tkey>.jsonl        generated API trace, shared by every job and
                               frame shard that replays the same timedemo
    traces/<tkey>.meta.json    trace SHA-256 / frame-count sidecar
    drawcache/<fkey>.pkl       draw-level frame records for incremental
                               simulation (+ ``.json`` SHA-256 sidecars,
                               see :mod:`repro.farm.drawcache`)
    quarantine/                corrupt files moved aside, never reused

Rendered frames dominate artifact size, so :meth:`save` splits them into a
plain ``.npy`` sidecar and :meth:`load` reattaches them as views of one
``numpy.load(mmap_mode="r")`` array: pool workers ship back kilobytes of
counters over the result pipe while the parent pages frame data straight
from the cache file — the farm's zero-copy result transport.

Writes are atomic (temp file + ``os.replace``) so a killed process never
leaves a half-written artifact, and keys embed the full invalidation
surface (see :meth:`repro.farm.job.JobSpec.key`), so a load either returns
the exact result the job would recompute or nothing.

Loads trust nothing: the pickle bytes are checked against the SHA-256
recorded in the sidecar at save time, decoding catches the whole family of
exceptions truncated or garbage bytes can raise, and decoded results are
passed through :func:`repro.farm.invariants.validate_result`.  Anything
that fails is moved into ``quarantine/`` (with the reason logged) and
reported as a miss — corruption is preserved as evidence and recomputed
around, never silently reused and never silently deleted.

Capacity is managed by :meth:`ArtifactStore.enforce_quota`: artifact
families are evicted least-recently-used first (recency = meta mtime,
refreshed on every load hit) until the cache fits a byte budget, skipping
pinned keys and never touching ``quarantine/``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pathlib
import pickle
import tempfile
import time
from typing import Any

import numpy as np

from repro.api import trace as trace_io
from repro.farm import faults
from repro.farm.invariants import validate_result
from repro.farm.job import JobSpec
from repro.farm.locks import FileLock, LockTimeout
from repro.farm.version import code_version

#: Default cache directory name, relative to the current working directory.
DEFAULT_DIRNAME = ".repro-cache"

#: Everything unpickling truncated/garbage/foreign bytes is known to raise.
#: ``MemoryError`` belongs here: a corrupted length prefix can demand an
#: absurd allocation long before any opcode fails to parse.
UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ValueError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    MemoryError,
    UnicodeDecodeError,
)


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache root: ``REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return pathlib.Path(override) if override else pathlib.Path(DEFAULT_DIRNAME)


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Disk cache keyed by job content hash, with hit/miss accounting."""

    def __init__(self, root: pathlib.Path | str | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # -- paths ----------------------------------------------------------
    @property
    def artifact_dir(self) -> pathlib.Path:
        return self.root / "artifacts"

    @property
    def checkpoint_dir(self) -> pathlib.Path:
        return self.root / "checkpoints"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    @property
    def trace_dir(self) -> pathlib.Path:
        return self.root / "traces"

    @property
    def drawcache_dir(self) -> pathlib.Path:
        """Draw-level frame records (see :mod:`repro.farm.drawcache`)."""
        return self.root / "drawcache"

    def artifact_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.pkl"

    def meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.json"

    def images_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.npy"

    def trace_path(self, job: JobSpec) -> pathlib.Path:
        return self.trace_dir / f"{job.trace_key()}.jsonl"

    def trace_meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.trace_dir / f"{job.trace_key()}.meta.json"

    def checkpoint_path(self, job: JobSpec) -> pathlib.Path:
        return self.checkpoint_dir / f"{job.key()}.ckpt"

    def checkpoint_meta_path(self, job: JobSpec) -> pathlib.Path:
        return self.checkpoint_dir / f"{job.key()}.meta.json"

    def spans_path(self, job: JobSpec) -> pathlib.Path:
        return self.artifact_dir / f"{job.key()}.spans.jsonl"

    # -- cross-process locking ------------------------------------------
    def lock(self, name: str = "store", timeout: float | None = 30.0) -> FileLock:
        """An advisory cross-process lock scoped to this store.

        One ``.repro-cache`` is routinely shared by a serve instance and
        CLI runs; multi-file critical sections (quota eviction, quarantine
        moves, drawcache record+sidecar pairs, journal appends) take one of
        these so they never interleave across processes.  ``name`` selects
        the lock file (``journal`` > ``drawcache`` > ``trace`` > ``store``
        in acquisition order — see :mod:`repro.farm.locks` for the
        hierarchy rules).
        """
        return FileLock(self.root / "locks" / f"{name}.lock", timeout=timeout)

    # -- quarantine ------------------------------------------------------
    def quarantine(self, paths: list[pathlib.Path], reason: str) -> None:
        """Move corrupt files aside so they are never loaded again.

        Best effort by design: on an unwritable volume the files cannot be
        moved *or* deleted, but the caller already treats them as a miss,
        and the checksum/decode gauntlet will reject them again next time.
        The store lock keeps the move + ``REASONS.log`` append atomic
        against concurrent eviction in another process — but a lock that
        cannot be acquired never blocks the quarantine itself.
        """
        self.quarantined += 1
        guard: FileLock | None = self.lock("store", timeout=5.0)
        try:
            guard.acquire()
        except OSError:
            guard = None  # quarantine must proceed regardless
        try:
            names = [p.name for p in paths if p.exists()]
            try:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            except OSError:
                return
            for path in paths:
                try:
                    if path.exists():
                        os.replace(path, self.quarantine_dir / path.name)
                except OSError:
                    pass
            try:
                with (self.quarantine_dir / "REASONS.log").open("a") as log:
                    log.write(
                        f"{time.time():.0f} {','.join(names) or '?'}: {reason}\n"
                    )
            except OSError:
                pass
        finally:
            if guard is not None:
                guard.release()

    def quarantined_files(self) -> list[pathlib.Path]:
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            p for p in self.quarantine_dir.iterdir() if p.name != "REASONS.log"
        )

    # -- artifacts ------------------------------------------------------
    def _read_meta(self, job: JobSpec) -> dict:
        try:
            return json.loads(self.meta_path(job).read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def load(self, job: JobSpec, validate: bool = True) -> Any | None:
        """The stored result for ``job``, or ``None`` on miss/corruption.

        Corrupt or invariant-violating artifacts are quarantined (see
        :meth:`quarantine`) — a bad artifact is never returned and never
        left in place to be trusted by a later load.
        """
        path = self.artifact_path(job)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        meta = self._read_meta(job)
        expected = meta.get("sha256")
        if expected is not None:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != expected:
                self.quarantine(
                    [path, self.meta_path(job)],
                    f"artifact checksum mismatch ({digest[:12]} != "
                    f"{expected[:12]}) for {job.describe()}",
                )
                self.misses += 1
                return None
        try:
            result = pickle.loads(blob)
        except UNPICKLE_ERRORS as exc:
            self.quarantine(
                [path, self.meta_path(job)],
                f"artifact undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            self.misses += 1
            return None
        images_meta = meta.get("images")
        if images_meta:
            result = self._attach_images(job, result, images_meta)
            if result is None:
                self.misses += 1
                return None
        if validate:
            violations = validate_result(job, result)
            if violations:
                self.quarantine(
                    [path, self.meta_path(job)],
                    f"artifact invariant violation for {job.describe()}: "
                    + "; ".join(violations),
                )
                self.misses += 1
                return None
        self.hits += 1
        self._touch(job)
        return result

    def _touch(self, job: JobSpec) -> None:
        """Refresh the family's recency (LRU order keys off the meta mtime)."""
        try:
            os.utime(self.meta_path(job))
        except OSError:
            pass

    def _attach_images(self, job: JobSpec, result: Any, images_meta: dict):
        """Reattach the ``.npy`` frame sidecar as memory-mapped views.

        Any failure — missing file, checksum mismatch, undecodable array,
        wrong frame count — quarantines the whole artifact family and
        reports a miss, so a damaged mapped file degrades to a recompute
        instead of a crash (or worse, silently wrong pixels) later when
        the pages are actually touched.
        """
        family = [
            self.artifact_path(job),
            self.meta_path(job),
            self.images_path(job),
        ]
        npy = self.images_path(job)
        try:
            blob = npy.read_bytes()
        except OSError:
            self.quarantine(
                family, f"image sidecar missing for {job.describe()}"
            )
            return None
        digest = hashlib.sha256(blob).hexdigest()
        expected = images_meta.get("sha256")
        if expected is not None and digest != expected:
            self.quarantine(
                family,
                f"image sidecar checksum mismatch ({digest[:12]} != "
                f"{expected[:12]}) for {job.describe()}",
            )
            return None
        try:
            stacked = np.load(npy, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            self.quarantine(
                family,
                f"image sidecar undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            return None
        if len(stacked) != images_meta.get("count", len(stacked)):
            self.quarantine(
                family, f"image sidecar frame count wrong for {job.describe()}"
            )
            return None
        return dataclasses.replace(
            result, images=[stacked[i] for i in range(len(stacked))]
        )

    @staticmethod
    def _detach_images(result: Any):
        """Split uniform rendered frames off a result for ``.npy`` storage.

        Returns ``(slim_result, stacked_array | None)``; results without
        images (or with ragged shapes, which ``np.stack`` can't express)
        are stored whole.
        """
        images = getattr(result, "images", None)
        if not images:
            return result, None
        if len({(a.shape, a.dtype.str) for a in images}) != 1:
            return result, None
        return dataclasses.replace(result, images=[]), np.stack(images)

    def save(self, job: JobSpec, result: Any, wall_s: float | None = None) -> None:
        faults.check_writable(f"artifact:{job.describe()}")
        slim, stacked = self._detach_images(result)
        blob = pickle.dumps(slim, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.artifact_path(job), blob)
        meta = {
            "key": job.key(),
            "kind": job.kind,
            "workload": job.workload,
            "frames": job.frames,
            "seed": job.seed,
            "wall_s": wall_s,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "code": code_version(),
            "created": time.time(),
        }
        if stacked is None:
            # A re-save must not leave a stale sidecar to be reattached.
            try:
                self.images_path(job).unlink()
            except OSError:
                pass
        else:
            buffer = io.BytesIO()
            np.save(buffer, stacked, allow_pickle=False)
            image_blob = buffer.getvalue()
            _atomic_write(self.images_path(job), image_blob)
            meta["images"] = {
                "sha256": hashlib.sha256(image_blob).hexdigest(),
                "count": int(stacked.shape[0]),
            }
        _atomic_write(self.meta_path(job), json.dumps(meta, indent=1).encode())
        faults.corrupt_file(
            "corrupt_artifact", self.artifact_path(job), job.describe()
        )

    def contains(self, job: JobSpec) -> bool:
        return self.artifact_path(job).exists()

    # -- span sidecars ---------------------------------------------------
    def save_spans(self, job: JobSpec, payload: dict) -> None:
        """Persist a worker's span-buffer payload next to the artifact.

        Format: one JSON header line (track identity, metrics snapshot,
        span count, SHA-256 of the span body), then one JSON span per
        line.  Best effort — observability must never fail a job, so
        write errors are swallowed.
        """
        spans = payload.get("spans", [])
        body = "".join(
            json.dumps(doc, sort_keys=True) + "\n" for doc in spans
        )
        head = {k: v for k, v in payload.items() if k != "spans"}
        head["count"] = len(spans)
        head["sha256"] = hashlib.sha256(body.encode()).hexdigest()
        text = json.dumps(head, sort_keys=True) + "\n" + body
        try:
            _atomic_write(self.spans_path(job), text.encode())
        except OSError:
            pass

    def load_spans(self, job: JobSpec) -> dict | None:
        """Load and verify a span sidecar; quarantine and None on corruption."""
        path = self.spans_path(job)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            head_line, _, body = text.partition("\n")
            head = json.loads(head_line)
            digest = hashlib.sha256(body.encode()).hexdigest()
            if digest != head.get("sha256"):
                raise ValueError("span sidecar checksum mismatch")
            spans = [json.loads(line) for line in body.splitlines() if line]
            if len(spans) != head.get("count"):
                raise ValueError("span sidecar count mismatch")
        except (ValueError, TypeError, KeyError) as exc:
            self.quarantine([path], f"span sidecar: {exc}")
            return None
        head.pop("sha256", None)
        head.pop("count", None)
        head["spans"] = spans
        return head

    # -- checkpoints ----------------------------------------------------
    def load_checkpoint(self, job: JobSpec) -> Any | None:
        """The checkpointed simulator for ``job``, or ``None``.

        Verified against the SHA-256 sidecar like artifacts; a corrupt
        checkpoint is quarantined and the caller restarts from frame zero
        (which is always correct, just slower).
        """
        path = self.checkpoint_path(job)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        expected = None
        try:
            expected = json.loads(self.checkpoint_meta_path(job).read_text()).get(
                "sha256"
            )
        except (OSError, json.JSONDecodeError):
            pass
        if expected is not None and hashlib.sha256(blob).hexdigest() != expected:
            self.quarantine(
                [path, self.checkpoint_meta_path(job)],
                f"checkpoint checksum mismatch for {job.describe()}",
            )
            return None
        try:
            return pickle.loads(blob)
        except UNPICKLE_ERRORS as exc:
            self.quarantine(
                [path, self.checkpoint_meta_path(job)],
                f"checkpoint undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            return None

    def save_checkpoint(self, job: JobSpec, state: Any) -> None:
        faults.check_writable(f"checkpoint:{job.describe()}")
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.checkpoint_path(job), blob)
        meta = {"sha256": hashlib.sha256(blob).hexdigest(), "created": time.time()}
        _atomic_write(self.checkpoint_meta_path(job), json.dumps(meta).encode())
        faults.corrupt_file(
            "corrupt_checkpoint", self.checkpoint_path(job), job.describe()
        )

    def clear_checkpoint(self, job: JobSpec) -> None:
        for path in (self.checkpoint_path(job), self.checkpoint_meta_path(job)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- shared traces --------------------------------------------------
    def load_trace(self, job: JobSpec):
        """The stored timedemo this job replays a slice of, or ``None``.

        Keyed by :meth:`repro.farm.job.JobSpec.trace_key`, so every frame
        shard of a run — and every kind sharing a profile — resolves to
        the same file.  Verified and quarantined like artifacts.
        """
        path = self.trace_path(job)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        meta_path = self.trace_meta_path(job)
        expected = None
        try:
            expected = json.loads(meta_path.read_text()).get("sha256")
        except (OSError, json.JSONDecodeError):
            pass
        if expected is not None and hashlib.sha256(blob).hexdigest() != expected:
            self.quarantine(
                [path, meta_path],
                f"trace checksum mismatch for {job.describe()}",
            )
            return None
        try:
            trace = trace_io.load_trace(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.quarantine(
                [path, meta_path],
                f"trace undecodable ({type(exc).__name__}: {exc}) "
                f"for {job.describe()}",
            )
            return None
        if trace.meta.frame_count < job.total_frames:
            self.quarantine(
                [path, meta_path],
                f"trace too short ({trace.meta.frame_count} < "
                f"{job.total_frames} frames) for {job.describe()}",
            )
            return None
        return trace

    def save_trace(self, job: JobSpec, trace) -> None:
        """Persist a generated timedemo for other workers/shards to replay.

        The trace and its checksum sidecar are two files: the trace lock
        keeps the pair coherent when several processes generate the same
        workload concurrently (a trace from one writer paired with the
        other's sidecar would checksum-fail and be quarantined on load).
        Best effort — a busy lock degrades to the unlocked write rather
        than failing the job that produced the trace.
        """
        faults.check_writable(f"trace:{job.describe()}")
        guard: FileLock | None = self.lock("trace", timeout=10.0)
        try:
            guard.acquire()
        except OSError:
            guard = None
        try:
            path = self.trace_path(job)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            os.close(fd)
            try:
                trace_io.save_trace(trace, tmp)
                digest = hashlib.sha256(
                    pathlib.Path(tmp).read_bytes()
                ).hexdigest()
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            meta = {
                "sha256": digest,
                "frames": trace.meta.frame_count,
                "workload": job.workload,
                "created": time.time(),
            }
            _atomic_write(self.trace_meta_path(job), json.dumps(meta).encode())
        finally:
            if guard is not None:
                guard.release()
        faults.corrupt_file("corrupt_trace", path, job.describe())

    def contains_trace(self, job: JobSpec) -> bool:
        return self.trace_path(job).exists()

    # -- inspection / maintenance ---------------------------------------
    def entries(self) -> list[dict]:
        """Metadata for every stored artifact, newest first."""
        metas: list[dict] = []
        if not self.artifact_dir.is_dir():
            return metas
        for path in self.artifact_dir.glob("*.json"):
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            meta["bytes"] = sum(
                side.stat().st_size
                for side in (path.with_suffix(".pkl"), path.with_suffix(".npy"))
                if side.exists()
            )
            metas.append(meta)
        metas.sort(key=lambda m: m.get("created") or 0, reverse=True)
        return metas

    def checkpoints(self) -> list[pathlib.Path]:
        if not self.checkpoint_dir.is_dir():
            return []
        return sorted(self.checkpoint_dir.glob("*.ckpt"))

    def total_bytes(self) -> int:
        return sum(m["bytes"] for m in self.entries())

    # -- quota / LRU eviction -------------------------------------------
    def families(self) -> list[dict]:
        """Every artifact family, least-recently-used first.

        A *family* is one job key's files (``.pkl`` + ``.json`` meta +
        optional ``.npy`` frames and ``.spans.jsonl`` sidecar).  Recency is
        the meta file's mtime: written at save time and refreshed by
        :meth:`_touch` on every successful load, so sorting by it is LRU
        order.  Quarantined files are not families — they are evidence,
        never candidates for reuse *or* eviction.
        """
        if not self.artifact_dir.is_dir():
            return []
        families = []
        for meta_path in self.artifact_dir.glob("*.json"):
            key = meta_path.stem
            paths = [
                meta_path,
                meta_path.with_suffix(".pkl"),
                meta_path.with_suffix(".npy"),
                self.artifact_dir / f"{key}.spans.jsonl",
            ]
            present = [p for p in paths if p.exists()]
            try:
                used = meta_path.stat().st_mtime
            except OSError:
                continue
            families.append(
                {
                    "key": key,
                    "paths": present,
                    "bytes": sum(p.stat().st_size for p in present),
                    "last_used": used,
                }
            )
        families.sort(key=lambda f: (f["last_used"], f["key"]))
        return families

    def enforce_quota(
        self, max_bytes: int, pinned: frozenset | set | tuple = ()
    ) -> list[str]:
        """Evict least-recently-used artifact families down to ``max_bytes``.

        Families whose key is in ``pinned`` (e.g. jobs a serve instance
        still has queued, running, or published) are never evicted, and the
        quarantine directory is never touched — a quarantined family stays
        quarantined.  Eviction *deletes* (it is reclaiming space from valid
        artifacts, not preserving evidence).  Returns the evicted keys.

        Runs under the store lock, and re-checks each family's recency
        immediately before unlinking: recency is read from meta mtimes when
        the candidate list is built, so without the re-check a concurrent
        load could touch a family *after* it was selected and still lose it
        — the classic check-then-act race.  A family whose meta mtime moved
        past the snapshot is skipped this round (it is recently used now).
        If the lock cannot be acquired another process is already managing
        the quota; this call backs off and evicts nothing.
        """
        pinned = set(pinned)
        try:
            guard = self.lock("store").acquire()
        except LockTimeout:
            return []
        try:
            families = self.families()
            total = sum(f["bytes"] for f in families)
            evicted: list[str] = []
            for family in families:
                if total <= max_bytes:
                    break
                if family["key"] in pinned:
                    continue
                meta_path = self.artifact_dir / f"{family['key']}.json"
                try:
                    if meta_path.stat().st_mtime > family["last_used"]:
                        continue  # touched since the snapshot: now recent
                except OSError:
                    pass  # meta already gone; reclaim the leftovers
                for path in family["paths"]:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                total -= family["bytes"]
                evicted.append(family["key"])
            return evicted
        finally:
            guard.release()

    def clear(self) -> int:
        """Delete every artifact, checkpoint, and quarantined file."""
        removed = 0
        for directory in (
            self.artifact_dir,
            self.checkpoint_dir,
            self.trace_dir,
            self.drawcache_dir,
            self.quarantine_dir,
        ):
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
