"""Source-tree fingerprint used to invalidate cached artifacts.

A cached measurement is only reusable if the code that produced it still
behaves identically, and "did the simulator change?" is undecidable in
general — so the farm takes the conservative fingerprint: a digest over the
contents of every ``repro`` source file.  Any edit anywhere in the package
flushes the cache, which costs one cold run and can never serve a stale
number.
"""

from __future__ import annotations

import hashlib
import pathlib
from functools import lru_cache


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hex digest over every ``.py`` file in the ``repro`` package."""
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]
