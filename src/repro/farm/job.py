"""Content-addressed description of one measurement run.

A :class:`JobSpec` captures everything that determines a run's output:
the measurement kind, the workload, the frame budget, the seed, and any
GPU-configuration override.  Its :meth:`~JobSpec.key` folds those together
with the registered workload spec (so recalibrating an engine invalidates
its artifacts) and the source-tree fingerprint (so code changes do too)
into the hash the artifact store files results under.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass

from repro.farm.version import code_version
from repro.gpu.config import GpuConfig

#: The three measurement kinds every exhibit bottoms out in.
KINDS = ("api", "sim", "geometry")


def _canonical(value):
    """JSON-serializable canonical form of specs/configs for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, float):
        return repr(value)
    return value


@dataclass(frozen=True)
class JobSpec:
    """One measurement run: hashable, picklable, and cheap to construct.

    ``seed=None`` uses the workload's registered seed; an explicit value
    overrides it (and lands in the cache key).  ``config=None`` uses the
    workload's default simulator configuration.
    """

    kind: str  # "api" | "sim" | "geometry"
    workload: str
    frames: int
    seed: int | None = None
    config: GpuConfig | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.frames <= 0:
            raise ValueError("frame budget must be positive")

    @property
    def fragment_stages(self) -> bool:
        return self.kind != "geometry"

    @property
    def sim_profile(self) -> bool:
        return self.kind in ("sim", "geometry")

    def describe(self) -> str:
        return f"{self.kind}:{self.workload}@{self.frames}f"

    def fingerprint(self) -> dict:
        """The full invalidation surface, as a canonical document."""
        from repro.workloads.registry import workload as lookup

        spec = lookup(self.workload)
        return {
            "kind": self.kind,
            "workload": self.workload,
            "frames": self.frames,
            "seed": self.seed if self.seed is not None else spec.seed,
            "spec": _canonical(spec),
            "config": _canonical(self.config) if self.config else "default",
            "code": code_version(),
        }

    def key(self) -> str:
        """Content hash the artifact store files this job's result under."""
        blob = json.dumps(self.fingerprint(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]


def api_job(workload: str, frames: int, seed: int | None = None) -> JobSpec:
    """Full-profile API-statistics run (Tables III-V, XII; Figs. 1-3, 8)."""
    return JobSpec("api", workload, frames, seed=seed)


def sim_job(
    workload: str,
    frames: int,
    seed: int | None = None,
    config: GpuConfig | None = None,
) -> JobSpec:
    """Full-pipeline simulation on the reduced profile (Tables VIII-XVII)."""
    return JobSpec("sim", workload, frames, seed=seed, config=config)


def geometry_job(
    workload: str,
    frames: int,
    seed: int | None = None,
    config: GpuConfig | None = None,
) -> JobSpec:
    """Geometry-only simulation over more frames (Table VII, Figs. 5-6)."""
    return JobSpec("geometry", workload, frames, seed=seed, config=config)
