"""Content-addressed description of one measurement run.

A :class:`JobSpec` captures everything that determines a run's output:
the measurement kind, the workload, the frame budget, the seed, and any
GPU-configuration override.  Its :meth:`~JobSpec.key` folds those together
with the registered workload spec (so recalibrating an engine invalidates
its artifacts) and the source-tree fingerprint (so code changes do too)
into the hash the artifact store files results under.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass

from repro.farm.version import code_version
from repro.gpu.config import GpuConfig

#: The three measurement kinds every exhibit bottoms out in.
KINDS = ("api", "sim", "geometry")


def _canonical(value):
    """JSON-serializable canonical form of specs/configs for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, float):
        return repr(value)
    return value


@dataclass(frozen=True)
class JobSpec:
    """One measurement run: hashable, picklable, and cheap to construct.

    ``seed=None`` uses the workload's registered seed; an explicit value
    overrides it (and lands in the cache key).  ``config=None`` uses the
    workload's default simulator configuration.

    ``frame_offset``/``trace_frames`` describe a *frame shard*: the job
    covers frames ``[frame_offset, frame_offset + frames)`` of the
    ``trace_frames``-frame timedemo.  ``trace_frames`` is part of the slice
    identity because the synthetic camera path is normalized by the total
    frame count — frame 1 of a 2-frame demo is not frame 1 of a 3-frame
    demo.  The default (``0``/``None``) is a whole run: frames ``[0,
    frames)`` of the ``frames``-frame demo, exactly the pre-shard spec.
    """

    kind: str  # "api" | "sim" | "geometry"
    workload: str
    frames: int
    seed: int | None = None
    config: GpuConfig | None = None
    frame_offset: int = 0
    trace_frames: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.frames <= 0:
            raise ValueError("frame budget must be positive")
        if self.frame_offset < 0:
            raise ValueError("frame offset must be non-negative")
        if self.trace_frames is not None and (
            self.trace_frames < self.frame_offset + self.frames
        ):
            raise ValueError("trace_frames shorter than the frame slice")

    @property
    def fragment_stages(self) -> bool:
        return self.kind != "geometry"

    @property
    def sim_profile(self) -> bool:
        return self.kind in ("sim", "geometry")

    @property
    def total_frames(self) -> int:
        """Length of the timedemo this job's frame slice is cut from."""
        if self.trace_frames is not None:
            return self.trace_frames
        return self.frame_offset + self.frames

    @property
    def is_shard(self) -> bool:
        return self.frame_offset > 0 or (
            self.trace_frames is not None and self.trace_frames != self.frames
        )

    def describe(self) -> str:
        base = f"{self.kind}:{self.workload}@{self.frames}f"
        if self.is_shard:
            base += f"+{self.frame_offset}/{self.total_frames}"
        return base

    def fingerprint(self) -> dict:
        """The full invalidation surface, as a canonical document."""
        from repro.workloads.registry import workload as lookup

        spec = lookup(self.workload)
        return {
            "kind": self.kind,
            "workload": self.workload,
            "frames": self.frames,
            "frame_offset": self.frame_offset,
            "trace_frames": self.total_frames,
            "seed": self.seed if self.seed is not None else spec.seed,
            "spec": _canonical(spec),
            "config": _canonical(self.config) if self.config else "default",
            "code": code_version(),
        }

    def key(self) -> str:
        """Content hash the artifact store files this job's result under."""
        blob = json.dumps(self.fingerprint(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    # -- draw-level keys -------------------------------------------------
    def draw_base_fingerprint(self) -> dict:
        """Base fingerprint of this job's draw-level cache keys.

        Everything that determines a frame's simulation *besides* its call
        stream and entry state: the workload spec, seed, simulation
        profile, pipeline depth, GPU configuration, and code version.
        Deliberately narrower than :meth:`fingerprint` — no frame budget,
        offset, or demo length — so shards at every ``--jobs`` width and
        demos of every length chain identical per-frame keys off it (see
        :mod:`repro.farm.drawcache`).
        """
        from repro.workloads.registry import workload as lookup

        spec = lookup(self.workload)
        return {
            "workload": self.workload,
            "sim_profile": self.sim_profile,
            "fragment_stages": self.fragment_stages,
            "seed": self.seed if self.seed is not None else spec.seed,
            "spec": _canonical(spec),
            "config": _canonical(self.config) if self.config else "default",
            "code": code_version(),
        }

    def draw_base_key(self) -> str:
        """Content hash scoping this job's draw-cache entries."""
        blob = json.dumps(self.draw_base_fingerprint(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    # -- traces ----------------------------------------------------------
    def trace_fingerprint(self) -> dict:
        """Invalidation surface of the generated trace itself.

        Narrower than :meth:`fingerprint`: every shard of one run — and the
        API/sim kinds that share a profile — replays the same call stream,
        so the trace is stored once per (workload, seed, profile, length)
        and loaded by every worker that needs any slice of it.
        """
        from repro.workloads.registry import workload as lookup

        spec = lookup(self.workload)
        return {
            "workload": self.workload,
            "sim_profile": self.sim_profile,
            "frames": self.total_frames,
            "seed": self.seed if self.seed is not None else spec.seed,
            "spec": _canonical(spec),
            "code": code_version(),
        }

    def trace_key(self) -> str:
        """Content hash the shared trace store files this demo under."""
        blob = json.dumps(self.trace_fingerprint(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:24]

    # -- sharding --------------------------------------------------------
    def shard(self, pieces: int) -> tuple["JobSpec", ...]:
        """Split this run into up to ``pieces`` contiguous frame shards.

        Shards carry this job's full frame count as ``trace_frames`` so
        they all replay slices of the *same* timedemo.  Splitting a shard
        further, or splitting into one piece, returns the job unchanged.
        """
        pieces = min(int(pieces), self.frames)
        if pieces <= 1 or self.is_shard:
            return (self,)
        base, extra = divmod(self.frames, pieces)
        shards = []
        offset = self.frame_offset
        for index in range(pieces):
            length = base + (1 if index < extra else 0)
            shards.append(
                dataclasses.replace(
                    self,
                    frames=length,
                    frame_offset=offset,
                    trace_frames=self.total_frames,
                )
            )
            offset += length
        return tuple(shards)


def api_job(workload: str, frames: int, seed: int | None = None) -> JobSpec:
    """Full-profile API-statistics run (Tables III-V, XII; Figs. 1-3, 8)."""
    return JobSpec("api", workload, frames, seed=seed)


def sim_job(
    workload: str,
    frames: int,
    seed: int | None = None,
    config: GpuConfig | None = None,
) -> JobSpec:
    """Full-pipeline simulation on the reduced profile (Tables VIII-XVII)."""
    return JobSpec("sim", workload, frames, seed=seed, config=config)


def geometry_job(
    workload: str,
    frames: int,
    seed: int | None = None,
    config: GpuConfig | None = None,
) -> JobSpec:
    """Geometry-only simulation over more frames (Table VII, Figs. 5-6)."""
    return JobSpec("geometry", workload, frames, seed=seed, config=config)
