"""``repro chaos`` — end-to-end injected-fault recovery suite.

Runs every fault class the injector knows (worker crash, hang, transient
exception, artifact corruption, checkpoint truncation, ``ENOSPC``,
read-only cache, native-compile failure, a strict/graceful-degradation
check, plus frame-shard recovery: a worker dying mid-shard and a shard
artifact corrupted between worker save and parent harvest, plus draw-cache
staleness and truncation under incremental replay) against real
farm batches, and asserts that the recovered results are **bit-identical**
to a fault-free reference run — the same equality the tier-1 suite demands
of parallel-vs-serial execution.  Corruption scenarios additionally assert
the damaged files ended up in quarantine rather than being silently
reused.

Every scenario runs in a throwaway cache directory with a fresh
:class:`~repro.farm.faults.FaultPlan` installed through the environment, so
pool workers inherit the faults without cooperation from the scheduler.
The plan seed (``--seed``) drives corruption positions deterministically;
the suite is reproducible end to end.
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.farm import faults
from repro.farm.executor import Farm, FarmError
from repro.farm.job import JobSpec, api_job, sim_job
from repro.farm.store import ArtifactStore
from repro.util.tables import format_table

WORKLOAD = "UT2004/Primeval"
OTHER = "Doom3/trdemo2"

#: The measurement batch every scenario recovers: two API runs and a
#: checkpointed simulation, enough to exercise every store path.
BASE_JOBS = (api_job(WORKLOAD, 2), api_job(OTHER, 2), sim_job(WORKLOAD, 2))

#: Longer simulation used by the checkpoint-truncation scenario (needs a
#: mid-run frame boundary to crash at).
CKPT_JOB = sim_job(WORKLOAD, 3)


class ChaosFailure(AssertionError):
    """A scenario's recovery guarantee did not hold."""


def results_equal(reference, recovered) -> bool:
    """Bit-identity for farm results (API stats or simulation results)."""
    if hasattr(reference, "stats"):  # SimulationResult
        return (
            reference.stats == recovered.stats
            and reference.frame_stats == recovered.frame_stats
            and reference.memory == recovered.memory
            and reference.config == recovered.config
            and len(reference.images) == len(recovered.images)
            and all(
                np.array_equal(a, b)
                for a, b in zip(reference.images, recovered.images)
            )
            and {k: (c.hits, c.misses) for k, c in reference.caches.items()}
            == {k: (c.hits, c.misses) for k, c in recovered.caches.items()}
        )
    return reference == recovered


def _check_match(reference: dict, recovered: dict, jobs) -> None:
    for job in jobs:
        if job not in recovered:
            raise ChaosFailure(f"{job.describe()} missing from recovered batch")
        if not results_equal(reference[job], recovered[job]):
            raise ChaosFailure(
                f"{job.describe()} differs from the fault-free reference"
            )


@dataclass
class _Context:
    """Per-scenario scratch state handed to scenario functions."""

    reference: dict
    seed: int
    jobs: int
    root: pathlib.Path

    def farm(self, subdir: str, **kwargs) -> Farm:
        kwargs.setdefault("jobs", self.jobs)
        kwargs.setdefault("retries", 3)
        return Farm(store=ArtifactStore(self.root / subdir), **kwargs)

    def plan(self, *specs: faults.FaultSpec) -> faults.FaultPlan:
        return faults.FaultPlan(
            faults=tuple(specs),
            seed=self.seed,
            state_dir=str(self.root / "fault-state" / f"{time.monotonic_ns()}"),
        )


# -- scenarios ---------------------------------------------------------------


def _crash(ctx: _Context) -> str:
    """A worker hard-exits mid-round; the broken pool is rebuilt and retried."""
    plan = ctx.plan(faults.FaultSpec("crash", times=1))
    farm = ctx.farm("crash")
    with faults.injected(plan):
        recovered = farm.run(list(BASE_JOBS))
    _check_match(ctx.reference, recovered, BASE_JOBS)
    if farm.telemetry.retries < 1:
        raise ChaosFailure("crash was injected but no retry was recorded")
    return f"recovered after {farm.telemetry.retries} requeue(s)"


def _hang(ctx: _Context) -> str:
    """A worker sleeps past the round deadline; it is killed and requeued."""
    plan = ctx.plan(faults.FaultSpec("hang", times=1, hang_s=60.0))
    farm = ctx.farm("hang", timeout=5.0)
    start = time.monotonic()
    with faults.injected(plan):
        recovered = farm.run(list(BASE_JOBS))
    elapsed = time.monotonic() - start
    if elapsed > 45.0:
        raise ChaosFailure(f"batch waited out the hang ({elapsed:.0f}s)")
    _check_match(ctx.reference, recovered, BASE_JOBS)
    return f"hung worker killed, batch done in {elapsed:.1f}s"


def _transient_exception(ctx: _Context) -> str:
    """Two jobs raise once each; the farm requeues instead of aborting."""
    plan = ctx.plan(faults.FaultSpec("exception", times=2))
    farm = ctx.farm("exc")
    with faults.injected(plan):
        recovered = farm.run(list(BASE_JOBS))
    _check_match(ctx.reference, recovered, BASE_JOBS)
    overcome = sum(1 for r in farm.telemetry.records if r.causes)
    return f"{overcome} job(s) recovered from injected exceptions"


def _artifact_corruption(ctx: _Context) -> str:
    """Every saved artifact is bit-flipped; loads must quarantine, not reuse."""
    plan = ctx.plan(
        faults.FaultSpec("corrupt_artifact", times=0, mode="bitflip")
    )
    with faults.injected(plan):
        first = ctx.farm("corrupt").run(list(BASE_JOBS))
    _check_match(ctx.reference, first, BASE_JOBS)  # computed before corruption
    warm = ctx.farm("corrupt")  # same (corrupted) store, faults gone
    recovered = warm.run(list(BASE_JOBS))
    _check_match(ctx.reference, recovered, BASE_JOBS)
    if warm.store.quarantined < len(BASE_JOBS):
        raise ChaosFailure(
            f"only {warm.store.quarantined} of {len(BASE_JOBS)} corrupted "
            "artifacts were quarantined"
        )
    if not warm.store.quarantined_files():
        raise ChaosFailure("quarantine directory is empty")
    if warm.telemetry.cache_hits:
        raise ChaosFailure("a corrupted artifact was served as a cache hit")
    return (
        f"{warm.store.quarantined} corrupt artifact(s) quarantined "
        "and recomputed"
    )


def _checkpoint_truncation(ctx: _Context) -> str:
    """Crash after a truncated checkpoint; resume must restart from scratch."""
    plan = ctx.plan(
        faults.FaultSpec("corrupt_checkpoint", match="sim", times=1),
        faults.FaultSpec("crash", match="sim", times=1, frame=1),
    )
    farm = ctx.farm("ckpt")
    batch = [CKPT_JOB, api_job(OTHER, 2)]
    with faults.injected(plan):
        recovered = farm.run(batch)
    _check_match(ctx.reference, recovered, batch)
    if not farm.store.quarantined_files():
        raise ChaosFailure("truncated checkpoint was not quarantined")
    return "corrupt checkpoint quarantined; resumed run is bit-identical"


def _unwritable(ctx: _Context, error: str) -> str:
    """Cache writes fail (full/read-only volume); results still flow."""
    plan = ctx.plan(faults.FaultSpec("unwritable", times=0, error=error))
    farm = ctx.farm(f"unwritable-{error.lower()}")
    with faults.injected(plan):
        recovered = farm.run(list(BASE_JOBS))
    _check_match(ctx.reference, recovered, BASE_JOBS)
    if farm.store.entries():
        raise ChaosFailure(f"artifacts were written despite {error}")
    return f"batch completed with every cache write raising {error}"


def _native_compile(ctx: _Context) -> str:
    """The C accelerator fails to build; the Python path must match bit-for-bit."""
    from repro.gpu import _native

    plan = ctx.plan(faults.FaultSpec("native_compile", times=0))
    farm = ctx.farm("native")
    with faults.injected(plan):
        _native._reset()
        if _native.available():
            raise ChaosFailure("native kernels loaded despite compile fault")
        recovered = farm.run(list(BASE_JOBS))
    _native._reset()  # forget the fault-blocked probe
    _check_match(ctx.reference, recovered, BASE_JOBS)
    return "pure-Python fallback is bit-identical to the accelerated run"


def _graceful_degradation(ctx: _Context) -> str:
    """A permanently failing job yields a FailureReport, not a lost batch."""
    plan = ctx.plan(faults.FaultSpec("exception", match="sim", times=0))
    farm = ctx.farm("degrade", strict=False, retries=2)
    with faults.injected(plan):
        partial = farm.run(list(BASE_JOBS))
    report = farm.last_report
    good = [job for job in BASE_JOBS if job.kind == "api"]
    _check_match(ctx.reference, partial, good)
    if len(partial) != len(good) or report.ok or len(report.failures) != 1:
        raise ChaosFailure(
            f"expected {len(good)} results + 1 reported failure, got "
            f"{len(partial)} results and {len(report.failures)} failure(s)"
        )
    if not any("TransientFault" in c for c in report.failures[0].causes):
        raise ChaosFailure("failure report lost the per-job cause chain")
    with faults.injected(ctx.plan(faults.FaultSpec("exception", match="sim", times=0))):
        try:
            ctx.farm("degrade-strict", strict=True, retries=2).run(list(BASE_JOBS))
        except FarmError as exc:
            if "TransientFault" not in str(exc):
                raise ChaosFailure("FarmError message lost the cause chain")
        else:
            raise ChaosFailure("strict farm did not raise on permanent failure")
    return (
        f"strict=False returned {len(partial)}/{len(BASE_JOBS)} results + "
        "FailureReport; strict=True raised with the cause chain"
    )


def _worker_death_mid_shard(ctx: _Context) -> str:
    """A worker dies while simulating its frame shard; the slice is retried
    on a rebuilt pool and the merged run stays bit-identical."""
    job = sim_job(WORKLOAD, 2)
    plan = ctx.plan(faults.FaultSpec("crash", match="+1/2", times=1, frame=1))
    farm = ctx.farm("shard-death", shard_frames=2)
    with faults.injected(plan):
        recovered = farm.run([job])
    _check_match(ctx.reference, recovered, [job])
    if farm.telemetry.retries < 1:
        raise ChaosFailure("shard crash was injected but no retry recorded")
    merged = [r for r in farm.telemetry.records if r.source == "merge"]
    if not merged:
        raise ChaosFailure("run was not frame-sharded (no merge record)")
    return "dead shard worker replaced; merged run is bit-identical"


def _corrupted_shard_artifact(ctx: _Context) -> str:
    """A shard artifact is damaged between worker save and parent harvest;
    the parent quarantines it and recomputes that slice only."""
    job = sim_job(WORKLOAD, 2)
    plan = ctx.plan(
        faults.FaultSpec(
            "corrupt_artifact", match="+1/2", times=1, mode="bitflip"
        )
    )
    farm = ctx.farm("shard-corrupt", shard_frames=2)
    with faults.injected(plan):
        recovered = farm.run([job])
    _check_match(ctx.reference, recovered, [job])
    if not farm.store.quarantined_files():
        raise ChaosFailure("corrupted shard artifact was not quarantined")
    if farm.telemetry.retries < 1:
        raise ChaosFailure("corrupted shard was not recomputed")
    return "corrupt shard artifact quarantined; recomputed slice merged clean"


def _stale_drawcache(ctx: _Context) -> str:
    """A draw-cache record goes stale (its recorded bound-state keys no
    longer match the stream); the per-draw key mismatch must invalidate the
    record and re-simulate the frame, never reuse it."""
    import hashlib
    import json
    import pickle

    job = sim_job(WORKLOAD, 2)
    farm = ctx.farm("stale-drawcache", jobs=1, shard_frames=0, incremental=True)
    first = farm.run([job])
    _check_match(ctx.reference, first, [job])
    store = farm.store
    records = sorted(store.drawcache_dir.glob("*.pkl"))
    if not records:
        raise ChaosFailure("incremental run recorded no draw-cache entries")
    target = records[0]
    record = pickle.loads(target.read_bytes())
    record.draw_keys = tuple("0" * 24 for _ in record.draw_keys)
    blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    target.write_bytes(blob)
    meta_path = target.with_suffix(".json")
    meta = json.loads(meta_path.read_text())
    meta["sha256"] = hashlib.sha256(blob).hexdigest()  # checksum stays valid
    meta_path.write_text(json.dumps(meta))
    # Drop the run-level artifact so the retry re-executes through the
    # (tampered) draw cache instead of loading the finished result.
    for path in (
        store.artifact_path(job),
        store.meta_path(job),
        store.images_path(job),
    ):
        if path.exists():
            path.unlink()
    warm = ctx.farm("stale-drawcache", jobs=1, shard_frames=0, incremental=True)
    recovered = warm.run([job])
    _check_match(ctx.reference, recovered, [job])
    if not any(p.name == target.name for p in warm.store.quarantined_files()):
        raise ChaosFailure("stale draw-cache record was not invalidated")
    return (
        "stale record invalidated on per-draw key mismatch; "
        "re-simulated bit-identical"
    )


def _corrupt_drawcache(ctx: _Context) -> str:
    """A draw-cache record is truncated on disk; the checksum check must
    quarantine it and re-simulate the frame, never reuse it."""
    job = sim_job(WORKLOAD, 2)
    farm = ctx.farm(
        "corrupt-drawcache", jobs=1, shard_frames=0, incremental=True
    )
    first = farm.run([job])
    _check_match(ctx.reference, first, [job])
    store = farm.store
    records = sorted(store.drawcache_dir.glob("*.pkl"))
    if not records:
        raise ChaosFailure("incremental run recorded no draw-cache entries")
    target = records[-1]
    target.write_bytes(target.read_bytes()[: max(1, target.stat().st_size // 3)])
    for path in (
        store.artifact_path(job),
        store.meta_path(job),
        store.images_path(job),
    ):
        if path.exists():
            path.unlink()
    warm = ctx.farm(
        "corrupt-drawcache", jobs=1, shard_frames=0, incremental=True
    )
    recovered = warm.run([job])
    _check_match(ctx.reference, recovered, [job])
    if not any(p.name == target.name for p in warm.store.quarantined_files()):
        raise ChaosFailure("truncated draw-cache record was not quarantined")
    return (
        "truncated record quarantined on checksum mismatch; "
        "re-simulated bit-identical"
    )


SCENARIOS: dict[str, Callable[[_Context], str]] = {
    "crash": _crash,
    "hang": _hang,
    "transient-exception": _transient_exception,
    "artifact-corruption": _artifact_corruption,
    "checkpoint-truncation": _checkpoint_truncation,
    "enospc": lambda ctx: _unwritable(ctx, "ENOSPC"),
    "read-only-cache": lambda ctx: _unwritable(ctx, "EROFS"),
    "native-compile-failure": _native_compile,
    "graceful-degradation": _graceful_degradation,
    "worker-death-mid-shard": _worker_death_mid_shard,
    "corrupted-shard-artifact": _corrupted_shard_artifact,
    "stale-drawcache": _stale_drawcache,
    "corrupt-drawcache": _corrupt_drawcache,
}


def run_chaos(
    seed: int = 0,
    jobs: int = 2,
    only: list[str] | None = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the suite; returns a process exit code (0 = every scenario held)."""
    selected = only or list(SCENARIOS)
    for name in selected:
        if name not in SCENARIOS:
            out(f"unknown chaos scenario {name!r}; known: {', '.join(SCENARIOS)}")
            return 2
    rows = []
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = pathlib.Path(tmp)
        out(f"chaos: computing fault-free reference ({len(BASE_JOBS) + 1} jobs)...")
        reference_jobs: list[JobSpec] = list(BASE_JOBS) + [CKPT_JOB]
        reference = Farm(store=ArtifactStore(root / "reference"), jobs=jobs).run(
            reference_jobs
        )
        for name in selected:
            ctx = _Context(reference, seed, jobs, root / name)
            start = time.monotonic()
            try:
                detail = SCENARIOS[name](ctx)
                status = "PASS"
            except ChaosFailure as exc:
                detail, status, failures = str(exc), "FAIL", failures + 1
            except FarmError as exc:
                detail, status, failures = f"FarmError: {exc}", "FAIL", failures + 1
            rows.append(
                [name, status, f"{time.monotonic() - start:.1f}", detail]
            )
            out(f"  {status} {name}: {rows[-1][3]}")
    out("")
    out(
        format_table(
            ["scenario", "status", "secs", "detail"],
            rows,
            title=f"repro chaos (seed {seed}, {jobs} workers)",
        )
    )
    out("")
    if failures:
        out(f"chaos: {failures}/{len(selected)} scenario(s) FAILED")
        return 1
    out(
        f"chaos: all {len(selected)} scenario(s) recovered bit-identical "
        "results under injected faults"
    )
    return 0
