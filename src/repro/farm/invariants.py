"""Semantic integrity checks for measurement artifacts.

A checksum proves the bytes on disk are the bytes that were written; it says
nothing about whether those bytes describe a *believable* measurement.  This
module checks the pipeline's conservation laws on a decoded result — the
quantities that must balance no matter what the workload did:

* per-frame counters sum to the whole-run totals (the merge invariant);
* every rasterized quad lands in exactly one Table-IX fate bucket, so the
  fate counts sum to ``quads_rasterized``;
* no downstream stage processes more fragments than rasterization produced,
  and the vertex cache never hits more than it is referenced;
* every cache's ``hits + misses`` equals its reference-stream length (the
  ``accesses`` counter), which guards the stream-collapse optimizations in
  :mod:`repro.gpu.caches`;
* the result answers the job that was asked: right workload, right frame
  budget.

The farm runs these on every artifact it loads *and* every result it
computes, so a corrupt-but-unpicklable artifact, a stale foreign pickle, or
a miscounting pipeline all surface as explicit violations instead of
silently poisoning a table.
"""

from __future__ import annotations

from typing import Any

from repro.gpu.stats import _COUNTER_FIELDS


def validate_result(job: Any, result: Any) -> list[str]:
    """Check ``result`` against the invariants its type promises.

    ``job`` may be ``None`` (skips the job-identity checks) or anything
    with ``kind`` / ``workload`` / ``frames`` attributes.  Unknown result
    types (custom test workers return bare strings) validate trivially.
    Returns a list of human-readable violations; empty means valid.
    """
    if hasattr(result, "stats") and hasattr(result, "frame_stats"):
        return _validate_simulation(job, result)
    if hasattr(result, "frame_count") and hasattr(result, "frames"):
        return _validate_api(job, result)
    return []


def _validate_simulation(job: Any, result: Any) -> list[str]:
    violations: list[str] = []
    stats = result.stats

    frames = getattr(job, "frames", None)
    if frames is not None and stats.frames != frames:
        violations.append(
            f"frame budget mismatch: result has {stats.frames} frames, "
            f"job asked for {frames}"
        )
    if len(result.frame_stats) != stats.frames:
        violations.append(
            f"{len(result.frame_stats)} per-frame records for "
            f"{stats.frames} frames"
        )

    # Merge invariant: per-frame counters sum to the run totals.
    for name in _COUNTER_FIELDS:
        total = getattr(stats, name)
        if total < 0:
            violations.append(f"negative counter {name} = {total}")
        frame_sum = sum(getattr(f, name) for f in result.frame_stats)
        if frame_sum != total:
            violations.append(
                f"counter {name}: frames sum to {frame_sum}, total is {total}"
            )

    # Quad conservation: every rasterized quad has exactly one fate.
    fate_sum = sum(stats.quad_fates.values())
    if fate_sum != stats.quads_rasterized:
        violations.append(
            f"quad fates sum to {fate_sum}, "
            f"{stats.quads_rasterized} quads were rasterized"
        )
    merged: dict = {}
    for frame in result.frame_stats:
        for fate, count in frame.quad_fates.items():
            merged[fate] = merged.get(fate, 0) + count
    if merged != stats.quad_fates:
        violations.append("per-frame quad fates do not merge to the totals")

    # Fragment conservation: stages only ever kill fragments.
    produced = stats.fragments_rasterized
    for name in ("fragments_zstencil", "fragments_shaded", "fragments_blended"):
        count = getattr(stats, name)
        if count > produced:
            violations.append(
                f"{name} = {count} exceeds fragments_rasterized = {produced}"
            )

    if stats.vertex_cache_hits > stats.vertex_cache_references:
        violations.append(
            f"vertex cache hits ({stats.vertex_cache_hits}) exceed "
            f"references ({stats.vertex_cache_references})"
        )

    # Cache conservation: hits + misses accounts for every reference.
    for name, cache in getattr(result, "caches", {}).items():
        accesses = getattr(cache, "accesses", None)
        if accesses is None:
            continue  # artifact predates the accesses counter
        if cache.hits + cache.misses != accesses:
            violations.append(
                f"cache {name}: hits ({cache.hits}) + misses "
                f"({cache.misses}) != accesses ({accesses})"
            )
        if cache.hits < 0 or cache.misses < 0:
            violations.append(f"cache {name}: negative hit/miss counters")

    return violations


def _validate_api(job: Any, result: Any) -> list[str]:
    violations: list[str] = []
    frames = getattr(job, "frames", None)
    if frames is not None and result.frame_count != frames:
        violations.append(
            f"frame budget mismatch: result has {result.frame_count} "
            f"frames, job asked for {frames}"
        )
    workload = getattr(job, "workload", None)
    if workload is not None and result.name != workload:
        violations.append(
            f"workload mismatch: result is for {result.name!r}, "
            f"job asked for {workload!r}"
        )
    if result.total_batches < 0 or result.total_indices < 0:
        violations.append("negative API counters")
    for frame in result.frames:
        if frame.batches < 0 or frame.indices < 0:
            violations.append("negative per-frame API counters")
            break
    return violations
