"""repro — a reproduction of 'Workload Characterization of 3D Games'.

IISWC 2006, Roca / Moya / Gonzalez / Solis / Fernandez / Espasa.

The package rebuilds the paper's measurement stack: an API-level tracing
framework (:mod:`repro.api`), a functional GPU pipeline simulator
(:mod:`repro.gpu`), a shader ISA (:mod:`repro.shader`), procedural geometry
(:mod:`repro.geometry`), synthetic game workloads standing in for the
original timedemos (:mod:`repro.workloads`), and the experiment harness that
regenerates every table and figure (:mod:`repro.experiments`).

The stable public entry points route through the execution farm (cached,
parallel-safe)::

    import repro

    result = repro.simulate("Doom3/trdemo2", frames=6)
    print(result.stats.quad_fate_percent)

    stats = repro.api_stats("UT2004/Primeval")

    # Long timedemos: draw-level incremental replay (bit-identical,
    # re-simulates only frames whose content changed).
    result = repro.characterize("UT2004/Primeval", frames=100)

Lower-level pieces (:class:`GpuSimulator`, :func:`build_workload`, …) remain
importable for callers that need to drive the pipeline directly.
"""

from repro.api.tracer import ApiTracer
from repro.experiments.runner import (
    ExperimentConfig,
    api_stats,
    characterize,
    simulate,
)
from repro.gpu.config import GpuConfig
from repro.gpu.pipeline import GpuSimulator, SimulationResult
from repro.workloads import build_workload, all_workloads, workload

__version__ = "2.0.0"

__all__ = [
    "ApiTracer",
    "ExperimentConfig",
    "GpuConfig",
    "GpuSimulator",
    "SimulationResult",
    "api_stats",
    "build_workload",
    "all_workloads",
    "characterize",
    "simulate",
    "workload",
    "__version__",
]
