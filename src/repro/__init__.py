"""repro — a reproduction of 'Workload Characterization of 3D Games'.

IISWC 2006, Roca / Moya / Gonzalez / Solis / Fernandez / Espasa.

The package rebuilds the paper's measurement stack: an API-level tracing
framework (:mod:`repro.api`), a functional GPU pipeline simulator
(:mod:`repro.gpu`), a shader ISA (:mod:`repro.shader`), procedural geometry
(:mod:`repro.geometry`), synthetic game workloads standing in for the
original timedemos (:mod:`repro.workloads`), and the experiment harness that
regenerates every table and figure (:mod:`repro.experiments`).

Typical entry points::

    from repro import build_workload, GpuSimulator, GpuConfig

    workload = build_workload("Doom3/trdemo2", sim=True)
    result = workload.simulate(frames=6)
    print(result.stats.quad_fate_percent)
"""

from repro.api.tracer import ApiTracer
from repro.gpu.config import GpuConfig
from repro.gpu.pipeline import GpuSimulator, SimulationResult
from repro.workloads import build_workload, all_workloads, workload

__version__ = "1.0.0"

__all__ = [
    "ApiTracer",
    "GpuConfig",
    "GpuSimulator",
    "SimulationResult",
    "build_workload",
    "all_workloads",
    "workload",
    "__version__",
]
