"""One function per paper figure: per-frame series plus an ASCII rendering.

The paper's figures are time series without published raw data, so each
reproduction returns the series (for CSV export), an ASCII chart of the
shape, and the summary statistics the paper's text calls out (e.g. the ~66%
vertex cache plateau of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import paper
from repro.experiments.runner import Runner, default_runner
from repro.util.asciiplot import ascii_series


@dataclass
class Figure:
    exhibit: str
    title: str
    series: dict[str, list[float]]
    logy: bool = False
    notes: list[str] = field(default_factory=list)

    def as_text(self, width: int = 72, height: int = 10) -> str:
        chart = ascii_series(
            self.series,
            width=width,
            height=height,
            title=f"{self.exhibit}: {self.title}",
            logy=self.logy,
        )
        if self.notes:
            chart += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return chart

    def as_csv(self) -> str:
        names = list(self.series)
        length = max(len(v) for v in self.series.values())
        lines = ["frame," + ",".join(names)]
        for i in range(length):
            cells = [str(i)]
            for name in names:
                values = self.series[name]
                cells.append(f"{values[i]:.6g}" if i < len(values) else "")
            lines.append(",".join(cells))
        return "\n".join(lines)


_OGL_PLOTTED = [
    "UT2004/Primeval",
    "Doom3/trdemo2",
    "Quake4/demo4",
    "Riddick/PrisonArea",
]
_D3D_PLOTTED = [
    "Oblivion/Anvil Castle",
    "Half Life 2 LC/built-in",
    "FEAR/interval2",
    "Splinter Cell 3/first level",
]


def figure1(runner: Runner | None = None, api: str = "both") -> Figure:
    """Fig. 1: total batches per frame (highly variable over time)."""
    runner = runner or default_runner()
    names = {
        "ogl": _OGL_PLOTTED,
        "d3d": _D3D_PLOTTED,
        "both": _OGL_PLOTTED + _D3D_PLOTTED,
    }[api]
    series = {name: runner.api(name).series("batches") for name in names}
    fig = Figure("Figure 1", "Batches per frame", series)
    fig.notes.append(
        "paper: interactive games make batch counts highly variable over time"
    )
    return fig


def figure2(runner: Runner | None = None) -> Figure:
    """Fig. 2: index MB transferred CPU->GPU per frame."""
    runner = runner or default_runner()
    series = {
        name: runner.api(name).series("index_mb")
        for name in _OGL_PLOTTED + _D3D_PLOTTED
    }
    fig = Figure("Figure 2", "Index BW per frame (MB)", series)
    fig.notes.append("paper: well under 1 GB/s even at 100 fps (Table VI)")
    return fig


def figure3(runner: Runner | None = None) -> Figure:
    """Fig. 3: state calls per frame (log scale; startup/transition spikes)."""
    runner = runner or default_runner()
    series = {
        name: runner.api(name).series("state_calls")
        for name in _OGL_PLOTTED + _D3D_PLOTTED
    }
    fig = Figure("Figure 3", "State calls per frame", series, logy=True)
    fig.notes.append(
        "first frames spike with setup uploads; FEAR/Oblivion spike again at "
        "scene transitions"
    )
    return fig


def figure4() -> Figure:
    """Fig. 4: vertex sharing of the triangle primitives (the diagram).

    The paper's figure is an illustration; we reproduce the quantity it
    illustrates — indices needed per triangle for each topology.
    """
    from repro.geometry.primitives import PrimitiveType, indices_for_triangles

    counts = list(range(1, 33))
    series = {
        prim.value: [
            indices_for_triangles(n, prim) / n for n in counts
        ]
        for prim in PrimitiveType
    }
    fig = Figure("Figure 4", "Indices per triangle vs triangles", series)
    fig.notes.append("TL stays at 3; TS/TF approach 1 as runs grow")
    return fig


def figure5(runner: Runner | None = None) -> Figure:
    """Fig. 5: post-transform vertex cache hit rate per frame (~66%)."""
    runner = runner or default_runner()
    series = {}
    for name in paper.SIMULATED:
        frames = runner.geometry(name).frame_stats
        series[name] = [f.vertex_cache_hit_rate for f in frames]
    fig = Figure("Figure 5", "Post-transform vertex cache hit rate", series)
    fig.notes.append(
        f"theoretical adjacent-triangle rate: "
        f"{paper.VERTEX_CACHE_THEORETICAL:.3f}"
    )
    return fig


def figure6(runner: Runner | None = None, workload: str = "Doom3/trdemo2") -> Figure:
    """Fig. 6: indices, assembled and traversed triangles per frame."""
    runner = runner or default_runner()
    frames = runner.geometry(workload).frame_stats
    series = {
        "indices": [float(f.indices) for f in frames],
        "assembled": [float(f.triangles_assembled) for f in frames],
        "traversed": [float(f.triangles_traversed) for f in frames],
    }
    fig = Figure("Figure 6", f"Triangle funnel per frame ({workload})", series)
    fig.notes.append("assembled = indices/3 for pure triangle lists")
    return fig


def figure7(runner: Runner | None = None, workload: str = "Doom3/trdemo2") -> Figure:
    """Fig. 7: average triangle size per frame at raster/z-stencil/shading."""
    runner = runner or default_runner()
    frames = runner.sim(workload).frame_stats
    series = {
        "raster": [f.avg_triangle_size("raster") for f in frames],
        "zst": [f.avg_triangle_size("zstencil") for f in frames],
        "shaded": [f.avg_triangle_size("shaded") for f in frames],
    }
    fig = Figure("Figure 7", f"Average triangle size per frame ({workload})", series)
    return fig


def figure8(runner: Runner | None = None) -> Figure:
    """Fig. 8: fragment program size per frame (Quake4 and FEAR)."""
    runner = runner or default_runner()
    series = {}
    for name in ("Quake4/demo4", "FEAR/interval2"):
        stats = runner.api(name)
        series[f"{name} instr"] = stats.series("fragment_instructions")
        series[f"{name} tex"] = stats.series("texture_instructions")
    return Figure("Figure 8", "Average fragment program instructions", series)


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
}
