"""Experiment harness: regenerates every table and figure of the paper.

``repro.experiments.tables`` and ``repro.experiments.figures`` contain one
function per exhibit; ``repro.experiments.paper`` holds the published values
they are compared against; ``repro.experiments.runner`` caches the underlying
API-statistics and simulation runs so all exhibits share them.
"""

from repro.experiments.runner import Runner, default_runner, ExperimentConfig
from repro.experiments.report import Comparison
from repro.experiments import tables, figures, paper, scorecard

__all__ = [
    "Runner",
    "default_runner",
    "ExperimentConfig",
    "Comparison",
    "tables",
    "figures",
    "paper",
    "scorecard",
]
