"""Pipeline throughput benchmark: per-triangle vs QuadStream, serial vs farm.

Writes ``BENCH_pipeline.json`` — the perf trajectory's data points.  Three
measurements:

* **pipeline** — one workload's full-profile trace replayed through the
  default Table II machine (:meth:`GpuConfig.r520`) with the per-triangle
  reference path and with the draw-level QuadStream path.  Both produce
  bit-identical statistics, so the triangles/s and fragments/s ratios are a
  pure execution-strategy speedup.
* **incremental** — one sim-profile timedemo replayed three ways: full
  re-simulation, cold incremental (empty draw cache), and warm incremental
  (every unchanged frame reused from the per-draw content-addressed
  cache).  The warm speedup is only reported alongside ``identical``,
  which asserts bit-identity against the full run first.
* **farm** — the three simulated engines' reduced-profile jobs run through
  the execution farm serially (``jobs=1``) and at each requested parallel
  width, each measurement against its own fresh artifact store, so the
  scaling of the frame-sharded, warm-pool, zero-copy scheduler is visible
  too.  Each entry carries the farm's per-phase timing breakdown (pool
  spawn, trace generation, simulation, harvest, shard merge) and the
  document records ``cpu_count`` — on a single-core host the parallel
  widths measure scheduling overhead, not speedup.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from typing import Sequence

from repro.gpu.config import GpuConfig
from repro.observe import spans as obs_spans
from repro.workloads import build_workload

#: Default benchmark workload (the paper's lead Direct3D→OpenGL exhibit).
DEFAULT_WORKLOAD = "UT2004/Primeval"


def _run_pipeline(
    name: str,
    vectorized: bool,
    frames: int,
    repeats: int = 1,
    fused: bool = False,
    threads: int = 1,
) -> tuple[dict, dict]:
    """Time one path; with ``repeats`` > 1, keep the fastest run.

    Minimum-of-N is the standard noise-robust estimator for a deterministic
    workload: every run does identical work, so the minimum is the run with
    the least scheduler/cache interference.

    Returns ``(measurement, identity)`` where ``identity`` is the
    path-independent result fingerprint (per-frame counters, cache
    hit/miss/access triples, framebuffer digest) used to assert the
    execution strategies are bit-identical before their timings are
    compared.  Memory *byte* totals are deliberately absent: the fused
    path samples z-block compressibility at chunk rather than draw
    granularity (see :mod:`repro.gpu.fused`).
    """
    import hashlib

    workload = build_workload(name, sim=False)
    config = dataclasses.replace(
        GpuConfig.r520(), vectorized=vectorized, fused=fused, threads=threads
    )
    seconds = float("inf")
    result = None
    sim = None
    for _ in range(max(1, repeats)):
        sim = workload.simulator(config)
        trace = workload.trace(frames=frames)
        start = time.perf_counter()
        result = sim.run_trace(trace, max_frames=frames)
        seconds = min(seconds, time.perf_counter() - start)
    stats = result.stats
    digest = hashlib.sha256()
    digest.update(sim.fb.color.tobytes())
    digest.update(sim.fb.z.tobytes())
    digest.update(sim.fb.stencil.tobytes())
    identity = {
        "frame_stats": [fs.as_dict() for fs in result.frame_stats],
        "caches": {
            name: (cache.hits, cache.misses, cache.accesses)
            for name, cache in sorted(result.caches.items())
        },
        "framebuffer": digest.hexdigest(),
    }
    path = "per_triangle" if not vectorized else ("fused" if fused else "quadstream")
    measurement = {
        "path": path,
        "seconds": round(seconds, 3),
        "frames": stats.frames,
        "triangles": stats.triangles_traversed,
        "fragments": stats.fragments_rasterized,
        "triangles_per_s": round(stats.triangles_traversed / seconds, 1),
        "fragments_per_s": round(stats.fragments_rasterized / seconds, 1),
    }
    if fused:
        measurement["threads"] = threads
    return measurement, identity


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _stage_self_times(tracer) -> dict:
    """Per-stage self-time breakdown from one traced run's span buffer.

    Self time is wall duration minus the summed durations of *direct*
    children, so nested spans (run → frame → draw → stage) never double
    count and the entries sum to the root's wall time.  Aggregated by span
    name and reported with the share of the total traced time — the
    profile the ``stages`` block of ``BENCH_pipeline.json`` publishes.
    """
    spans = tracer.spans
    child_ns = [0] * len(spans)
    for span in spans:
        if span.parent >= 0 and span.t1 is not None:
            child_ns[span.parent] += span.t1 - span.t0
    totals: dict[str, dict] = {}
    total_self_ns = 0
    for index, span in enumerate(spans):
        if span.t1 is None:
            continue
        self_ns = (span.t1 - span.t0) - child_ns[index]
        entry = totals.setdefault(span.name, {"count": 0, "self_ns": 0})
        entry["count"] += 1
        entry["self_ns"] += self_ns
        total_self_ns += self_ns
    breakdown = {}
    for name in sorted(totals, key=lambda n: -totals[n]["self_ns"]):
        entry = totals[name]
        breakdown[name] = {
            "count": entry["count"],
            "self_seconds": round(entry["self_ns"] / 1e9, 4),
            "share_pct": round(
                100.0 * entry["self_ns"] / total_self_ns, 1
            ) if total_self_ns else 0.0,
        }
    return breakdown


def _run_observed(name: str, frames: int, repeats: int = 1) -> dict:
    """Measure observer overhead: interleaved traced/untraced run pairs.

    The old protocol compared a min-of-N traced run against a min-of-N
    untraced run timed *earlier in the process* — on a noisy host the
    later measurement often won on warmth alone and the "overhead" came
    out negative.  Here every repeat times an untraced run and a traced
    run back to back (``env=False`` keeps the tracing flag out of the
    environment so nothing beyond this process starts tracing), at least
    three pairs, and the overhead is the ratio of the two *medians* — the
    like-with-like comparison the ``--max-observer-overhead`` gate needs.
    The reported ``overhead_pct`` is clamped at zero (an instrument cannot
    speed the pipeline up; a negative ratio is noise), with the raw value
    kept alongside for trend reading.
    """
    workload = build_workload(name, sim=False)
    config = dataclasses.replace(GpuConfig.r520(), vectorized=True)
    untraced: list[float] = []
    traced: list[float] = []
    spans = 0
    for _ in range(max(3, repeats)):
        sim = workload.simulator(config)
        trace = workload.trace(frames=frames)
        start = time.perf_counter()
        sim.run_trace(trace, max_frames=frames)
        untraced.append(time.perf_counter() - start)

        sim = workload.simulator(config)
        trace = workload.trace(frames=frames)
        tracer = obs_spans.enable(track="bench", env=False)
        try:
            start = time.perf_counter()
            sim.run_trace(trace, max_frames=frames)
            traced.append(time.perf_counter() - start)
        finally:
            obs_spans.disable()
        spans = len(tracer.spans)
    median_traced = _median(traced)
    median_untraced = _median(untraced)
    raw = 100.0 * (median_traced / median_untraced - 1.0)
    return {
        "seconds": round(median_traced, 3),
        "untraced_seconds": round(median_untraced, 3),
        "pairs": len(traced),
        "spans": spans,
        "overhead_pct": round(max(0.0, raw), 1),
        "overhead_pct_raw": round(raw, 1),
        "stages": _stage_self_times(tracer),
    }


def _measure_farm(specs: list, width: int) -> dict:
    """One cold farm batch at ``width`` workers, against a fresh store."""
    from repro.farm import ArtifactStore, Farm

    with tempfile.TemporaryDirectory(prefix="repro-bench-farm-") as tmp:
        with Farm(
            store=ArtifactStore(tmp), jobs=width, checkpoint_every=0
        ) as farm:
            start = time.perf_counter()
            farm.run(list(specs))
            wall = time.perf_counter() - start
    return {
        "jobs": width,
        "seconds": round(wall, 3),
        "phases": {
            name: round(seconds, 3)
            for name, seconds in sorted(farm.telemetry.phases.items())
        },
    }


def _run_incremental(name: str, frames: int, repeats: int = 3) -> dict:
    """Full vs cold vs warm incremental replay of one sim-profile timedemo.

    * **full** — plain :meth:`GpuSimulator.run_trace`, min-of-N.
    * **cold** — the same frames through :func:`run_trace_incremental`
      against an empty draw cache (every frame simulated and recorded).
    * **warm** — again, with a fresh simulator and fresh in-memory cache
      over the *same* store: every unchanged frame replays from disk.

    The speedup the ``--min-incremental-speedup`` gate checks is
    ``full / warm``, and ``identical`` asserts the warm (and cold) results
    are bit-identical to full re-simulation before any timing is trusted.
    """
    from repro.farm.chaos import results_equal
    from repro.farm.drawcache import job_drawcache, run_trace_incremental
    from repro.farm.job import JobSpec
    from repro.farm.store import ArtifactStore

    workload = build_workload(name, sim=True)
    spec = JobSpec("sim", name, frames)
    trace = workload.trace(frames=frames)

    full_s = float("inf")
    full_result = None
    for _ in range(max(1, repeats)):
        sim = workload.simulator()
        start = time.perf_counter()
        full_result = sim.run_trace(trace, max_frames=frames)
        full_s = min(full_s, time.perf_counter() - start)

    with tempfile.TemporaryDirectory(prefix="repro-bench-inc-") as tmp:
        store = ArtifactStore(tmp)
        cache = job_drawcache(spec, store)
        sim = workload.simulator()
        start = time.perf_counter()
        cold_result = run_trace_incremental(
            sim, trace, cache, max_frames=frames
        )
        cold_s = time.perf_counter() - start
        cold = {"seconds": round(cold_s, 3), "hits": cache.hits,
                "misses": cache.misses}

        warm_s = float("inf")
        warm_result = None
        warm = {}
        for _ in range(max(1, repeats)):
            cache = job_drawcache(spec, store)  # fresh counters, same disk
            sim = workload.simulator()
            start = time.perf_counter()
            warm_result = run_trace_incremental(
                sim, trace, cache, max_frames=frames
            )
            elapsed = time.perf_counter() - start
            if elapsed < warm_s:
                warm_s = elapsed
                warm = {
                    "seconds": round(elapsed, 3),
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "hit_rate": round(cache.hit_rate, 4),
                }

    identical = results_equal(full_result, cold_result) and results_equal(
        full_result, warm_result
    )
    return {
        "workload": name,
        "frames": frames,
        "full": {"seconds": round(full_s, 3)},
        "cold": cold,
        "warm": warm,
        "speedup": round(full_s / warm_s, 2) if warm_s else float("inf"),
        "identical": identical,
    }


def _run_farm(frames: int, jobs: Sequence[int]) -> dict:
    from repro.experiments import paper
    from repro.farm import JobSpec

    specs = [JobSpec("sim", name, frames) for name in paper.SIMULATED]
    serial = _measure_farm(specs, 1)
    parallel: dict[str, dict] = {}
    for width in jobs:
        if width <= 1:
            continue
        entry = _measure_farm(specs, width)
        entry["speedup"] = round(serial["seconds"] / entry["seconds"], 2)
        parallel[str(width)] = entry
    return {
        "workloads": list(paper.SIMULATED),
        "frames": frames,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "parallel": parallel,
    }


def bench_pipeline(
    workload: str = DEFAULT_WORKLOAD,
    frames: int = 1,
    farm_frames: int = 2,
    jobs: Sequence[int] | int = (2, 4),
    include_farm: bool = True,
    repeats: int = 3,
    incremental_frames: int = 20,
    include_incremental: bool = True,
    threads: int = 1,
) -> dict:
    """Run the measurements and return the ``BENCH_pipeline.json`` document."""
    if isinstance(jobs, int):
        jobs = (jobs,)
    per_triangle, reference_identity = _run_pipeline(
        workload, vectorized=False, frames=frames, repeats=repeats
    )
    quadstream, stream_identity = _run_pipeline(
        workload, vectorized=True, frames=frames, repeats=repeats
    )
    fused, fused_identity = _run_pipeline(
        workload,
        vectorized=True,
        frames=frames,
        repeats=repeats,
        fused=True,
        threads=threads,
    )
    fused["identical"] = (
        fused_identity == reference_identity
        and stream_identity == reference_identity
    )
    doc = {
        "benchmark": "pipeline",
        "machine": "GpuConfig.r520 (Table II, 1024x768)",
        "workload": workload,
        "frames": frames,
        "per_triangle": per_triangle,
        "quadstream": quadstream,
        "fused": fused,
        "speedup": {
            "triangles_per_s": round(
                quadstream["triangles_per_s"] / per_triangle["triangles_per_s"], 2
            ),
            "fragments_per_s": round(
                quadstream["fragments_per_s"] / per_triangle["fragments_per_s"], 2
            ),
            "fused_fragments_per_s": round(
                fused["fragments_per_s"] / per_triangle["fragments_per_s"], 2
            ),
        },
    }
    observer = _run_observed(workload, frames=frames, repeats=repeats)
    doc["stages"] = observer.pop("stages")
    doc["observer"] = observer
    if include_incremental:
        doc["incremental"] = _run_incremental(
            workload, incremental_frames, repeats=repeats
        )
    if include_farm:
        doc["farm"] = _run_farm(farm_frames, jobs)
    return doc


def write_bench(doc: dict, path: str | pathlib.Path = "BENCH_pipeline.json") -> pathlib.Path:
    """Write the document (stamped with provenance) and append to history."""
    from repro.compare.meta import append_history, run_meta

    doc.setdefault("meta", run_meta())
    out = pathlib.Path(path)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    append_history("pipeline", doc)
    return out
