"""Pipeline throughput benchmark: per-triangle vs QuadStream, serial vs farm.

Writes ``BENCH_pipeline.json`` — the perf trajectory's data points.  Two
measurements:

* **pipeline** — one workload's full-profile trace replayed through the
  default Table II machine (:meth:`GpuConfig.r520`) with the per-triangle
  reference path and with the draw-level QuadStream path.  Both produce
  bit-identical statistics, so the triangles/s and fragments/s ratios are a
  pure execution-strategy speedup.
* **farm** — the three simulated engines' reduced-profile jobs run through
  the execution farm serially (``jobs=1``) and in parallel, cache disabled
  both times, so the scaling of the process-pool scheduler is visible too.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

from repro.gpu.config import GpuConfig
from repro.workloads import build_workload

#: Default benchmark workload (the paper's lead Direct3D→OpenGL exhibit).
DEFAULT_WORKLOAD = "UT2004/Primeval"


def _run_pipeline(
    name: str, vectorized: bool, frames: int, repeats: int = 1
) -> dict:
    """Time one path; with ``repeats`` > 1, keep the fastest run.

    Minimum-of-N is the standard noise-robust estimator for a deterministic
    workload: every run does identical work, so the minimum is the run with
    the least scheduler/cache interference.
    """
    workload = build_workload(name, sim=False)
    config = dataclasses.replace(GpuConfig.r520(), vectorized=vectorized)
    seconds = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        sim = workload.simulator(config)
        trace = workload.trace(frames=frames)
        start = time.perf_counter()
        result = sim.run_trace(trace, max_frames=frames)
        seconds = min(seconds, time.perf_counter() - start)
    stats = result.stats
    return {
        "path": "quadstream" if vectorized else "per_triangle",
        "seconds": round(seconds, 3),
        "frames": stats.frames,
        "triangles": stats.triangles_traversed,
        "fragments": stats.fragments_rasterized,
        "triangles_per_s": round(stats.triangles_traversed / seconds, 1),
        "fragments_per_s": round(stats.fragments_rasterized / seconds, 1),
    }


def _run_farm(frames: int, jobs: int) -> dict:
    from repro.experiments import paper
    from repro.farm import ArtifactStore, Farm, JobSpec

    specs = [JobSpec("sim", name, frames) for name in paper.SIMULATED]
    timings = {}
    for label, n in (("serial", 1), ("parallel", jobs)):
        farm = Farm(store=ArtifactStore(None), jobs=n, use_cache=False)
        start = time.perf_counter()
        farm.run(list(specs))
        timings[label] = time.perf_counter() - start
    return {
        "workloads": list(paper.SIMULATED),
        "frames": frames,
        "jobs": jobs,
        "serial_s": round(timings["serial"], 3),
        "parallel_s": round(timings["parallel"], 3),
        "speedup": round(timings["serial"] / timings["parallel"], 2),
    }


def bench_pipeline(
    workload: str = DEFAULT_WORKLOAD,
    frames: int = 1,
    farm_frames: int = 2,
    jobs: int = 3,
    include_farm: bool = True,
    repeats: int = 3,
) -> dict:
    """Run both measurements and return the ``BENCH_pipeline.json`` document."""
    per_triangle = _run_pipeline(
        workload, vectorized=False, frames=frames, repeats=repeats
    )
    quadstream = _run_pipeline(
        workload, vectorized=True, frames=frames, repeats=repeats
    )
    doc = {
        "benchmark": "pipeline",
        "machine": "GpuConfig.r520 (Table II, 1024x768)",
        "workload": workload,
        "frames": frames,
        "per_triangle": per_triangle,
        "quadstream": quadstream,
        "speedup": {
            "triangles_per_s": round(
                quadstream["triangles_per_s"] / per_triangle["triangles_per_s"], 2
            ),
            "fragments_per_s": round(
                quadstream["fragments_per_s"] / per_triangle["fragments_per_s"], 2
            ),
        },
    }
    if include_farm:
        doc["farm"] = _run_farm(farm_frames, jobs)
    return doc


def write_bench(doc: dict, path: str | pathlib.Path = "BENCH_pipeline.json") -> pathlib.Path:
    out = pathlib.Path(path)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out
