"""Published values from 'Workload Characterization of 3D Games' (IISWC'06).

Transcribed from the paper's Tables I and III-XVII.  These are the reference
numbers every reproduction run is compared against.
"""

from __future__ import annotations

#: Workload order as printed in the paper's tables.
WORKLOAD_ORDER = [
    "UT2004/Primeval",
    "Doom3/trdemo1",
    "Doom3/trdemo2",
    "Quake4/demo4",
    "Quake4/guru5",
    "Riddick/MainFrame",
    "Riddick/PrisonArea",
    "FEAR/built-in demo",
    "FEAR/interval2",
    "Half Life 2 LC/built-in",
    "Oblivion/Anvil Castle",
    "Splinter Cell 3/first level",
]

#: The three workloads replayed on ATTILA.
SIMULATED = ["UT2004/Primeval", "Doom3/trdemo2", "Quake4/demo4"]

# Table I: frames, duration (s at 30 fps), texture quality, aniso, shaders.
TABLE1 = {
    "UT2004/Primeval": (1992, 66, "High/Anisotropic", 16, False),
    "Doom3/trdemo1": (3464, 115, "High/Anisotropic", 16, True),
    "Doom3/trdemo2": (3990, 133, "High/Anisotropic", 16, True),
    "Quake4/demo4": (2976, 99, "High/Anisotropic", 16, True),
    "Quake4/guru5": (3081, 103, "High/Anisotropic", 16, True),
    "Riddick/MainFrame": (1629, 54, "High/Trilinear", None, True),
    "Riddick/PrisonArea": (2310, 77, "High/Trilinear", None, True),
    "FEAR/built-in demo": (576, 19, "High/Anisotropic", 16, True),
    "FEAR/interval2": (2102, 70, "High/Anisotropic", 16, True),
    "Half Life 2 LC/built-in": (1805, 60, "High/Anisotropic", 16, True),
    "Oblivion/Anvil Castle": (2620, 87, "High/Trilinear", None, True),
    "Splinter Cell 3/first level": (2970, 99, "High/Anisotropic", 16, True),
}

# Table III: avg indices/batch, avg indices/frame, bytes/index, MB/s @100fps.
TABLE3 = {
    "UT2004/Primeval": (1110, 249285, 2, 50),
    "Doom3/trdemo1": (275, 196416, 4, 79),
    "Doom3/trdemo2": (304, 136548, 4, 55),
    "Quake4/demo4": (405, 172330, 4, 69),
    "Quake4/guru5": (166, 135051, 4, 54),
    "Riddick/MainFrame": (356, 214965, 2, 43),
    "Riddick/PrisonArea": (658, 239425, 2, 48),
    "FEAR/built-in demo": (641, 331374, 2, 66),
    "FEAR/interval2": (1085, 307202, 2, 61),
    "Half Life 2 LC/built-in": (736, 328919, 2, 66),
    "Oblivion/Anvil Castle": (998, 711196, 2, 142),
    "Splinter Cell 3/first level": (308, 177300, 2, 35),
}

# Table IV: average vertex shader instructions (Oblivion has two regions).
TABLE4 = {
    "UT2004/Primeval": 23.46,
    "Doom3/trdemo1": 20.31,
    "Doom3/trdemo2": 19.35,
    "Quake4/demo4": 27.92,
    "Quake4/guru5": 24.42,
    "Riddick/MainFrame": 16.70,
    "Riddick/PrisonArea": 20.96,
    "FEAR/built-in demo": 18.19,
    "FEAR/interval2": 21.02,
    "Half Life 2 LC/built-in": 27.04,
    "Oblivion/Anvil Castle": (18.88, 37.72),  # region 1, region 2
    "Splinter Cell 3/first level": 28.36,
}

# Table V: TL%, TS%, TF%, avg primitives per frame.
TABLE5 = {
    "UT2004/Primeval": (99.9, 0.0, 0.1, 83095),
    "Doom3/trdemo1": (100.0, 0.0, 0.0, 65472),
    "Doom3/trdemo2": (100.0, 0.0, 0.0, 45516),
    "Quake4/demo4": (100.0, 0.0, 0.0, 57443),
    "Quake4/guru5": (100.0, 0.0, 0.0, 45017),
    "Riddick/MainFrame": (100.0, 0.0, 0.0, 71655),
    "Riddick/PrisonArea": (100.0, 0.0, 0.0, 79808),
    "FEAR/built-in demo": (100.0, 0.0, 0.0, 110458),
    "FEAR/interval2": (96.7, 0.0, 3.3, 102402),
    "Half Life 2 LC/built-in": (100.0, 0.0, 0.0, 109640),
    "Oblivion/Anvil Castle": (46.3, 53.7, 0.0, 551694),
    "Splinter Cell 3/first level": (69.1, 26.7, 4.2, 107494),
}

# Table VI: bus, width, speed, bandwidth (GB/s).
TABLE6 = [
    ("AGP 4X", "32 bits", "66x4 MHz", 1.056),
    ("AGP 8X", "32 bits", "66x8 MHz", 2.112),
    ("PCI Express x4 lanes", "1 bit", "2.5 Gbaud x 4", 1.0),
    ("PCI Express x8 lanes", "1 bit", "2.5 Gbaud x 8", 2.0),
    ("PCI Express x16 lanes", "1 bit", "2.5 Gbaud x 16", 4.0),
]

# Table VII: % clipped / culled / traversed.
TABLE7 = {
    "UT2004/Primeval": (30.0, 21.0, 49.0),
    "Doom3/trdemo2": (37.0, 28.0, 35.0),
    "Quake4/demo4": (51.0, 21.0, 28.0),
}

# Table VIII: avg triangle size (fragments) at raster / z&st / shading / blend.
TABLE8 = {
    "UT2004/Primeval": (652, 417, 510, 411),
    "Doom3/trdemo2": (2117, 1651, 1027, 1024),
    "Quake4/demo4": (1232, 749, 411, 406),
}

# Table IX: % quads HZ / Z&Stencil / Alpha / Color Mask / Blending.
TABLE9 = {
    "UT2004/Primeval": (37.50, 2.42, 4.15, 0.0, 55.93),
    "Doom3/trdemo2": (33.95, 13.81, 0.03, 34.48, 17.73),
    "Quake4/demo4": (41.81, 20.57, 0.32, 19.00, 18.30),
}

# Table X: % complete quads at raster / z&stencil.
TABLE10 = {
    "UT2004/Primeval": (91.5, 93.0),
    "Doom3/trdemo2": (93.1, 95.0),
    "Quake4/demo4": (92.0, 92.7),
}

# Table XI: overdraw at raster / z&st / shading / blending.
TABLE11 = {
    "UT2004/Primeval": (8.94, 5.22, 5.52, 5.00),
    "Doom3/trdemo2": (24.58, 16.22, 4.38, 4.36),
    "Quake4/demo4": (24.39, 14.12, 4.55, 4.46),
}

# Table XII: avg instructions, texture instructions, ALU:TEX ratio.
TABLE12 = {
    "UT2004/Primeval": (4.63, 1.54, 2.01),
    "Doom3/trdemo1": (12.85, 3.98, 2.23),
    "Doom3/trdemo2": (12.95, 3.98, 2.25),
    "Quake4/demo4": (16.29, 4.33, 2.76),
    "Quake4/guru5": (17.16, 4.54, 2.78),
    "Riddick/MainFrame": (14.64, 1.94, 6.55),
    "Riddick/PrisonArea": (13.63, 1.83, 6.45),
    "FEAR/built-in demo": (21.30, 2.79, 6.63),
    "FEAR/interval2": (19.31, 2.72, 6.10),
    "Half Life 2 LC/built-in": (19.94, 3.88, 4.14),
    "Oblivion/Anvil Castle": (15.48, 1.36, 10.38),
    "Splinter Cell 3/first level": (4.62, 2.13, 1.17),
}

# Table XIII: bilinear samples per request, ALU instrs per bilinear request.
TABLE13 = {
    "UT2004/Primeval": (5.15, 0.39),
    "Doom3/trdemo2": (4.37, 0.52),
    "Quake4/demo4": (4.67, 0.59),
}

# Table XIV: cache -> (size, organization, {workload: hit rate %}).
# The paper prints hit rates in the order Doom3/tr2, Quake4/d4, UT2004.
TABLE14 = {
    "zstencil": ("16 KB", "64w x 256B", {
        "Doom3/trdemo2": 91.0, "Quake4/demo4": 93.4, "UT2004/Primeval": 93.9,
    }),
    "texture_l0": ("4 KB", "64w x 64B", {
        "Doom3/trdemo2": 99.2, "Quake4/demo4": 99.3, "UT2004/Primeval": 97.7,
    }),
    "texture_l1": ("16 KB", "16w x 16s x 64B", {}),
    "color": ("16 KB", "64w x 256B", {
        "Doom3/trdemo2": 93.2, "Quake4/demo4": 93.2, "UT2004/Primeval": 93.7,
    }),
}

# Table XV: MB/frame, %read, %write, GB/s @ 100 fps.
TABLE15 = {
    "UT2004/Primeval": (81, 73, 27, 8),
    "Doom3/trdemo2": (108, 63, 37, 11),
    "Quake4/demo4": (101, 62, 38, 10),
}

# Table XVI: % of traffic per client Vertex/Z&St/Texture/Color/DAC/CP.
TABLE16 = {
    "UT2004/Primeval": (3.9, 15.2, 41.7, 35.2, 3.5, 0.5),
    "Doom3/trdemo2": (2.5, 53.5, 26.1, 14.8, 2.1, 1.1),
    "Quake4/demo4": (4.2, 51.4, 23.0, 17.4, 2.7, 1.3),
}

# Table XVII: bytes per shaded vertex / per fragment at Z&St, shading, color.
TABLE17 = {
    "UT2004/Primeval": (50.18, 3.14, 7.71, 7.40),
    "Doom3/trdemo2": (50.88, 4.61, 8.31, 4.60),
    "Quake4/demo4": (67.60, 4.48, 6.68, 5.11),
}

# Section III.C: fraction of z-killable quads that HZ removes early.
HZ_EFFECTIVENESS = {
    "UT2004/Primeval": 0.90,
    "Doom3/trdemo2": 0.60,
    "Quake4/demo4": 0.50,
}

#: The theoretical post-transform cache hit rate for adjacent triangles.
VERTEX_CACHE_THEORETICAL = 2.0 / 3.0
