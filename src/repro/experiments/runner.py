"""Shared, cached execution of the underlying measurement runs.

Many exhibits read the same three simulations and twelve API-statistics
passes; the runner executes each once per process and caches the results.
Frame counts are configurable (environment variables ``REPRO_API_FRAMES``,
``REPRO_SIM_FRAMES``, ``REPRO_GEOM_FRAMES`` override the defaults) — more
frames tighten the statistics at proportional cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.api.stats import WorkloadApiStats
from repro.gpu.pipeline import SimulationResult
from repro.workloads import build_workload
from repro.workloads.generator import GameWorkload


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass(frozen=True)
class ExperimentConfig:
    """Frame budgets for the three kinds of measurement runs.

    Defaults read the environment at construction time so test/CI runs can
    shrink the budgets without touching code.
    """

    api_frames: int = field(
        default_factory=lambda: _env_int("REPRO_API_FRAMES", 160)
    )
    sim_frames: int = field(
        default_factory=lambda: _env_int("REPRO_SIM_FRAMES", 6)
    )
    geometry_frames: int = field(
        default_factory=lambda: _env_int("REPRO_GEOM_FRAMES", 120)
    )


class Runner:
    """Executes and caches API/simulation runs for the experiment functions."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or ExperimentConfig()
        self._api: dict[str, WorkloadApiStats] = {}
        self._sim: dict[str, SimulationResult] = {}
        self._geometry: dict[str, SimulationResult] = {}
        self._workloads: dict[tuple[str, bool], GameWorkload] = {}

    def workload(self, name: str, sim: bool = False) -> GameWorkload:
        key = (name, sim)
        if key not in self._workloads:
            self._workloads[key] = build_workload(name, sim=sim)
        return self._workloads[key]

    def api(self, name: str) -> WorkloadApiStats:
        """Full-profile API statistics (Tables III-V, XII; Figs. 1-3, 8)."""
        if name not in self._api:
            self._api[name] = self.workload(name).api_stats(
                frames=self.config.api_frames
            )
        return self._api[name]

    def sim(self, name: str) -> SimulationResult:
        """Full-pipeline simulation on the reduced profile (Tables VIII-XVII)."""
        if name not in self._sim:
            wl = self.workload(name, sim=True)
            self._sim[name] = wl.simulate(frames=self.config.sim_frames)
        return self._sim[name]

    def geometry(self, name: str) -> SimulationResult:
        """Geometry-only simulation over more frames (Table VII, Figs. 5-6)."""
        if name not in self._geometry:
            wl = self.workload(name, sim=True)
            self._geometry[name] = wl.simulate(
                frames=self.config.geometry_frames, fragment_stages=False
            )
        return self._geometry[name]

    def clear(self) -> None:
        self._api.clear()
        self._sim.clear()
        self._geometry.clear()
        self._workloads.clear()


_DEFAULT: Runner | None = None


def default_runner() -> Runner:
    """Process-wide shared runner (what the benchmarks use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Runner()
    return _DEFAULT
