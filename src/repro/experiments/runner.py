"""Shared, cached execution of the underlying measurement runs.

Many exhibits read the same three simulations and twelve API-statistics
passes.  The runner maps each read onto a content-addressed
:class:`~repro.farm.job.JobSpec` and hands it to the execution farm
(:mod:`repro.farm`), which satisfies it from the persistent artifact cache
when possible and otherwise executes it — in parallel across worker
processes when more than one job is outstanding and the farm is configured
with ``jobs > 1``.  Results are additionally memoized in-process so repeated
reads within one runner return the identical object.

Frame counts are configurable (environment variables ``REPRO_API_FRAMES``,
``REPRO_SIM_FRAMES``, ``REPRO_GEOM_FRAMES`` override the defaults) — more
frames tighten the statistics at proportional cost.  The frame budget is
part of every cache key (in-process and on-disk), so changing a budget can
never serve results computed under another one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.api.stats import WorkloadApiStats
from repro.farm import Farm, JobSpec
from repro.observe import spans as obs_spans
from repro.gpu.config import GpuConfig
from repro.gpu.pipeline import SimulationResult
from repro.workloads import build_workload
from repro.workloads.generator import GameWorkload


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@dataclass(frozen=True)
class ExperimentConfig:
    """Frame budgets for the three kinds of measurement runs.

    Defaults read the environment at construction time so test/CI runs can
    shrink the budgets without touching code.
    """

    api_frames: int = field(
        default_factory=lambda: _env_int("REPRO_API_FRAMES", 160)
    )
    sim_frames: int = field(
        default_factory=lambda: _env_int("REPRO_SIM_FRAMES", 6)
    )
    geometry_frames: int = field(
        default_factory=lambda: _env_int("REPRO_GEOM_FRAMES", 120)
    )


class Runner:
    """Executes and caches API/simulation runs for the experiment functions.

    ``jobs``, ``use_cache`` and ``cache_dir`` configure the underlying farm
    (ignored when an explicit ``farm`` is passed): ``jobs=1`` keeps the
    classic serial in-process behaviour, larger values shard outstanding
    jobs across worker processes; ``use_cache=False`` disables the on-disk
    artifact store entirely.  ``strict=False`` makes batch prefetches return
    whatever completed instead of raising on a permanently failed job; the
    per-job cause chains land in :attr:`failure_report`.  ``shard_frames``
    is the farm's frame-sharding policy (``None`` automatic, ``0`` off,
    ``k`` fixed slice count — see :class:`~repro.farm.executor.Farm`): with
    ``jobs > 1`` even a single long simulation fans out across workers.
    ``incremental`` enables draw-level incremental replay
    (:mod:`repro.farm.drawcache`; ``None`` resolves ``REPRO_INCREMENTAL``)
    — bit-identical results, unchanged cache keys.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        farm: Farm | None = None,
        jobs: int = 1,
        use_cache: bool = True,
        cache_dir: str | None = None,
        strict: bool = True,
        shard_frames: int | None = None,
        incremental: bool | None = None,
    ):
        self.config = config or ExperimentConfig()
        if farm is None:
            from repro.farm import ArtifactStore

            farm = Farm(
                store=ArtifactStore(cache_dir),
                jobs=jobs,
                use_cache=use_cache,
                strict=strict,
                shard_frames=shard_frames,
                incremental=incremental,
            )
        self.farm = farm
        self._results: dict[JobSpec, Any] = {}
        self._workloads: dict[tuple[str, bool], GameWorkload] = {}

    @property
    def telemetry(self):
        return self.farm.telemetry

    @property
    def failure_report(self):
        """The farm's :class:`~repro.farm.executor.FailureReport` (last run)."""
        return self.farm.last_report

    # -- job plumbing ----------------------------------------------------
    def _frames(self, kind: str) -> int:
        return {
            "api": self.config.api_frames,
            "sim": self.config.sim_frames,
            "geometry": self.config.geometry_frames,
        }[kind]

    def _job(self, kind: str, name: str) -> JobSpec:
        return JobSpec(kind, name, self._frames(kind))

    def _get(self, job: JobSpec) -> Any:
        if job not in self._results:
            with obs_spans.span("runner.job", "runner") as s:
                if s:
                    s.set("job", job.describe())
                self._results[job] = self.farm.run_one(job)
        return self._results[job]

    # -- public API ------------------------------------------------------
    def workload(self, name: str, sim: bool = False) -> GameWorkload:
        key = (name, sim)
        if key not in self._workloads:
            self._workloads[key] = build_workload(name, sim=sim)
        return self._workloads[key]

    def api(self, name: str) -> WorkloadApiStats:
        """Full-profile API statistics (Tables III-V, XII; Figs. 1-3, 8)."""
        return self._get(self._job("api", name))

    def sim(self, name: str) -> SimulationResult:
        """Full-pipeline simulation on the reduced profile (Tables VIII-XVII)."""
        return self._get(self._job("sim", name))

    def geometry(self, name: str) -> SimulationResult:
        """Geometry-only simulation over more frames (Table VII, Figs. 5-6)."""
        return self._get(self._job("geometry", name))

    def simulate(
        self,
        workload: str | GameWorkload,
        config: GpuConfig | None = None,
        frames: int | None = None,
    ) -> SimulationResult:
        """Full-pipeline simulation with optional config/frame overrides.

        ``workload`` is a registry name (``"Doom3/trdemo2"``) or a built
        :class:`GameWorkload`.  Overrides land in the farm's cache key, so a
        non-default run can never be served a default run's artifact.
        """
        name = workload if isinstance(workload, str) else workload.name
        job = JobSpec(
            "sim",
            name,
            frames if frames is not None else self.config.sim_frames,
            config=config,
        )
        return self._get(job)

    def api_stats(
        self, workload: str | GameWorkload, frames: int | None = None
    ) -> WorkloadApiStats:
        """API statistics with an optional frame override (see :meth:`api`)."""
        name = workload if isinstance(workload, str) else workload.name
        job = JobSpec(
            "api",
            name,
            frames if frames is not None else self.config.api_frames,
        )
        return self._get(job)

    def characterize(
        self,
        workload: str | GameWorkload,
        config: GpuConfig | None = None,
        frames: int | None = None,
        incremental: bool | None = True,
    ) -> SimulationResult:
        """:meth:`simulate` with draw-level incremental replay (default on).

        Frames whose draw streams and bound state are unchanged — across
        reruns, budgets, and ``--jobs`` widths — reuse their recorded
        contributions from the draw cache (:mod:`repro.farm.drawcache`)
        instead of re-simulating, which makes long timedemos routine.
        Results are bit-identical to full re-simulation and land under the
        same artifact key.  ``incremental=None`` keeps the runner's farm
        setting; ``False`` is exactly :meth:`simulate`.
        """
        name = workload if isinstance(workload, str) else workload.name
        job = JobSpec(
            "sim",
            name,
            frames if frames is not None else self.config.sim_frames,
            config=config,
        )
        previous = self.farm.incremental
        if incremental is not None:
            self.farm.incremental = bool(incremental)
        try:
            return self._get(job)
        finally:
            self.farm.incremental = previous

    def prefetch(
        self,
        api_names: list[str] | None = None,
        sim_names: list[str] | None = None,
        geometry_names: list[str] | None = None,
    ) -> None:
        """Execute every measurement the exhibits will read, as one batch.

        This is the parallel entry point: all outstanding jobs go to the
        farm together, which shards them across workers.  ``None`` for a
        list means its default coverage — API statistics for all twelve
        workloads, simulation and geometry runs for the three OpenGL games;
        pass an empty list to skip a kind entirely.
        """
        from repro.experiments import paper
        from repro.workloads import all_workloads

        if api_names is None:
            api_names = [spec.name for spec in all_workloads()]
        if sim_names is None:
            sim_names = list(paper.SIMULATED)
        if geometry_names is None:
            geometry_names = list(paper.SIMULATED)
        jobs = [self._job("api", name) for name in api_names]
        jobs += [self._job("sim", name) for name in sim_names]
        jobs += [self._job("geometry", name) for name in geometry_names]
        missing = [job for job in jobs if job not in self._results]
        if missing:
            with obs_spans.span("runner.prefetch", "runner") as s:
                if s:
                    s.set("jobs", len(missing))
                self._results.update(self.farm.run(missing))

    def clear(self) -> None:
        """Drop the in-process memo (the on-disk artifact store persists)."""
        self._results.clear()
        self._workloads.clear()


_DEFAULT: Runner | None = None


def default_runner() -> Runner:
    """Process-wide shared runner (what the benchmarks use).

    Rebuilt whenever the environment-derived frame budgets change, so a
    long-lived process never serves results computed under stale budgets.
    Parallelism defaults to the machine width (``REPRO_FARM_JOBS``
    overrides).
    """
    global _DEFAULT
    config = ExperimentConfig()
    if _DEFAULT is None or _DEFAULT.config != config:
        jobs = _env_int("REPRO_FARM_JOBS", 0) or (os.cpu_count() or 1)
        shards = os.environ.get("REPRO_FARM_SHARDS")
        _DEFAULT = Runner(
            config,
            jobs=jobs,
            shard_frames=int(shards) if shards else None,
        )
    return _DEFAULT


def simulate(
    workload: str | GameWorkload,
    config: GpuConfig | None = None,
    frames: int | None = None,
) -> SimulationResult:
    """Simulate a workload through the farm — the stable public entry point.

    ::

        import repro
        result = repro.simulate("Doom3/trdemo2", frames=6)
        print(result.stats.quad_fate_percent)

    Routes through the shared :func:`default_runner`, so results are cached
    (in-process and in the on-disk artifact store) and parallel-safe; pass a
    :class:`~repro.gpu.config.GpuConfig` to override the machine model.
    """
    return default_runner().simulate(workload, config=config, frames=frames)


def api_stats(
    workload: str | GameWorkload, frames: int | None = None
) -> WorkloadApiStats:
    """API-level statistics for a workload, through the farm.

    ::

        import repro
        stats = repro.api_stats("UT2004/Primeval", frames=60)
    """
    return default_runner().api_stats(workload, frames=frames)


def characterize(
    workload: str | GameWorkload,
    config: GpuConfig | None = None,
    frames: int | None = None,
    incremental: bool | None = True,
) -> SimulationResult:
    """Characterize a timedemo with frame-coherent incremental simulation.

    ::

        import repro
        result = repro.characterize("UT2004/Primeval", frames=100)

    Like :func:`simulate`, but replays through the draw-level content
    cache by default: re-runs (longer budgets, other ``--jobs`` widths,
    warm CI passes) reuse every unchanged frame's recorded statistics,
    quad fates, and cache streams, re-simulating only deltas — bit-identical
    to full simulation, under the same artifact keys.  ``incremental=False``
    forces full replay; ``None`` keeps the runner's farm setting (the
    ``REPRO_INCREMENTAL`` environment default).
    """
    return default_runner().characterize(
        workload, config=config, frames=frames, incremental=incremental
    )
