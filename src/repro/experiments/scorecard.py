"""Reproduction scorecard: quantified measured-vs-paper agreement.

Walks every table comparison, extracts the (measured, published) pairs,
computes per-exhibit relative errors, and renders both a JSON record and the
EXPERIMENTS.md markdown report.  This is how the repository's top-level
claim ("API statistics reproduce near-exactly; microarchitectural results
reproduce in shape") is kept honest and regenerable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.experiments import figures, tables
from repro.experiments.report import Comparison
from repro.experiments.runner import Runner, default_runner

#: Exhibits whose magnitudes are scale-bound at the reduced simulation
#: profile (documented in DESIGN.md); their errors are reported but labelled.
SCALE_BOUND = {"table8", "table15", "table17"}

#: Exhibits that are configuration echoes (no measurement involved).
CONFIG_ONLY = {"table1", "table2", "table6"}

#: Per-column error modes. Distribution/percentage columns compare in
#: percentage points (|measured - published| / 100), which is the meaningful
#: metric for shares; everything else compares relative to the published
#: magnitude. Columns listed per comparison-pair position within a row.
COLUMN_MODES: dict[str, list[str]] = {
    "table5": ["pts", "pts", "pts", "rel"],
    "table7": ["pts", "pts", "pts"],
    "table9": ["pts", "pts", "pts", "pts", "pts"],
    "table10": ["pts", "pts"],
    "table14": ["pts", "pts", "pts"],
    "table15": ["rel", "pts", "pts", "rel"],
    "table16": ["pts", "pts", "pts", "pts", "pts", "pts"],
}


@dataclass
class ExhibitScore:
    exhibit: str
    title: str
    pairs: int
    mean_rel_error: float
    worst_rel_error: float
    scale_bound: bool = False
    config_only: bool = False
    notes: list[str] = field(default_factory=list)

    @property
    def grade(self) -> str:
        """Coarse agreement label used in EXPERIMENTS.md."""
        if self.config_only:
            return "exact (configuration)"
        if self.pairs == 0:
            return "qualitative"
        error = self.mean_rel_error
        if error < 0.05:
            return "excellent (<5%)"
        if error < 0.15:
            return "good (<15%)"
        if error < 0.40:
            return "fair (<40%)"
        return "shape only" if self.scale_bound else "divergent"


def _comparison_pairs(comparison: Comparison) -> list[tuple[float, float]]:
    pairs = []
    for row in comparison.rows:
        for cell in row:
            if (
                isinstance(cell, tuple)
                and len(cell) == 2
                and isinstance(cell[0], (int, float))
                and isinstance(cell[1], (int, float))
            ):
                pairs.append((float(cell[0]), float(cell[1])))
    return pairs


def score_comparison(name: str, comparison: Comparison) -> ExhibitScore:
    modes = COLUMN_MODES.get(name)
    errors: list[float] = []
    pairs: list[tuple[float, float]] = []
    for row in comparison.rows:
        position = 0
        for cell in row:
            if not (
                isinstance(cell, tuple)
                and len(cell) == 2
                and isinstance(cell[0], (int, float))
                and isinstance(cell[1], (int, float))
            ):
                continue
            measured, published = float(cell[0]), float(cell[1])
            pairs.append((measured, published))
            mode = "rel"
            if modes and position < len(modes):
                mode = modes[position]
            if mode == "pts":
                errors.append(abs(measured - published) / 100.0)
            else:
                scale = max(abs(published), 1.0)
                errors.append(abs(measured - published) / scale)
            position += 1
    mean_error = sum(errors) / len(errors) if errors else 0.0
    worst = max(errors) if errors else 0.0
    return ExhibitScore(
        exhibit=comparison.exhibit,
        title=comparison.title,
        pairs=len(pairs),
        mean_rel_error=mean_error,
        worst_rel_error=worst,
        scale_bound=name in SCALE_BOUND,
        config_only=name in CONFIG_ONLY,
        notes=list(comparison.notes),
    )


def build_scorecard(runner: Runner | None = None) -> list[ExhibitScore]:
    """Score every table against the paper (figures are shape-only)."""
    runner = runner or default_runner()
    scores = []
    for name, func in tables.ALL_TABLES.items():
        try:
            comparison = func(runner=runner)  # type: ignore[call-arg]
        except TypeError:
            comparison = func()
        scores.append(score_comparison(name, comparison))
    return scores


def scorecard_json(scores: list[ExhibitScore]) -> str:
    return json.dumps(
        [
            {
                "exhibit": s.exhibit,
                "title": s.title,
                "pairs": s.pairs,
                "mean_rel_error": round(s.mean_rel_error, 4),
                "worst_rel_error": round(s.worst_rel_error, 4),
                "grade": s.grade,
                "scale_bound": s.scale_bound,
            }
            for s in scores
        ],
        indent=2,
    )


def experiments_markdown(
    runner: Runner | None = None,
    include_figures: bool = True,
) -> str:
    """Render the full EXPERIMENTS.md: scorecard + every exhibit's table."""
    runner = runner or default_runner()
    scores = build_scorecard(runner)
    lines = [
        "# EXPERIMENTS — measured vs paper",
        "",
        "Regenerate this file with "
        "`python -m repro tables` / `python -m repro figures`, or "
        "programmatically via `repro.experiments.scorecard."
        "experiments_markdown()`.",
        "",
        f"Measurement budgets: {runner.config.api_frames} API frames per "
        f"workload, {runner.config.sim_frames} simulated frames and "
        f"{runner.config.geometry_frames} geometry-only frames per OpenGL "
        "workload (reduced-scale simulation profile; see DESIGN.md).",
        "",
        "## Scorecard",
        "",
        "| Exhibit | Title | Compared values | Mean rel. error | Grade |",
        "|---|---|---|---|---|",
    ]
    for score in scores:
        error = (
            "-" if score.config_only or score.pairs == 0
            else f"{100 * score.mean_rel_error:.1f}%"
        )
        lines.append(
            f"| {score.exhibit} | {score.title} | {score.pairs} | "
            f"{error} | {score.grade} |"
        )
    lines.extend(
        [
            "",
            "Scale-bound exhibits (triangle sizes, MB/frame) run on the "
            "reduced simulation profile and are graded on shape; see the "
            "per-exhibit notes.",
            "",
            "## Tables",
            "",
        ]
    )
    for name, func in tables.ALL_TABLES.items():
        try:
            comparison = func(runner=runner)  # type: ignore[call-arg]
        except TypeError:
            comparison = func()
        lines.append("```")
        lines.append(comparison.as_text())
        lines.append("```")
        lines.append("")
    if include_figures:
        lines.append("## Figures")
        lines.append("")
        for name, func in figures.ALL_FIGURES.items():
            try:
                figure = func(runner=runner)  # type: ignore[call-arg]
            except TypeError:
                figure = func()
            lines.append("```")
            lines.append(figure.as_text())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)
