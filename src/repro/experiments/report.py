"""Comparison rendering: measured vs paper, as aligned text."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import format_table


@dataclass
class Comparison:
    """One reproduced exhibit: headers, rows of cells, optional notes.

    A cell is either a plain value or a ``(measured, paper)`` pair, rendered
    as ``measured (paper)`` so the comparison is visible inline.
    """

    exhibit: str  # e.g. "Table III"
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def rendered_rows(self) -> list[list[str]]:
        out = []
        for row in self.rows:
            out.append([_render_cell(cell) for cell in row])
        return out

    def as_text(self) -> str:
        body = format_table(
            self.headers,
            self.rendered_rows(),
            title=f"{self.exhibit}: {self.title} — measured (paper)",
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def measured(self, row: int, col: int):
        """The measured part of a cell (pairs) or the plain value."""
        cell = self.rows[row][col]
        if isinstance(cell, tuple) and len(cell) == 2:
            return cell[0]
        return cell


def _render_cell(cell) -> str:
    if isinstance(cell, tuple) and len(cell) == 2:
        measured, published = cell
        return f"{_fmt(measured)} ({_fmt(published)})"
    return _fmt(cell)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 10000:
            return f"{value:,.0f}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
